"""Shared fixtures and assertion helpers for the test suite."""

from __future__ import annotations

import faulthandler
import os

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.result import TopKResult

#: Per-test wall-clock deadline in seconds, enabled by setting the
#: ``REPRO_TEST_DEADLINE`` environment variable (the CI concurrency job
#: sets it).  A deadlocked interleaving then dumps every thread's
#: traceback and kills the run instead of hanging the suite forever —
#: a dependency-free stand-in for pytest-timeout, which the local
#: toolchain does not ship.
_DEADLINE = float(os.environ.get("REPRO_TEST_DEADLINE", "0") or 0)

if _DEADLINE > 0:

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_protocol(item, nextitem):
        faulthandler.dump_traceback_later(_DEADLINE, exit=True)
        try:
            yield
        finally:
            faulthandler.cancel_dump_traceback_later()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def small_dataset() -> Dataset:
    """Hand-checkable 2-d dataset with known layers.

    Layers (max-preferring):
      L1 = {0 (4,1), 1 (1,4), 4 (3,3)}
      L2 = {2 (2,2), 5 (0.5, 3.5)}  -- wait, see test_layers for the
      derivation; values chosen so every test can verify by hand.
    """
    return Dataset(
        [
            [4.0, 1.0],   # 0: maximal
            [1.0, 4.0],   # 1: maximal
            [2.0, 2.0],   # 2: dominated by 4 -> layer 2
            [0.5, 0.5],   # 3: dominated by 2 -> layer 3
            [3.0, 3.0],   # 4: maximal
            [0.5, 3.5],   # 5: dominated by 1 -> layer 2
        ]
    )


@pytest.fixture
def running_example() -> Dataset:
    """The quickstart's 13-record dataset (spirit of the paper's Fig. 1)."""
    rows = [
        (150.0, 400.0), (200.0, 250.0), (300.0, 380.0), (350.0, 300.0),
        (180.0, 350.0), (250.0, 270.0), (100.0, 200.0), (120.0, 330.0),
        (260.0, 150.0), (90.0, 120.0), (80.0, 390.0), (140.0, 210.0),
        (60.0, 60.0),
    ]
    return Dataset(rows, labels=[f"TID{i + 1}" for i in range(len(rows))])


@pytest.fixture
def linear2() -> LinearFunction:
    return LinearFunction([0.6, 0.4])


def brute_force_scores(dataset: Dataset, function, k: int) -> list:
    """Reference top-k score multiset, descending."""
    scores = sorted(function.score_many(dataset.values), reverse=True)
    return scores[:k]


def assert_correct_topk(
    result: TopKResult, dataset: Dataset, function, k: int
) -> None:
    """Assert a result matches brute force up to score ties."""
    expected = brute_force_scores(dataset, function, min(k, len(dataset)))
    got = sorted(result.scores, reverse=True)
    assert len(got) == len(expected), (
        f"{result.algorithm}: expected {len(expected)} answers, got {len(got)}"
    )
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)
