"""White-box tests for the N-Way sub-graph ranked stream."""

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.functions import LinearFunction
from repro.core.nway import _RankedStream
from repro.data.generators import all_skyline, uniform
from repro.metrics.counters import AccessCounter


def drain(stream):
    order = []
    while True:
        rid = stream.advance()
        if rid is None:
            return order
        order.append(rid)


class TestRankedStream:
    def test_emits_every_record_in_score_order(self):
        dataset = uniform(80, 2, seed=1)
        graph = build_dominant_graph(dataset)
        f = LinearFunction([0.7, 0.3])
        stats = AccessCounter()
        stream = _RankedStream(graph, f, stats)
        order = drain(stream)
        assert sorted(order) == list(range(80))
        scores = [f(dataset.vector(r)) for r in order]
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_head_score_bounds_everything_unpopped(self):
        dataset = uniform(60, 2, seed=2)
        graph = build_dominant_graph(dataset)
        f = LinearFunction([0.5, 0.5])
        stream = _RankedStream(graph, f, AccessCounter())
        popped = []
        while True:
            head = stream.head_score()
            if head is None:
                break
            rid = stream.advance()
            popped.append(rid)
            # Every not-yet-popped record scores at most the old head.
            remaining = set(range(60)) - set(popped)
            if remaining:
                best_remaining = max(f(dataset.vector(r)) for r in remaining)
                assert best_remaining <= head + 1e-12

    def test_pseudo_records_traversed_in_extended_graph(self):
        dataset = all_skyline(50, 3, seed=3)
        graph = build_extended_graph(dataset, theta=8)
        assert graph.num_pseudo > 0
        f = LinearFunction([0.4, 0.3, 0.3])
        stream = _RankedStream(graph, f, AccessCounter())
        order = drain(stream)
        # Pseudo records are popped (they appear in the order) but every
        # real record must come out too.
        reals = [rid for rid in order if not graph.is_pseudo(rid)]
        assert sorted(reals) == list(range(50))

    def test_examined_counter_charged(self):
        dataset = uniform(40, 2, seed=4)
        graph = build_dominant_graph(dataset)
        stats = AccessCounter()
        stream = _RankedStream(graph, LinearFunction([0.5, 0.5]), stats)
        drain(stream)
        assert stats.examined == 40
        assert stats.computed == 0  # streams never charge the F metric

    def test_advance_on_exhausted_stream(self):
        dataset = uniform(5, 2, seed=5)
        graph = build_dominant_graph(dataset)
        stream = _RankedStream(graph, LinearFunction([0.5, 0.5]), AccessCounter())
        drain(stream)
        assert stream.advance() is None
        assert stream.head_score() is None
