"""Write-ahead log: framing, CRCs, torn tails, atomic reset."""

from __future__ import annotations

import os
import struct

import pytest

from repro.errors import WALCorruptionError
from repro.serve.wal import (
    FRAME_HEADER_SIZE,
    FSYNC_POLICIES,
    HEADER_SIZE,
    WriteAheadLog,
    create_wal,
    encode_record,
    reset_wal,
    scan_wal,
    wal_record_offsets,
)

OPS = [
    {"op": "insert", "rid": 3},
    {"op": "delete", "rid": 1},
    {"op": "insert_many", "rids": [7, 8, 9]},
    {"op": "mark_deleted", "rid": 2},
]


@pytest.fixture
def wal_path(tmp_path):
    path = str(tmp_path / "wal.log")
    create_wal(path, base_seq=0)
    return path


def append_ops(path, ops=OPS, fsync="never"):
    with WriteAheadLog(path, fsync=fsync) as wal:
        return [wal.append(op) for op in ops]


class TestRoundTrip:
    def test_empty_log_scans_clean(self, wal_path):
        scan = scan_wal(wal_path)
        assert scan.records == []
        assert scan.base_seq == 0
        assert scan.last_seq == 0
        assert scan.torn_bytes == 0
        assert scan.valid_bytes == HEADER_SIZE

    def test_appends_replay_in_order(self, wal_path):
        seqs = append_ops(wal_path)
        assert seqs == [1, 2, 3, 4]
        scan = scan_wal(wal_path)
        assert [op for _seq, op in scan.records] == OPS
        assert [seq for seq, _op in scan.records] == seqs
        assert scan.torn_bytes == 0

    def test_reopen_continues_sequence(self, wal_path):
        append_ops(wal_path)
        with WriteAheadLog(wal_path, fsync="never") as wal:
            assert wal.last_seq == 4
            assert wal.append({"op": "delete", "rid": 9}) == 5
        assert scan_wal(wal_path).last_seq == 5

    def test_base_seq_watermark(self, tmp_path):
        path = str(tmp_path / "wal.log")
        create_wal(path, base_seq=41)
        with WriteAheadLog(path, fsync="never") as wal:
            assert wal.append({"op": "insert", "rid": 0}) == 42
        scan = scan_wal(path)
        assert scan.base_seq == 41
        assert scan.records[0][0] == 42

    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_every_fsync_policy_round_trips(self, tmp_path, policy):
        path = str(tmp_path / f"wal-{policy}.log")
        create_wal(path)
        append_ops(path, fsync=policy)
        assert [op for _s, op in scan_wal(path).records] == OPS

    def test_unknown_fsync_policy_rejected(self, wal_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WriteAheadLog(wal_path, fsync="sometimes")

    def test_append_after_close_rejected(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync="never")
        wal.close()
        with pytest.raises(ValueError, match="closed"):
            wal.append({"op": "insert", "rid": 0})


class TestTornTails:
    def test_every_truncation_of_last_record_is_a_tolerated_tail(
        self, wal_path
    ):
        append_ops(wal_path)
        offsets = wal_record_offsets(wal_path)
        intact_through_three = offsets[3]  # end of record 3
        size = os.path.getsize(wal_path)
        with open(wal_path, "rb") as handle:
            blob = handle.read()
        for cut in range(intact_through_three, size):
            with open(wal_path, "wb") as handle:
                handle.write(blob[:cut])
            scan = scan_wal(wal_path)
            assert len(scan.records) == 3, f"cut at {cut}"
            assert scan.torn_bytes == cut - intact_through_three
            assert scan.valid_bytes == intact_through_three

    def test_opening_truncates_the_torn_tail(self, wal_path):
        append_ops(wal_path)
        offsets = wal_record_offsets(wal_path)
        with open(wal_path, "rb+") as handle:
            handle.truncate(offsets[-1] - 1)  # tear the final record
        with WriteAheadLog(wal_path, fsync="never") as wal:
            assert wal.last_seq == 3
            wal.append({"op": "insert", "rid": 99})
        scan = scan_wal(wal_path)
        assert scan.torn_bytes == 0
        assert [seq for seq, _ in scan.records] == [1, 2, 3, 4]
        assert scan.records[-1][1] == {"op": "insert", "rid": 99}

    def test_short_header_is_corruption(self, wal_path):
        with open(wal_path, "rb+") as handle:
            handle.truncate(HEADER_SIZE - 2)
        with pytest.raises(WALCorruptionError, match="header"):
            scan_wal(wal_path)

    def test_bad_header_magic_is_corruption(self, wal_path):
        with open(wal_path, "rb+") as handle:
            handle.write(b"NOTAWAL")
        with pytest.raises(WALCorruptionError, match="magic"):
            scan_wal(wal_path)


class TestMidLogCorruption:
    def test_flip_in_middle_record_with_valid_followers_raises(
        self, wal_path
    ):
        append_ops(wal_path)
        offsets = wal_record_offsets(wal_path)
        # Flip a payload byte of record 2 (between offsets[1] and [2]).
        victim = offsets[1] + FRAME_HEADER_SIZE + 1
        with open(wal_path, "rb+") as handle:
            handle.seek(victim)
            byte = handle.read(1)
            handle.seek(victim)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WALCorruptionError, match="torn tail|damaged"):
            scan_wal(wal_path)

    def test_flip_in_final_record_is_a_tail(self, wal_path):
        append_ops(wal_path)
        offsets = wal_record_offsets(wal_path)
        victim = offsets[3] + FRAME_HEADER_SIZE + 1
        with open(wal_path, "rb+") as handle:
            handle.seek(victim)
            byte = handle.read(1)
            handle.seek(victim)
            handle.write(bytes([byte[0] ^ 0xFF]))
        scan = scan_wal(wal_path)  # no raise: damage is at the very end
        assert len(scan.records) == 3

    def test_valid_crc_but_non_json_payload_is_corruption(self, wal_path):
        garbage = b"\x00\x01\x02"
        frame = encode_record(1, {"op": "x"})  # get framing right, then forge
        seq_bytes = struct.pack("<Q", 1)
        import zlib

        crc = zlib.crc32(seq_bytes + garbage) & 0xFFFFFFFF
        forged = struct.pack("<IQII", 0x57414C52, 1, len(garbage), crc) + garbage
        with open(wal_path, "ab") as handle:
            handle.write(forged)
        assert len(frame) > 0
        with pytest.raises(WALCorruptionError, match="undecodable"):
            scan_wal(wal_path)

    def test_sequence_gap_is_corruption(self, wal_path):
        # Append seq 1 then a forged seq 3: the scanner must not skip 2.
        with open(wal_path, "ab") as handle:
            handle.write(encode_record(1, {"op": "insert", "rid": 0}))
            handle.write(encode_record(3, {"op": "insert", "rid": 1}))
        with pytest.raises(WALCorruptionError):
            scan_wal(wal_path)


class TestReset:
    def test_reset_truncates_and_advances_watermark(self, wal_path):
        append_ops(wal_path)
        reset_wal(wal_path, base_seq=4)
        scan = scan_wal(wal_path)
        assert scan.records == []
        assert scan.base_seq == 4
        with WriteAheadLog(wal_path, fsync="never") as wal:
            assert wal.append({"op": "insert", "rid": 50}) == 5

    def test_reset_leaves_no_temp_files(self, wal_path, tmp_path):
        append_ops(wal_path)
        reset_wal(wal_path, base_seq=4)
        leftovers = [
            name for name in os.listdir(tmp_path) if ".tmp." in name
        ]
        assert leftovers == []
