"""Unit tests for the benchmark harness and (small-scale) experiments."""

import os

import pytest

from repro.bench.harness import ExperimentResult, Series, sweep
from repro.bench.report import format_table, save_result
from repro.bench import experiments as exp


class TestSweep:
    def test_runs_every_cell(self):
        calls = []
        result = sweep(
            "t", "k", [1, 2, 3],
            {"a": lambda x: calls.append(("a", x)) or x,
             "b": lambda x: calls.append(("b", x)) or x * 2},
        )
        assert len(calls) == 6
        assert result.series_by_label("a").y == [1.0, 2.0, 3.0]
        assert result.series_by_label("b").y == [2.0, 4.0, 6.0]

    def test_series_by_label_missing(self):
        result = sweep("t", "k", [1], {"a": lambda x: x})
        with pytest.raises(KeyError):
            result.series_by_label("nope")

    def test_as_rows(self):
        result = ExperimentResult(
            "t", "k", [10, 20],
            [Series("a", [1.0, 2.0]), Series("b", [3.0, 4.0])],
        )
        assert result.as_rows() == [[10, 1.0, 3.0], [20, 2.0, 4.0]]


class TestReport:
    def test_format_table_contains_everything(self):
        result = ExperimentResult(
            "My figure", "k", [10], [Series("alg", [42.0])], y_label="records"
        )
        text = format_table(result)
        assert "My figure" in text and "alg" in text and "42" in text
        assert "records" in text

    def test_save_result(self, tmp_path):
        result = ExperimentResult("t", "k", [1], [Series("a", [1.5])])
        path = save_result(result, str(tmp_path), "out")
        assert os.path.exists(path)
        assert "1.5" in open(path).read()

    def test_float_formatting(self):
        result = ExperimentResult(
            "t", "k", [1],
            [Series("big", [1234.5678]), Series("small", [0.001234])],
        )
        text = format_table(result)
        assert "1234.6" in text
        assert "0.001234" in text


SMALL = dict(n=300, ks=(5, 10))


class TestExperimentsSmallScale:
    """Every figure's experiment must run end to end at toy scale and
    produce one value per (series, k)."""

    def _check(self, result, n_series):
        assert len(result.series) == n_series
        for series in result.series:
            assert len(series.y) == len(result.x)
            assert all(y >= 0 for y in series.y)

    def test_fig5(self):
        self._check(exp.fig5_pseudo_records("U", n=300, ks=(5, 10)), 2)

    def test_fig6_construction(self):
        self._check(exp.fig6_construction(sizes=[100, 200]), 3)

    def test_fig6_query_accessed(self):
        self._check(exp.fig6_query(metric="accessed", **SMALL), 3)

    def test_fig6_query_time(self):
        self._check(exp.fig6_query(metric="time", **SMALL), 3)

    def test_fig6_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            exp.fig6_query(metric="bananas", **SMALL)

    def test_fig7_accessed(self):
        self._check(exp.fig7_nonlayer(metric="accessed", **SMALL), 5)

    def test_fig7_server(self):
        self._check(
            exp.fig7_nonlayer(metric="accessed", use_server=True, **SMALL), 5
        )

    def test_fig8_insert(self):
        result = exp.fig8_maintenance("insert", n=200, batches=(5, 10))
        self._check(result, 3)
        for series in result.series:
            assert series.y == sorted(series.y)  # cumulative time grows

    def test_fig8_delete(self):
        self._check(exp.fig8_maintenance("delete", n=200, batches=(5, 10)), 3)

    def test_fig8_rejects_unknown_operation(self):
        with pytest.raises(ValueError):
            exp.fig8_maintenance("truncate")

    def test_fig8_rebuild_comparison(self):
        result = exp.fig8_rebuild_comparison(n=120, batch=4)
        self._check(result, 3)

    def test_fig9_highdim(self):
        self._check(exp.fig9_highdim(n=200, ks=(5, 10)), 3)

    def test_fig9_worstcase(self):
        self._check(exp.fig9_worstcase(n=200, ks=(5, 10)), 3)

    def test_cost_model(self):
        result = exp.cost_model(n=300, ks=(5, 10))
        self._check(result, 3)
        measured = result.series_by_label("measured")
        exact = result.series_by_label("thm3.1-exact")
        for m, e in zip(measured.y, exact.y):
            assert m >= e  # predicted set is a subset of the search space

    def test_ablation_theta(self):
        self._check(exp.ablation_theta(thetas=(8, 32), n=300, k=10), 1)

    def test_ablation_nway(self):
        self._check(exp.ablation_nway(ways_options=(1, 2), n=200, k=10), 2)

    def test_scale_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.0")
        assert exp.scale(500) == 1000
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.001")
        assert exp.scale(500) == 100  # floor

    def test_canonical_query_weights(self):
        f = exp.canonical_query(3)
        assert f.weights.tolist() == pytest.approx([0.5, 1 / 3, 1 / 6])
