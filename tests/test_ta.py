"""Unit tests for the Threshold Algorithm baseline."""

import numpy as np
import pytest

from repro.baselines.sorted_lists import SortedLists
from repro.baselines.ta import ThresholdAlgorithm
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction, MinFunction, ProductFunction
from repro.data.generators import correlated, gaussian, uniform
from tests.conftest import assert_correct_topk


class TestThresholdAlgorithm:
    @pytest.mark.parametrize("maker", [uniform, gaussian, correlated])
    @pytest.mark.parametrize("k", [1, 10, 50])
    def test_matches_bruteforce(self, maker, k):
        dataset = maker(200, 3, seed=15)
        ta = ThresholdAlgorithm(dataset)
        f = LinearFunction([0.5, 0.3, 0.2])
        assert_correct_topk(ta.top_k(f, k), dataset, f, k)

    def test_nonlinear_monotone_functions(self):
        dataset = uniform(150, 3, seed=16)
        ta = ThresholdAlgorithm(dataset)
        for f in (MinFunction(), ProductFunction([1.0, 1.0, 1.0])):
            assert_correct_topk(ta.top_k(f, 8), dataset, f, 8)

    def test_stops_early_on_correlated_data(self):
        dataset = correlated(400, 3, seed=17)
        ta = ThresholdAlgorithm(dataset)
        result = ta.top_k(LinearFunction([1 / 3] * 3), 5)
        assert result.stats.computed < len(dataset) / 2

    def test_counts_accesses(self):
        dataset = uniform(100, 2, seed=18)
        result = ThresholdAlgorithm(dataset).top_k(LinearFunction([0.5, 0.5]), 3)
        assert result.stats.sequential > 0
        assert result.stats.random == result.stats.computed > 0

    def test_each_record_randomly_accessed_once(self):
        dataset = uniform(80, 3, seed=19)
        result = ThresholdAlgorithm(dataset).top_k(LinearFunction([1 / 3] * 3), 10)
        assert result.stats.random == len(result.stats.computed_ids)

    def test_rejects_nonpositive_k(self, small_dataset):
        with pytest.raises(ValueError):
            ThresholdAlgorithm(small_dataset).top_k(LinearFunction([0.5, 0.5]), 0)

    def test_k_larger_than_dataset(self, small_dataset):
        f = LinearFunction([0.5, 0.5])
        result = ThresholdAlgorithm(small_dataset).top_k(f, 99)
        assert len(result) == len(small_dataset)

    def test_shared_lists_substrate(self, small_dataset):
        lists = SortedLists(small_dataset)
        ta = ThresholdAlgorithm(small_dataset, lists=lists)
        assert ta.lists is lists

    def test_threshold_terminates_before_exhaustion(self):
        # A dataset where the best record tops every list: TA stops at
        # depth 1 with threshold == its score.
        ds = Dataset([[10.0, 10.0], [1.0, 2.0], [2.0, 1.0]])
        result = ThresholdAlgorithm(ds).top_k(LinearFunction([0.5, 0.5]), 1)
        assert result.ids == (0,)
        assert result.stats.computed <= 3
