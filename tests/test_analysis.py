"""The static-analysis subsystem: rules, engine, CLI, and self-lint.

Three layers of assurance:

- **fixtures**: each file under ``analysis_fixtures/`` violates exactly
  one rule, on the line(s) marked ``# VIOLATION`` — proving every rule
  actually fires, at the right place;
- **engine**: suppression syntax, mandatory reasons, parse-error
  handling, report formats;
- **self-lint**: the shipped tree is clean under ``repro lint --strict``
  (the same gate CI enforces), so every rule's true positives have
  either been fixed or explicitly justified.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    default_rules,
    format_json,
    format_text,
    lint_paths,
    lint_source,
)
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).parent.parent

#: rule id -> fixture file violating exactly that rule.
FIXTURE_FOR_RULE = {
    "snapshot-immutability": "snapshot_immutability_violation.py",
    "stats-threading": "stats_threading_violation.py",
    "typed-errors": "typed_errors_violation.py",
    "determinism": "determinism_violation.py",
    "writer-discipline": "writer_discipline_violation.py",
    "dtype-discipline": "dtype_discipline_violation.py",
    "guard-coverage": "guard_coverage_violation.py",
    "public-api": "public_api_violation.py",
    "worker-discipline": "worker_discipline_violation.py",
    "deadline-discipline": "deadline_discipline_violation.py",
    "mmap-discipline": "mmap_discipline_violation.py",
}


def _marked_lines(source: str) -> set[int]:
    return {
        lineno
        for lineno, line in enumerate(source.splitlines(), start=1)
        if "# VIOLATION" in line
    }


def _rule(rule_id: str):
    (rule,) = [r for r in default_rules() if r.id == rule_id]
    return rule


class TestFixtures:
    def test_every_rule_has_a_fixture(self):
        assert set(FIXTURE_FOR_RULE) == {r.id for r in default_rules()}

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_FOR_RULE))
    def test_rule_fires_on_marked_lines(self, rule_id):
        source = (FIXTURES / FIXTURE_FOR_RULE[rule_id]).read_text()
        marked = _marked_lines(source)
        assert marked, "fixture must mark its violation with # VIOLATION"
        findings = lint_source(
            source,
            FIXTURE_FOR_RULE[rule_id],
            rules=[_rule(rule_id)],
            respect_scope=False,
        )
        assert findings, f"{rule_id} did not fire on its fixture"
        assert all(f.rule == rule_id for f in findings)
        assert {f.line for f in findings} == marked

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_FOR_RULE))
    def test_suppression_silences_the_fixture(self, rule_id):
        source = (FIXTURES / FIXTURE_FOR_RULE[rule_id]).read_text()
        suppressed = "\n".join(
            line.replace(
                "# VIOLATION", f"# repro: noqa[{rule_id}] -- fixture test"
            )
            for line in source.splitlines()
        )
        findings = lint_source(
            suppressed,
            FIXTURE_FOR_RULE[rule_id],
            rules=[_rule(rule_id)],
            respect_scope=False,
        )
        assert findings == []


class TestEngine:
    def test_suppression_without_reason_is_reported(self):
        source = "x = {1: 2}\nfor k in x.keys():  # repro: noqa[determinism]\n    pass\n"
        findings = lint_source(source, "core/example.py")
        assert [f.rule for f in findings] == ["suppression"]
        assert findings[0].line == 2

    def test_suppression_report_cannot_be_suppressed(self):
        source = "pass  # repro: noqa[suppression]\n"
        findings = lint_source(source, "core/example.py")
        assert [f.rule for f in findings] == ["suppression"]

    def test_suppression_only_covers_listed_rules(self):
        source = (
            "def run(graph):\n"
            "    for rid in graph.layer(0):  # repro: noqa[typed-errors] -- wrong rule\n"
            "        print(rid)\n"
        )
        findings = lint_source(source, "core/example.py")
        assert "determinism" in {f.rule for f in findings}

    def test_docstring_noqa_example_is_not_live(self):
        source = '"""Docs: use # repro: noqa[determinism] to suppress."""\n'
        assert lint_source(source, "core/example.py") == []

    def test_parse_error_is_a_finding_not_a_crash(self):
        findings = lint_source("def broken(:\n", "core/broken.py")
        assert [f.rule for f in findings] == ["parse-error"]

    def test_formats(self):
        findings = lint_source("def broken(:\n", "core/broken.py")
        text = format_text(findings)
        assert "core/broken.py:1" in text and "1 finding" in text
        payload = json.loads(format_json(findings))
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "parse-error"
        assert {r["id"] for r in payload["rules"]} == set(FIXTURE_FOR_RULE)

    def test_rule_scoping(self):
        # A serve/-scoped rule must not fire outside serve/ when scope is
        # respected.
        source = "class A:\n    def f(self):\n        self._wal.append({})\n"
        rule = _rule("writer-discipline")
        assert lint_source(source, "bench/example.py", rules=[rule]) == []
        assert lint_source(source, "serve/example.py", rules=[rule]) != []


class TestSelfLint:
    def test_shipped_tree_is_clean(self):
        findings = lint_paths()
        assert findings == [], format_text(findings)

    def test_cli_strict_exits_zero(self, capsys):
        assert cli_main(["lint", "--strict"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_cli_json_catalog(self, capsys):
        assert cli_main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert {r["id"] for r in payload["rules"]} == set(FIXTURE_FOR_RULE)

    def test_cli_rejects_unknown_rule(self, capsys):
        assert cli_main(["lint", "--select", "no-such-rule"]) == 2

    def test_cli_strict_fails_on_fixtures(self, capsys):
        # The fixture directory is the positive control for the CI gate.
        assert (
            cli_main(["lint", "--strict", str(FIXTURES)]) == 1
        )


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_core_serve():
    proc = subprocess.run(
        ["mypy", "--strict", "src/repro/core", "src/repro/serve"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={**os.environ, "MYPYPATH": "src"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def _interpreter_results(order: str) -> dict:
    """Run the maintenance + query scenario in a fresh interpreter.

    Heir selection during pseudo-cover repair iterates a layer *set*; the
    regression this pins (maintenance.py) made the chosen heir — and with
    it the merged graph — depend on the interpreter's set iteration
    order.  A fresh process with a different insertion order is the only
    honest way to vary that order.
    """
    script = f"""
import json
import numpy as np
from repro.core.builder import build_extended_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.maintenance import delete_record
from repro.core.advanced import AdvancedTraveler

rng = np.random.default_rng(7)
ds = Dataset(rng.uniform(size=(120, 3)))
graph = build_extended_graph(ds, theta=4, seed=0)
for rid in {order}:
    delete_record(graph, rid)
function = LinearFunction([0.5, 0.3, 0.2])
result = AdvancedTraveler(graph).top_k(function, k=15)
print(json.dumps({{"ids": list(result.ids), "scores": list(result.scores)}}))
"""
    proc = subprocess.run(
        [sys.executable, "-c", script],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_maintenance_result_order_is_run_independent():
    """Deletion order and hash seed must not change the served ranking."""
    ascending = "sorted(range(0, 120, 3))"
    descending = "sorted(range(0, 120, 3), reverse=True)"
    a = _interpreter_results(ascending)
    b = _interpreter_results(descending)
    c = _interpreter_results(ascending)
    assert a == c, "same scenario diverged between interpreter runs"
    assert a["ids"] == b["ids"], "deletion order changed the served ranking"
    assert a["scores"] == pytest.approx(b["scores"], abs=0.0)
