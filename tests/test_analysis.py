"""The static-analysis subsystem: rules, engine, CLI, and self-lint.

Three layers of assurance:

- **fixtures**: each file under ``analysis_fixtures/`` violates exactly
  one rule, on the line(s) marked ``# VIOLATION`` — proving every rule
  actually fires, at the right place;
- **engine**: suppression syntax, mandatory reasons, parse-error
  handling, report formats;
- **self-lint**: the shipped tree is clean under ``repro lint --strict``
  (the same gate CI enforces), so every rule's true positives have
  either been fixed or explicitly justified.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

import ast

from repro.analysis import (
    Rule,
    default_rules,
    flow_rules,
    format_json,
    format_text,
    lint_paths,
    lint_source,
)
from repro.analysis.engine import _load_tree
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).parent.parent

#: rule id -> fixture file violating exactly that rule.
FIXTURE_FOR_RULE = {
    "snapshot-immutability": "snapshot_immutability_violation.py",
    "stats-threading": "stats_threading_violation.py",
    "typed-errors": "typed_errors_violation.py",
    "determinism": "determinism_violation.py",
    "writer-discipline": "writer_discipline_violation.py",
    "dtype-discipline": "dtype_discipline_violation.py",
    "guard-coverage": "guard_coverage_violation.py",
    "public-api": "public_api_violation.py",
    "worker-discipline": "worker_discipline_violation.py",
    "deadline-discipline": "deadline_discipline_violation.py",
    "mmap-discipline": "mmap_discipline_violation.py",
    "overlay-discipline": "overlay_discipline_violation.py",
}

#: flow rule id -> (fixture file, relpath to lint it as).  The deadline
#: fixture lints as ``serve/index.py`` so its ``ServingIndex.query`` is
#: the real serving entry-point qualname the pass anchors on.
FLOW_FIXTURE_FOR_RULE = {
    "flow-resource-lifecycle": (
        "flow_resource_violation.py",
        "flow_resource_violation.py",
    ),
    "flow-exception-escape": (
        "flow_exception_violation.py",
        "flow_exception_violation.py",
    ),
    "flow-deadline-propagation": (
        "flow_deadline_violation.py",
        "serve/index.py",
    ),
}


def _marked_lines(source: str) -> set[int]:
    return {
        lineno
        for lineno, line in enumerate(source.splitlines(), start=1)
        if "# VIOLATION" in line
    }


def _rule(rule_id: str):
    (rule,) = [r for r in default_rules() if r.id == rule_id]
    return rule


def _flow_rule(rule_id: str):
    (rule,) = [r for r in flow_rules() if r.id == rule_id]
    return rule


class TestFixtures:
    def test_every_rule_has_a_fixture(self):
        assert set(FIXTURE_FOR_RULE) == {r.id for r in default_rules()}
        assert set(FLOW_FIXTURE_FOR_RULE) == {r.id for r in flow_rules()}

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_FOR_RULE))
    def test_rule_fires_on_marked_lines(self, rule_id):
        source = (FIXTURES / FIXTURE_FOR_RULE[rule_id]).read_text()
        marked = _marked_lines(source)
        assert marked, "fixture must mark its violation with # VIOLATION"
        findings = lint_source(
            source,
            FIXTURE_FOR_RULE[rule_id],
            rules=[_rule(rule_id)],
            respect_scope=False,
        )
        assert findings, f"{rule_id} did not fire on its fixture"
        assert all(f.rule == rule_id for f in findings)
        assert {f.line for f in findings} == marked

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_FOR_RULE))
    def test_suppression_silences_the_fixture(self, rule_id):
        source = (FIXTURES / FIXTURE_FOR_RULE[rule_id]).read_text()
        suppressed = "\n".join(
            line.replace(
                "# VIOLATION", f"# repro: noqa[{rule_id}] -- fixture test"
            )
            for line in source.splitlines()
        )
        findings = lint_source(
            suppressed,
            FIXTURE_FOR_RULE[rule_id],
            rules=[_rule(rule_id)],
            respect_scope=False,
        )
        assert findings == []


class TestFlowFixtures:
    """The interprocedural passes, one single-module violation each."""

    @pytest.mark.parametrize("rule_id", sorted(FLOW_FIXTURE_FOR_RULE))
    def test_flow_rule_fires_on_marked_lines(self, rule_id):
        fname, relpath = FLOW_FIXTURE_FOR_RULE[rule_id]
        source = (FIXTURES / fname).read_text()
        marked = _marked_lines(source)
        assert marked, "fixture must mark its violation with # VIOLATION"
        findings = lint_source(
            source, relpath, rules=[_flow_rule(rule_id)], respect_scope=False
        )
        assert findings, f"{rule_id} did not fire on its fixture"
        assert all(f.rule == rule_id for f in findings)
        assert {f.line for f in findings} == marked

    @pytest.mark.parametrize("rule_id", sorted(FLOW_FIXTURE_FOR_RULE))
    def test_suppression_silences_the_flow_fixture(self, rule_id):
        fname, relpath = FLOW_FIXTURE_FOR_RULE[rule_id]
        source = (FIXTURES / fname).read_text()
        suppressed = "\n".join(
            line.replace(
                "# VIOLATION", f"# repro: noqa[{rule_id}] -- fixture test"
            )
            for line in source.splitlines()
        )
        findings = lint_source(
            suppressed,
            relpath,
            rules=[_flow_rule(rule_id)],
            respect_scope=False,
        )
        assert findings == []


class TestCallGraph:
    """The resolver over the ``flowpkg`` mini-package fixture."""

    @pytest.fixture(scope="class")
    def project(self):
        from repro.analysis.flow import Project

        root = FIXTURES / "flowpkg"
        contexts, parse_findings = _load_tree([root], root)
        assert parse_findings == []
        return Project(contexts)

    def _edges(self, project):
        return {
            (edge.caller, edge.callee)
            for edges in project.callgraph.edges.values()
            for edge in edges
        }

    def test_aliased_from_import_resolves(self, project):
        assert (
            "repro.beta.use_from_import",
            "repro.alpha.score",
        ) in self._edges(project)

    def test_module_alias_resolves(self, project):
        assert (
            "repro.beta.use_module_alias",
            "repro.alpha.score",
        ) in self._edges(project)

    def test_method_call_on_constructed_local_resolves(self, project):
        edges = self._edges(project)
        assert ("repro.beta.use_method", "repro.alpha.Meter.__init__") in edges
        assert ("repro.beta.use_method", "repro.alpha.Meter.bump") in edges

    def test_dynamic_call_stays_unresolved(self, project):
        # use_dynamic makes two calls no static resolver can pin down
        # (a parameter call and a call through its result); they must be
        # counted as unresolved, not silently resolved or external.
        stats = project.callgraph.stats()
        assert stats["unresolved"] == 2
        assert project.callgraph.edges.get("repro.beta.use_dynamic") is None

    def test_resolution_rate_accounting(self, project):
        stats = project.callgraph.stats()
        assert stats["resolved"] == 4
        assert stats["rate"] == pytest.approx(4 / 6, abs=1e-4)

    def test_reachability_and_sample_path(self, project):
        graph = project.callgraph
        reach = graph.reachable({"repro.beta.use_method"})
        assert "repro.alpha.Meter.bump" in reach
        path = graph.sample_path(
            "repro.beta.use_from_import", "repro.alpha.score"
        )
        assert path == ["repro.beta.use_from_import", "repro.alpha.score"]


class TestSuppressionSpans:
    """``# repro: noqa`` anchored by statement span, not physical line."""

    class _DecoratorRule(Rule):
        id = "decorator-test"
        summary = "test rule anchoring findings on decorator lines"
        hint = ""

        def check(self, ctx):
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for dec in node.decorator_list:
                        yield self.finding(ctx, dec, "decorated")

    DECORATED = "@decorate\ndef fn():{noqa}\n    pass\n"

    def test_decorator_line_finding_fires(self):
        findings = lint_source(
            self.DECORATED.format(noqa=""),
            "core/example.py",
            rules=[self._DecoratorRule()],
            respect_scope=False,
        )
        assert [f.line for f in findings] == [1]

    def test_noqa_on_def_line_covers_decorator_lines(self):
        source = self.DECORATED.format(
            noqa="  # repro: noqa[decorator-test] -- span covers decorators"
        )
        findings = lint_source(
            source,
            "core/example.py",
            rules=[self._DecoratorRule()],
            respect_scope=False,
        )
        assert findings == []

    def test_noqa_on_any_line_of_a_multiline_statement(self):
        # The finding anchors on the first line of the call; the noqa
        # sits on the closing line.  Same statement, so it must count.
        source = (
            "def run(graph):\n"
            "    for rid in sorted(\n"
            "        graph.layer(0),\n"
            "        key=hash,\n"
            "    ):  # repro: noqa[determinism] -- exercised by the span test\n"
            "        print(rid)\n"
        )
        findings = lint_source(source, "core/example.py")
        assert [f for f in findings if f.rule == "determinism"] == []

    def test_noqa_on_def_does_not_leak_into_the_body(self):
        # The def-statement span ends before the body: a suppression on
        # the signature must not silence findings inside the function.
        source = (
            "def run(x):  # repro: noqa[determinism] -- header only\n"
            "    for k in x.keys():\n"
            "        print(k)\n"
        )
        findings = lint_source(source, "core/example.py")
        assert "determinism" in {f.rule for f in findings}


class TestBaselineRatchet:
    """The committed-findings baseline: only *new* findings fail."""

    def _finding(self, line, message="m", rule="flow-exception-escape"):
        from repro.analysis import Finding

        return Finding(
            path="x.py",
            line=line,
            col=0,
            rule=rule,
            message=message,
            relpath="serve/x.py",
        )

    def test_known_findings_pass_new_ones_fail(self, tmp_path):
        from repro.analysis.flow import (
            load_baseline,
            new_findings,
            write_baseline,
        )

        base = tmp_path / "baseline.json"
        known = self._finding(10)
        write_baseline(base, [known])
        baseline = load_baseline(base)
        # The same fingerprint on a *different line* is still known —
        # baselines survive unrelated edits above the finding.
        moved = self._finding(99)
        assert new_findings([moved], baseline) == []
        # A different message is a new finding; with the known one also
        # present, exactly the new one is reported.
        fresh = self._finding(20, message="other")
        assert new_findings([moved, fresh], baseline) == [fresh]
        # Two occurrences of a once-baselined fingerprint: the second
        # exceeds the allowance.
        assert new_findings([moved, self._finding(120)], baseline) == [
            self._finding(120)
        ]

    def test_suppression_findings_are_never_baselined(self, tmp_path):
        from repro.analysis.flow import load_baseline, new_findings, write_baseline

        base = tmp_path / "baseline.json"
        naked = self._finding(5, rule="suppression")
        write_baseline(base, [naked])
        assert new_findings([naked], load_baseline(base)) == [naked]

    def test_unreadable_baseline_raises(self, tmp_path):
        from repro.analysis.flow import load_baseline

        bad = tmp_path / "baseline.json"
        bad.write_text("not json")
        with pytest.raises(ValueError):
            load_baseline(bad)
        bad.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            load_baseline(bad)

    def test_missing_baseline_is_empty(self, tmp_path):
        from repro.analysis.flow import load_baseline

        assert len(load_baseline(tmp_path / "absent.json")) == 0

    def test_cli_ratchet_fails_then_passes_then_ratchets(
        self, tmp_path, capsys
    ):
        # A fixture finding not in the baseline fails --flow --strict...
        base = str(tmp_path / "baseline.json")
        target = str(FIXTURES / "typed_errors_violation.py")
        assert (
            cli_main(
                ["lint", "--flow", "--strict", "--baseline", base, target]
            )
            == 1
        )
        # ...is accepted once recorded...
        assert (
            cli_main(
                [
                    "lint",
                    "--flow",
                    "--baseline",
                    base,
                    "--write-baseline",
                    target,
                ]
            )
            == 0
        )
        assert (
            cli_main(
                ["lint", "--flow", "--strict", "--baseline", base, target]
            )
            == 0
        )
        # ...and a synthetic *new* finding still fails the ratchet.
        extra = str(FIXTURES / "snapshot_immutability_violation.py")
        assert (
            cli_main(
                [
                    "lint",
                    "--flow",
                    "--strict",
                    "--baseline",
                    base,
                    target,
                    extra,
                ]
            )
            == 1
        )
        capsys.readouterr()


class TestEngine:
    def test_suppression_without_reason_is_reported(self):
        source = "x = {1: 2}\nfor k in x.keys():  # repro: noqa[determinism]\n    pass\n"
        findings = lint_source(source, "core/example.py")
        assert [f.rule for f in findings] == ["suppression"]
        assert findings[0].line == 2

    def test_suppression_report_cannot_be_suppressed(self):
        source = "pass  # repro: noqa[suppression]\n"
        findings = lint_source(source, "core/example.py")
        assert [f.rule for f in findings] == ["suppression"]

    def test_suppression_only_covers_listed_rules(self):
        source = (
            "def run(graph):\n"
            "    for rid in graph.layer(0):  # repro: noqa[typed-errors] -- wrong rule\n"
            "        print(rid)\n"
        )
        findings = lint_source(source, "core/example.py")
        assert "determinism" in {f.rule for f in findings}

    def test_docstring_noqa_example_is_not_live(self):
        source = '"""Docs: use # repro: noqa[determinism] to suppress."""\n'
        assert lint_source(source, "core/example.py") == []

    def test_parse_error_is_a_finding_not_a_crash(self):
        findings = lint_source("def broken(:\n", "core/broken.py")
        assert [f.rule for f in findings] == ["parse-error"]

    def test_formats(self):
        findings = lint_source("def broken(:\n", "core/broken.py")
        text = format_text(findings)
        assert "core/broken.py:1" in text and "1 finding" in text
        payload = json.loads(format_json(findings))
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "parse-error"
        assert {r["id"] for r in payload["rules"]} == set(FIXTURE_FOR_RULE)

    def test_rule_scoping(self):
        # A serve/-scoped rule must not fire outside serve/ when scope is
        # respected.
        source = "class A:\n    def f(self):\n        self._wal.append({})\n"
        rule = _rule("writer-discipline")
        assert lint_source(source, "bench/example.py", rules=[rule]) == []
        assert lint_source(source, "serve/example.py", rules=[rule]) != []


class TestSelfLint:
    def test_shipped_tree_is_clean(self):
        findings = lint_paths()
        assert findings == [], format_text(findings)

    def test_cli_strict_exits_zero(self, capsys):
        assert cli_main(["lint", "--strict"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_cli_json_catalog(self, capsys):
        assert cli_main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert {r["id"] for r in payload["rules"]} == set(FIXTURE_FOR_RULE)

    def test_cli_rejects_unknown_rule(self, capsys):
        assert cli_main(["lint", "--select", "no-such-rule"]) == 2

    def test_cli_flow_rule_ids_need_flow_mode(self, capsys):
        # Flow rule ids are selectable only when --flow activates them.
        assert cli_main(["lint", "--select", "flow-exception-escape"]) == 2

    def test_flow_tree_is_clean_and_reports_resolution(self, capsys):
        assert cli_main(["lint", "--flow", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "resolution rate" in out
        assert "baseline:" in out

    def test_flow_strict_fails_below_resolution_floor(self, capsys):
        # An impossible floor turns the self-check into a failure even
        # on a clean tree: the rate is a pinned number, not decoration.
        assert (
            cli_main(
                ["lint", "--flow", "--strict", "--min-resolution", "0.999"]
            )
            == 1
        )
        capsys.readouterr()

    def test_flow_json_report_sections(self, capsys):
        assert cli_main(["lint", "--flow", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(FIXTURE_FOR_RULE) | set(FLOW_FIXTURE_FOR_RULE) == {
            r["id"] for r in payload["rules"]
        }
        assert payload["callgraph"]["rate"] >= payload["callgraph"]["floor"]
        assert payload["baseline"]["new"] == 0

    def test_cli_strict_fails_on_fixtures(self, capsys):
        # The fixture directory is the positive control for the CI gate.
        assert (
            cli_main(["lint", "--strict", str(FIXTURES)]) == 1
        )


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_core_serve():
    proc = subprocess.run(
        ["mypy", "--strict", "src/repro/core", "src/repro/serve"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={**os.environ, "MYPYPATH": "src"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def _interpreter_results(order: str) -> dict:
    """Run the maintenance + query scenario in a fresh interpreter.

    Heir selection during pseudo-cover repair iterates a layer *set*; the
    regression this pins (maintenance.py) made the chosen heir — and with
    it the merged graph — depend on the interpreter's set iteration
    order.  A fresh process with a different insertion order is the only
    honest way to vary that order.
    """
    script = f"""
import json
import numpy as np
from repro.core.builder import build_extended_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.maintenance import delete_record
from repro.core.advanced import AdvancedTraveler

rng = np.random.default_rng(7)
ds = Dataset(rng.uniform(size=(120, 3)))
graph = build_extended_graph(ds, theta=4, seed=0)
for rid in {order}:
    delete_record(graph, rid)
function = LinearFunction([0.5, 0.3, 0.2])
result = AdvancedTraveler(graph).top_k(function, k=15)
print(json.dumps({{"ids": list(result.ids), "scores": list(result.scores)}}))
"""
    proc = subprocess.run(
        [sys.executable, "-c", script],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_maintenance_result_order_is_run_independent():
    """Deletion order and hash seed must not change the served ranking."""
    ascending = "sorted(range(0, 120, 3))"
    descending = "sorted(range(0, 120, 3), reverse=True)"
    a = _interpreter_results(ascending)
    b = _interpreter_results(descending)
    c = _interpreter_results(ascending)
    assert a == c, "same scenario diverged between interpreter runs"
    assert a["ids"] == b["ids"], "deletion order changed the served ranking"
    assert a["scores"] == pytest.approx(b["scores"], abs=0.0)
