"""Unit tests for pseudo records / Extended DG (paper Section IV-A)."""

import numpy as np
import pytest

from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.dataset import Dataset
from repro.core.dominance import dominates, strictly_dominates
from repro.core.functions import LinearFunction
from repro.core.pseudo import (
    count_pseudo_levels,
    default_theta,
    extend_with_pseudo_levels,
    pseudo_parent_vector,
)
from repro.data.generators import all_skyline, uniform


class TestTheta:
    def test_paper_formula(self):
        # page=4096, record = 8*(m+1) bytes.
        assert default_theta(3) == 4096 // 32
        assert default_theta(5) == 4096 // 48

    def test_floor_of_two(self):
        assert default_theta(10_000) == 2

    def test_custom_page(self):
        assert default_theta(3, page_bytes=1024) == 32


class TestPseudoParentVector:
    def test_strictly_dominates_members(self, rng):
        members = rng.uniform(size=(20, 4))
        parent = pseudo_parent_vector(members)
        for member in members:
            assert strictly_dominates(parent, member)

    def test_close_to_max(self):
        members = np.array([[1.0, 5.0], [3.0, 2.0]])
        parent = pseudo_parent_vector(members)
        np.testing.assert_allclose(parent, [3.0, 5.0], rtol=1e-6)


class TestMotivationExample:
    """The paper's Fig. 4: 5 first-layer records + pseudo parents."""

    @pytest.fixture
    def fig4_dataset(self):
        # Five records forming a single maximal layer (anti-chain), like
        # the database D' of Fig. 4a.
        return Dataset([
            [60.0, 60.0],    # 1
            [80.0, 50.0],    # 2
            [130.0, 40.0],   # 3
            [190.0, 30.0],   # 4
            [260.0, 20.0],   # 5
        ])

    def test_all_records_in_first_layer(self, fig4_dataset):
        graph = build_dominant_graph(fig4_dataset)
        assert graph.layer_sizes() == [5]

    def test_pseudo_level_built(self, fig4_dataset):
        graph = build_extended_graph(fig4_dataset, theta=3)
        assert graph.num_pseudo >= 1
        assert count_pseudo_levels(graph) >= 1
        graph.validate()

    def test_advanced_traveler_accesses_fewer_than_all(self, fig4_dataset):
        # The paper's point: top-2 via pseudo records accesses fewer
        # records than scoring the whole first layer... pseudo accesses
        # count too ("the cost is 4, smaller than 5 in Basic Traveler").
        graph = build_extended_graph(fig4_dataset, theta=3)
        f = LinearFunction([0.5, 0.5])
        result = AdvancedTraveler(graph).top_k(f, 2)
        assert sorted(result.ids) == [3, 4]  # (190,30)=110, (260,20)=140
        assert result.stats.computed <= 5 + graph.num_pseudo


class TestExtendWithPseudoLevels:
    def test_returns_zero_when_not_needed(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        assert extend_with_pseudo_levels(graph, theta=10) == 0

    def test_stacks_until_theta(self):
        dataset = all_skyline(200, 3, seed=1)
        graph = build_dominant_graph(dataset)
        added = extend_with_pseudo_levels(graph, theta=8)
        assert added >= 2  # 200 -> 25 -> 4
        assert len(graph.layer(0)) <= 8
        graph.validate()

    def test_every_record_keeps_a_parent(self):
        dataset = all_skyline(120, 4, seed=2)
        graph = build_dominant_graph(dataset)
        extend_with_pseudo_levels(graph, theta=8)
        levels = count_pseudo_levels(graph)
        for index in range(1, graph.num_layers):
            for rid in graph.layer(index):
                assert graph.parents_of(rid), (index, rid)

    def test_pseudo_parents_dominate_children(self):
        dataset = all_skyline(100, 3, seed=3)
        graph = build_dominant_graph(dataset)
        extend_with_pseudo_levels(graph, theta=8)
        for index in range(count_pseudo_levels(graph)):
            for pid in graph.layer(index):
                for child in graph.children_of(pid):
                    assert dominates(graph.vector(pid), graph.vector(child))

    def test_no_dominance_within_pseudo_level(self):
        dataset = all_skyline(150, 3, seed=4)
        graph = build_dominant_graph(dataset)
        extend_with_pseudo_levels(graph, theta=8)
        for index in range(count_pseudo_levels(graph)):
            members = sorted(graph.layer(index))
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    va, vb = graph.vector(a), graph.vector(b)
                    assert not dominates(va, vb) and not dominates(vb, va)

    def test_rejects_tiny_theta(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        with pytest.raises(ValueError):
            extend_with_pseudo_levels(graph, theta=1)

    def test_count_pseudo_levels_plain_graph(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        assert count_pseudo_levels(graph) == 0

    def test_advanced_answers_equal_basic(self):
        from repro.core.traveler import BasicTraveler

        dataset = uniform(300, 4, seed=5)
        plain = build_dominant_graph(dataset)
        extended = build_extended_graph(dataset, theta=8)
        f = LinearFunction([0.4, 0.3, 0.2, 0.1])
        for k in (1, 7, 40):
            basic = BasicTraveler(plain).top_k(f, k)
            advanced = AdvancedTraveler(extended).top_k(f, k)
            assert basic.score_multiset() == pytest.approx(
                advanced.score_multiset()
            )

    def test_pseudo_reduces_first_layer_cost_on_antichain(self):
        # The worst case (Fig. 9c/d motivation): everything in layer 1.
        from repro.core.traveler import BasicTraveler

        dataset = all_skyline(400, 5, seed=6)
        f = LinearFunction(np.arange(5, 0, -1) / 15.0)
        basic = BasicTraveler(build_dominant_graph(dataset)).top_k(f, 5)
        advanced = AdvancedTraveler(
            build_extended_graph(dataset, theta=8)
        ).top_k(f, 5)
        assert basic.score_multiset() == pytest.approx(advanced.score_multiset())
        assert advanced.stats.computed < basic.stats.computed

    def test_pseudo_accesses_are_counted(self):
        dataset = all_skyline(100, 3, seed=7)
        graph = build_extended_graph(dataset, theta=8)
        result = AdvancedTraveler(graph).top_k(LinearFunction([0.5, 0.3, 0.2]), 3)
        assert result.stats.pseudo_computed > 0
        assert result.stats.computed >= result.stats.pseudo_computed
