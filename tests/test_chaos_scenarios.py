"""The chaos control plane's scenarios, run for real.

Every registered scenario is executed against a live
:class:`~repro.serve.index.ServingIndex` with a shrunken
:class:`~repro.testing.scenarios.ChaosConfig` (fewer records, fewer
rounds) so the whole matrix stays CI-sized, and its three invariants are
asserted:

- **never wrong** — every completed answer is bit-identical to the
  epoch-keyed oracle;
- **never wedged** — no query outlives its deadline plus the grace
  window;
- **bounded recovery** — full-fidelity service returns within the
  configured limit after the last fault.

These are integration tests of the whole degradation ladder (fabric →
compiled → reference), not of the orchestrator alone: a regression in
the executor's heal/reap logic, the guard's breaker handling, or the
WAL replay path shows up here as a violated invariant.
"""

from __future__ import annotations

import warnings

import pytest

from repro.errors import DegradedResultWarning
from repro.testing import SCENARIOS, ChaosConfig, run_scenario

#: Small enough for CI, large enough that the fault schedules actually
#: land mid-traffic (the scenarios inject between rounds).
CONFIG = ChaosConfig(records=250, rounds=3, batch=3, reply_timeout=0.3)


@pytest.fixture(autouse=True)
def _quiet_degraded():
    # Degraded-tier answers are the expected behaviour under fault, not
    # a test smell worth a warnings summary.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        yield


def test_registry_is_complete():
    assert set(SCENARIOS) == {
        "hung_worker",
        "sigkill_storm",
        "slow_jitter",
        "shm_tamper",
        "wal_fsync_failure",
        "mid_publish_kill",
        "store_tamper_section",
        "store_kill_mid_publish",
    }
    for fn in SCENARIOS.values():
        assert fn.__doc__, "every scenario documents its fault schedule"


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_invariants_hold(name):
    report = run_scenario(name, seed=0, config=CONFIG)
    invariants = report.invariants()
    assert report.passed, (
        f"{name} violated {[k for k, v in invariants.items() if not v]}; "
        f"events:\n" + "\n".join(report.events)
    )
    assert invariants == {
        "never_wrong": True,
        "never_wedged_past_deadline": True,
        "bounded_recovery": True,
    }
    assert report.queries >= CONFIG.rounds * CONFIG.batch
    assert report.wrong == 0
    assert report.overruns == 0


def test_report_round_trips_to_json():
    report = run_scenario("hung_worker", seed=1, config=CONFIG)
    payload = report.to_dict()
    assert payload["name"] == "hung_worker"
    assert payload["seed"] == 1
    assert payload["invariants"]["never_wrong"] is True
    assert payload["availability"] == pytest.approx(
        report.availability, abs=1e-4
    )
    assert payload["passed"] is True
