"""Cross-cutting edge cases: degenerate inputs through every algorithm.

Each scenario here broke (or could plausibly break) at least one
implementation during development: single records, single dimensions,
total duplication, constant columns, extreme weights, and k at the
boundaries.
"""

import numpy as np
import pytest

from repro.baselines import (
    AppRIIndex,
    CombinedAlgorithm,
    LPTAIndex,
    NoRandomAccess,
    OnionIndex,
    PreferIndex,
    RankCubeIndex,
    ThresholdAlgorithm,
    naive_top_k,
)
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.traveler import BasicTraveler


def algorithms_for(dataset):
    yield BasicTraveler(build_dominant_graph(dataset)).top_k
    yield AdvancedTraveler(build_extended_graph(dataset, theta=4)).top_k
    yield ThresholdAlgorithm(dataset).top_k
    yield CombinedAlgorithm(dataset).top_k
    yield NoRandomAccess(dataset).top_k
    yield OnionIndex(dataset).top_k
    yield AppRIIndex(dataset).top_k
    yield PreferIndex(dataset).top_k
    yield LPTAIndex(dataset).top_k
    yield RankCubeIndex(dataset).top_k


def check_all(dataset, function, k):
    reference = naive_top_k(dataset, function, k).score_multiset()
    for top_k in algorithms_for(dataset):
        got = top_k(function, k).score_multiset()
        np.testing.assert_allclose(got, reference, atol=1e-9)


class TestSingleRecord:
    def test_every_algorithm(self):
        check_all(Dataset([[3.0, 4.0]]), LinearFunction([0.5, 0.5]), 1)

    def test_k_exceeds_one(self):
        check_all(Dataset([[3.0, 4.0]]), LinearFunction([0.5, 0.5]), 5)


class TestSingleDimension:
    def test_every_algorithm(self):
        dataset = Dataset([[float(v)] for v in (5, 1, 9, 3, 9, 0)])
        check_all(dataset, LinearFunction([1.0]), 3)

    def test_dg_layers_are_score_levels(self):
        dataset = Dataset([[float(v)] for v in (5, 1, 9, 3)])
        graph = build_dominant_graph(dataset)
        # 1-d dominance is a total order up to ties.
        assert graph.layer_sizes() == [1, 1, 1, 1]
        assert graph.layer(0) == frozenset({2})


class TestAllIdentical:
    def test_every_algorithm(self):
        dataset = Dataset(np.ones((12, 3)))
        check_all(dataset, LinearFunction([0.2, 0.3, 0.5]), 4)

    def test_dg_single_layer(self):
        graph = build_dominant_graph(Dataset(np.ones((12, 3))))
        assert graph.layer_sizes() == [12]
        assert graph.edge_count() == 0


class TestConstantColumn:
    def test_every_algorithm(self):
        rng = np.random.default_rng(41)
        values = np.column_stack([rng.uniform(size=30), np.full(30, 7.0)])
        check_all(Dataset(values), LinearFunction([0.5, 0.5]), 10)


class TestExtremeWeights:
    def test_zero_weight_dimension(self):
        rng = np.random.default_rng(42)
        dataset = Dataset(rng.uniform(size=(40, 3)))
        check_all(dataset, LinearFunction([1.0, 0.0, 0.0]), 10)

    def test_all_zero_weights(self):
        # F == 0 everywhere: any k records are a valid answer; all
        # algorithms must return k zero scores without crashing.
        rng = np.random.default_rng(43)
        dataset = Dataset(rng.uniform(size=(20, 2)))
        check_all(dataset, LinearFunction([0.0, 0.0]), 5)

    def test_tiny_and_huge_values(self):
        dataset = Dataset([[1e-12, 1e12], [1e12, 1e-12], [1.0, 1.0]])
        check_all(dataset, LinearFunction([0.5, 0.5]), 2)


class TestNegativeValues:
    def test_every_algorithm(self):
        # Attribute values may be negative; only weights must be >= 0.
        dataset = Dataset([
            [-5.0, 2.0], [3.0, -4.0], [-1.0, -1.0], [0.0, 0.0],
        ])
        check_all(dataset, LinearFunction([0.6, 0.4]), 3)

    def test_dg_layers_with_negatives(self):
        dataset = Dataset([[-5.0, -5.0], [-1.0, -1.0]])
        graph = build_dominant_graph(dataset)
        assert graph.layer_of(1) == 0
        assert graph.layer_of(0) == 1


class TestKBoundaries:
    def test_k_equals_n(self):
        rng = np.random.default_rng(44)
        dataset = Dataset(rng.uniform(size=(15, 2)))
        check_all(dataset, LinearFunction([0.3, 0.7]), 15)

    def test_k_one(self):
        rng = np.random.default_rng(45)
        dataset = Dataset(rng.uniform(size=(25, 3)))
        check_all(dataset, LinearFunction([0.3, 0.3, 0.4]), 1)


class TestTwoRecordChains:
    def test_dominating_pair(self):
        check_all(Dataset([[2.0, 2.0], [1.0, 1.0]]), LinearFunction([0.5, 0.5]), 2)

    def test_incomparable_pair(self):
        check_all(Dataset([[2.0, 0.0], [0.0, 2.0]]), LinearFunction([0.9, 0.1]), 2)


class TestMaintenanceEdges:
    def test_delete_last_record(self):
        from repro.core.maintenance import delete_record

        graph = build_dominant_graph(Dataset([[1.0, 1.0]]))
        delete_record(graph, 0)
        assert len(graph) == 0

    def test_insert_into_singleton_graph(self):
        from repro.core.maintenance import insert_record

        dataset = Dataset([[1.0, 1.0], [2.0, 2.0]])
        graph = build_dominant_graph(dataset, record_ids=[0])
        insert_record(graph, 1)
        graph.validate()
        assert graph.layer_of(1) == 0

    def test_reinsert_after_delete(self):
        from repro.core.maintenance import delete_record, insert_record

        dataset = Dataset([[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]])
        graph = build_dominant_graph(dataset)
        delete_record(graph, 2)
        insert_record(graph, 2)
        graph.validate()
        assert graph.layers() == build_dominant_graph(dataset).layers()
