"""Unit tests for the RankCube baseline and the naive scan."""

import numpy as np
import pytest

from repro.baselines.naive import naive_top_k
from repro.baselines.rankcube import RankCubeIndex
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction, MinFunction
from repro.data.generators import correlated, gaussian, uniform
from tests.conftest import assert_correct_topk


class TestNaive:
    def test_matches_definition(self, small_dataset):
        f = LinearFunction([0.5, 0.5])
        result = naive_top_k(small_dataset, f, 2)
        assert result.ids == (4, 0)  # 3.0, then 2.5

    def test_counts_full_scan(self, small_dataset):
        result = naive_top_k(small_dataset, LinearFunction([1.0, 0.0]), 1)
        assert result.stats.computed == len(small_dataset)

    def test_rejects_nonpositive_k(self, small_dataset):
        with pytest.raises(ValueError):
            naive_top_k(small_dataset, LinearFunction([0.5, 0.5]), 0)

    def test_tie_break_by_id(self):
        ds = Dataset([[1.0], [1.0], [2.0]])
        result = naive_top_k(ds, LinearFunction([1.0]), 3)
        assert result.ids == (2, 0, 1)


class TestRankCube:
    @pytest.mark.parametrize("maker", [uniform, gaussian, correlated])
    @pytest.mark.parametrize("k", [1, 10, 40])
    def test_matches_bruteforce(self, maker, k):
        dataset = maker(200, 3, seed=73)
        cube = RankCubeIndex(dataset)
        f = LinearFunction([0.5, 0.3, 0.2])
        assert_correct_topk(cube.top_k(f, k), dataset, f, k)

    def test_monotone_nonlinear_supported(self):
        dataset = uniform(150, 3, seed=74)
        f = MinFunction()
        assert_correct_topk(RankCubeIndex(dataset).top_k(f, 5), dataset, f, 5)

    def test_cells_partition_records(self):
        dataset = uniform(120, 2, seed=75)
        cube = RankCubeIndex(dataset, blocks_per_dim=4)
        total = sum(ids.size for ids, _ in cube._cells)
        assert total == 120
        assert cube.num_cells <= 16

    def test_skips_low_cells(self):
        dataset = uniform(400, 2, seed=76)
        cube = RankCubeIndex(dataset, blocks_per_dim=8)
        result = cube.top_k(LinearFunction([0.5, 0.5]), 5)
        assert result.stats.computed < len(dataset)

    def test_resolution_does_not_change_answers(self):
        dataset = uniform(200, 3, seed=77)
        f = LinearFunction([0.4, 0.3, 0.3])
        coarse = RankCubeIndex(dataset, blocks_per_dim=2).top_k(f, 10)
        fine = RankCubeIndex(dataset, blocks_per_dim=16).top_k(f, 10)
        assert coarse.score_multiset() == pytest.approx(fine.score_multiset())

    def test_rejects_bad_resolution(self, small_dataset):
        with pytest.raises(ValueError):
            RankCubeIndex(small_dataset, blocks_per_dim=0)

    def test_constant_column_handled(self):
        ds = Dataset([[1.0, 0.5], [2.0, 0.5], [3.0, 0.5]])
        cube = RankCubeIndex(ds, blocks_per_dim=4)
        result = cube.top_k(LinearFunction([1.0, 0.0]), 1)
        assert result.ids == (2,)

    def test_rejects_nonpositive_k(self, small_dataset):
        with pytest.raises(ValueError):
            RankCubeIndex(small_dataset).top_k(LinearFunction([0.5, 0.5]), 0)

    def test_k_larger_than_dataset(self, small_dataset):
        f = LinearFunction([0.5, 0.5])
        assert len(RankCubeIndex(small_dataset).top_k(f, 99)) == len(small_dataset)
