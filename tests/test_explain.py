"""Unit tests for the query EXPLAIN profiler."""

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.explain import explain_top_k
from repro.core.functions import LinearFunction
from repro.data.generators import all_skyline, uniform


class TestExplainTopK:
    def test_counts_reconcile_with_result(self):
        dataset = uniform(300, 3, seed=1)
        graph = build_extended_graph(dataset, theta=16)
        profile = explain_top_k(graph, LinearFunction([0.5, 0.3, 0.2]), 10)
        per_layer_total = sum(entry.accessed for entry in profile.per_layer)
        assert per_layer_total == profile.total_accessed
        per_layer_pseudo = sum(entry.pseudo for entry in profile.per_layer)
        assert per_layer_pseudo == profile.pseudo_accessed
        assert profile.pseudo_accessed == profile.result.stats.pseudo_computed

    def test_small_k_stays_shallow(self):
        dataset = uniform(400, 3, seed=2)
        graph = build_dominant_graph(dataset)
        shallow = explain_top_k(graph, LinearFunction([0.5, 0.3, 0.2]), 1)
        deep = explain_top_k(graph, LinearFunction([0.5, 0.3, 0.2]), 100)
        assert shallow.deepest_layer <= deep.deepest_layer
        assert shallow.total_accessed < deep.total_accessed

    def test_layer_sizes_match_graph(self):
        dataset = uniform(200, 2, seed=3)
        graph = build_dominant_graph(dataset)
        profile = explain_top_k(graph, LinearFunction([0.5, 0.5]), 5)
        assert [entry.size for entry in profile.per_layer] == graph.layer_sizes()

    def test_pseudo_levels_visible(self):
        dataset = all_skyline(100, 3, seed=4)
        graph = build_extended_graph(dataset, theta=8)
        profile = explain_top_k(graph, LinearFunction([0.5, 0.3, 0.2]), 5)
        assert profile.pseudo_accessed > 0
        assert profile.per_layer[0].pseudo > 0

    def test_format_is_readable(self):
        dataset = uniform(150, 3, seed=5)
        graph = build_dominant_graph(dataset)
        text = explain_top_k(graph, LinearFunction([1 / 3] * 3), 10).format()
        assert "records scored" in text
        assert "layer" in text and "share" in text

    def test_fraction_bounded(self):
        dataset = uniform(120, 3, seed=6)
        graph = build_dominant_graph(dataset)
        profile = explain_top_k(graph, LinearFunction([0.4, 0.3, 0.3]), 20)
        for entry in profile.per_layer:
            assert 0.0 <= entry.fraction <= 1.0

    def test_cli_explain_flag(self, tmp_path, capsys):
        from repro.cli import main, save_dataset

        data = save_dataset(uniform(100, 2, seed=7), str(tmp_path / "d"))
        index = str(tmp_path / "i.npz")
        main(["build", "--data", data, "--out", index])
        capsys.readouterr()
        code = main(["query", "--index", index, "--weights", "0.5,0.5",
                     "--k", "5", "--explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "records scored" in out
