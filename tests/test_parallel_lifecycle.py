"""Shared-memory lifecycle: the fabric must never leak ``/dev/shm``.

Every segment the fabric creates carries the ``repro-dg-`` name prefix,
so leak checks reduce to globbing ``/dev/shm`` before and after an
operation (:func:`repro.parallel.leaked_segments`).  The invariants:

- executor shutdown (explicit, ``with``, or the garbage-collection
  backstop) unlinks the current segment;
- a publish unlinks the *previous* segment immediately — POSIX keeps it
  alive for workers still mapping it;
- a worker SIGKILLed mid-query neither leaks a segment nor wedges the
  pool: the executor respawns the slot on a fresh queue, re-dispatches
  the dead worker's tasks, and still returns correct answers.
"""

import gc
import os
import signal
import time

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph
from repro.core.functions import LinearFunction
from repro.data.generators import uniform
from repro.errors import ParallelExecutionError
from repro.parallel import (
    ParallelQueryExecutor,
    attach_snapshot,
    export_snapshot,
    leaked_segments,
)

DIMS = 3


@pytest.fixture
def compiled():
    return build_dominant_graph(uniform(200, DIMS, seed=1)).compile()


@pytest.fixture
def baseline_segments():
    """Segments that exist before the test (owned by someone else)."""
    return set(leaked_segments())


def new_segments(baseline) -> set:
    return set(leaked_segments()) - baseline


def test_export_attach_round_trip(compiled, baseline_segments):
    shared = export_snapshot(compiled, epoch=7)
    assert shared.segment in new_segments(baseline_segments)
    attached = attach_snapshot(shared.handle)
    try:
        assert attached.epoch == 7
        for field in ("values", "record_ids", "layer_index", "pseudo_mask"):
            np.testing.assert_array_equal(
                getattr(attached.compiled, field), getattr(compiled, field)
            )
        with pytest.raises(ValueError):
            attached.compiled.values[0, 0] = 1.0  # shared views are read-only
    finally:
        attached.close()
        shared.destroy()
    assert not new_segments(baseline_segments)
    with pytest.raises(ValueError):
        attached.compiled  # noqa: B018 -- closed attachments must not expose arrays


def test_destroy_is_idempotent_and_context_managed(compiled, baseline_segments):
    with export_snapshot(compiled) as shared:
        assert not shared.destroyed
    assert shared.destroyed
    shared.destroy()  # second destroy is a no-op
    assert not new_segments(baseline_segments)


def test_shutdown_unlinks_segment(compiled, baseline_segments):
    pool = ParallelQueryExecutor(compiled, workers=2)
    assert len(new_segments(baseline_segments)) == 1
    pool.shutdown()
    assert not new_segments(baseline_segments)
    pool.shutdown()  # idempotent
    with pytest.raises(ParallelExecutionError):
        pool.query(LinearFunction(np.full(DIMS, 1.0 / DIMS)), 5)


def test_gc_backstop_unlinks_segment(compiled, baseline_segments):
    pool = ParallelQueryExecutor(compiled, workers=1)
    assert len(new_segments(baseline_segments)) == 1
    del pool
    gc.collect()
    assert not new_segments(baseline_segments)


def test_publish_unlinks_previous_segment(compiled, baseline_segments):
    function = LinearFunction(np.full(DIMS, 1.0 / DIMS))
    with ParallelQueryExecutor(compiled, workers=2) as pool:
        first = set(new_segments(baseline_segments))
        assert pool.query(function, 5).epoch == 0
        pool.publish(compiled, epoch=1)
        current = new_segments(baseline_segments)
        assert len(current) == 1 and current != first
        assert pool.query(function, 5).epoch == 1
        assert pool.stats()["publishes"] == 1
    assert not new_segments(baseline_segments)


def _slow_filter(vector) -> bool:
    """Keeps workers busy long enough to be killed mid-query."""
    time.sleep(0.002)
    return True


def test_sigkill_mid_query_heals_and_leaks_nothing(compiled, baseline_segments):
    rng = np.random.default_rng(5)
    functions = [
        LinearFunction(rng.dirichlet(np.ones(DIMS))) for _ in range(6)
    ]
    with ParallelQueryExecutor(compiled, workers=2) as pool:
        expected = pool.map_queries(functions, 10, mode="full")

        import threading

        answers = {}
        runner = threading.Thread(
            target=lambda: answers.update(
                results=pool.map_queries(
                    functions, 10, where=_slow_filter, mode="full"
                )
            )
        )
        runner.start()
        time.sleep(0.05)  # let workers pick tasks up, then kill one mid-query
        victim = pool._slots[0].process.pid
        os.kill(victim, signal.SIGKILL)
        runner.join(timeout=30)
        assert not runner.is_alive(), "pool wedged after worker death"

        assert pool.stats()["workers_respawned"] >= 1
        got = answers["results"]
        assert [r.ids for r in got] == [r.ids for r in expected]
        assert [r.scores for r in got] == [r.scores for r in expected]

        # The healed pool keeps serving on the same shared segment.
        after = pool.map_queries(functions, 10, mode="batch")
        assert [r.ids for r in after] == [r.ids for r in expected]
    assert not new_segments(baseline_segments)


def test_worker_error_reply_raises_without_killing_pool(compiled, baseline_segments):
    function = LinearFunction(np.full(DIMS, 1.0 / DIMS))
    with ParallelQueryExecutor(compiled, workers=1) as pool:
        with pytest.raises(ParallelExecutionError, match="failed task"):
            pool.map_queries([function], 5, where=_raising_filter, mode="full")
        # The worker survived the bad query and answers the next one.
        assert pool.query(function, 5).ids
        assert pool.stats()["workers_respawned"] == 0
    assert not new_segments(baseline_segments)


def _raising_filter(vector) -> bool:
    raise RuntimeError("poison predicate")
