"""API-quality meta tests: docstrings and export hygiene.

Deliverable-level guarantees: every public module, class, function and
method in the package carries a docstring, and every name exported via
``__all__`` resolves.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
]


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.ismodule(member):
            continue
        defined_here = getattr(member, "__module__", None) == module.__name__
        if not defined_here:
            continue
        yield name, member


@pytest.mark.parametrize("module_name", sorted(MODULES))
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", sorted(MODULES))
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, member in public_members(module):
        if inspect.isclass(member) or inspect.isfunction(member):
            if not (member.__doc__ and member.__doc__.strip()):
                missing.append(name)
            if inspect.isclass(member):
                for attr_name, attr in vars(member).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr) and not (
                        attr.__doc__ and attr.__doc__.strip()
                    ):
                        missing.append(f"{name}.{attr_name}")
    assert not missing, f"{module_name}: missing docstrings on {missing}"


@pytest.mark.parametrize("module_name", sorted(MODULES))
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


def test_package_all_sorted():
    assert list(repro.__all__) == sorted(repro.__all__)


def test_doctests_run():
    """Run every doctest in the package (they document the public API)."""
    import doctest

    failures = 0
    attempted = 0
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        result = doctest.testmod(module, verbose=False)
        failures += result.failed
        attempted += result.attempted
    assert attempted > 30, "expected a substantial doctest corpus"
    assert failures == 0
