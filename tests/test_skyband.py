"""Unit tests for k-skyband / dominance-count queries."""

import numpy as np
import pytest

from repro.core.dominance import dominates, maximal_mask
from repro.core.functions import LinearFunction, MinFunction, ProductFunction
from repro.core.cost import top_k_bruteforce
from repro.data.generators import uniform
from repro.skyline.skyband import dominance_counts, k_skyband, skyband_sizes


class TestDominanceCounts:
    def test_matches_bruteforce(self, rng):
        values = rng.uniform(size=(60, 3))
        counts = dominance_counts(values)
        for i in range(60):
            brute = sum(
                1 for j in range(60) if j != i and dominates(values[j], values[i])
            )
            assert counts[i] == brute

    def test_chain(self):
        values = np.array([[3.0] * 2, [2.0] * 2, [1.0] * 2])
        assert dominance_counts(values).tolist() == [0, 1, 2]

    def test_duplicates_do_not_count(self):
        values = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert dominance_counts(values).tolist() == [0, 0]


class TestKSkyband:
    def test_one_skyband_is_skyline(self, rng):
        values = rng.uniform(size=(80, 3))
        band = set(k_skyband(values, 1).tolist())
        skyline = set(np.flatnonzero(maximal_mask(values)).tolist())
        assert band == skyline

    def test_monotone_in_k(self, rng):
        values = rng.uniform(size=(80, 3))
        previous: set = set()
        for k in (1, 2, 4, 8):
            band = set(k_skyband(values, k).tolist())
            assert previous <= band
            previous = band

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValueError):
            k_skyband(rng.uniform(size=(5, 2)), 0)

    @pytest.mark.parametrize("k", [1, 5, 10])
    def test_contains_every_monotone_topk(self, k):
        # The defining property: for any monotone F, top-k ⊆ k-skyband.
        dataset = uniform(150, 3, seed=31)
        band = set(k_skyband(dataset.values, k).tolist())
        for f in (
            LinearFunction([0.7, 0.2, 0.1]),
            LinearFunction([0.1, 0.1, 0.8]),
            MinFunction(),
            ProductFunction([1.0, 1.0, 1.0]),
        ):
            top = top_k_bruteforce(dataset, f, k)
            # With ties, a tied record outside the band may be picked by
            # id tie-break; compare via scores instead.
            band_scores = sorted(
                f.score_many(dataset.values[sorted(band)]), reverse=True
            )[:k]
            top_scores = sorted(f.score_many(dataset.values[top]), reverse=True)
            np.testing.assert_allclose(top_scores, band_scores)

    def test_skyband_sizes(self, rng):
        values = rng.uniform(size=(50, 2))
        sizes = skyband_sizes(values, [1, 2, 50])
        assert sizes[0] <= sizes[1] <= sizes[2] == 50
