"""Unit tests for the ONION baseline (convex-hull layers)."""

import numpy as np
import pytest

from repro.baselines.onion import OnionIndex, convex_hull_layers
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction, MinFunction
from repro.data.generators import correlated, gaussian, uniform
from tests.conftest import assert_correct_topk


class TestHullLayers:
    def test_square_with_center(self):
        values = np.array(
            [[0.0, 0.0], [4.0, 0.0], [0.0, 4.0], [4.0, 4.0], [2.0, 2.0]]
        )
        layers = convex_hull_layers(values)
        assert [sorted(l.tolist()) for l in layers] == [[0, 1, 2, 3], [4]]

    def test_partitions_records(self, rng):
        values = rng.uniform(size=(80, 3))
        layers = convex_hull_layers(values)
        ids = sorted(int(i) for layer in layers for i in layer)
        assert ids == list(range(80))

    def test_collinear_points_degenerate(self):
        values = np.column_stack([np.linspace(0, 1, 10), np.linspace(0, 1, 10)])
        layers = convex_hull_layers(values)  # rank-deficient: QJ fallback
        ids = sorted(int(i) for layer in layers for i in layer)
        assert ids == list(range(10))

    def test_tiny_input_single_layer(self):
        values = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert len(convex_hull_layers(values)) == 1


class TestOnionIndex:
    @pytest.mark.parametrize("maker", [uniform, gaussian, correlated])
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_matches_bruteforce(self, maker, k):
        dataset = maker(200, 3, seed=33)
        onion = OnionIndex(dataset)
        f = LinearFunction([0.5, 0.3, 0.2])
        assert_correct_topk(onion.top_k(f, k), dataset, f, k)

    def test_rejects_nonlinear(self, small_dataset):
        with pytest.raises(TypeError, match="linear"):
            OnionIndex(small_dataset).top_k(MinFunction(), 3)

    def test_rejects_nonpositive_k(self, small_dataset):
        with pytest.raises(ValueError):
            OnionIndex(small_dataset).top_k(LinearFunction([0.5, 0.5]), 0)

    def test_reads_whole_layers(self):
        # The paper's complaint: ONION scores every record of each
        # visited layer, so cost(k=1) == |hull layer 1|.
        dataset = uniform(300, 3, seed=34)
        onion = OnionIndex(dataset)
        result = onion.top_k(LinearFunction([1 / 3] * 3), 1)
        assert result.stats.computed == onion.layer_sizes()[0]

    def test_cost_grows_with_k(self):
        dataset = uniform(300, 3, seed=35)
        onion = OnionIndex(dataset)
        f = LinearFunction([0.4, 0.4, 0.2])
        costs = [onion.top_k(f, k).stats.computed for k in (1, 3, 6)]
        assert costs == sorted(costs)

    def test_layer_sizes_sum_to_n(self):
        dataset = uniform(150, 2, seed=36)
        assert sum(OnionIndex(dataset).layer_sizes()) == 150


class TestOnionMaintenance:
    def test_delete_and_rebuild(self):
        dataset = uniform(100, 2, seed=37)
        onion = OnionIndex(dataset)
        victim = int(next(iter(onion.top_k(LinearFunction([0.5, 0.5]), 1).ids)))
        onion.delete_and_rebuild(victim)
        assert sum(onion.layer_sizes()) == 99
        # Queries still correct over the survivors.
        f = LinearFunction([0.5, 0.5])
        survivors = [i for i in range(100) if i != victim]
        expected = sorted(f.score_many(dataset.values[survivors]), reverse=True)[:5]
        got = sorted(onion.top_k(f, 5).scores, reverse=True)
        np.testing.assert_allclose(got, expected)

    def test_delete_missing_raises(self, small_dataset):
        with pytest.raises(KeyError):
            OnionIndex(small_dataset).delete_and_rebuild(99)

    def test_insert_and_rebuild(self):
        dataset = uniform(100, 2, seed=38)
        onion = OnionIndex(
            Dataset(dataset.values)  # full table known; index first 90
        )
        # Build over a prefix by deleting the tail, then re-insert it.
        for rid in range(90, 100):
            onion.delete_and_rebuild(rid)
        for rid in range(90, 100):
            onion.insert_and_rebuild(rid)
        assert sum(onion.layer_sizes()) == 100
        reference = OnionIndex(dataset)
        f = LinearFunction([0.7, 0.3])
        np.testing.assert_allclose(
            sorted(onion.top_k(f, 10).scores),
            sorted(reference.top_k(f, 10).scores),
        )

    def test_insert_duplicate_raises(self, small_dataset):
        with pytest.raises(ValueError):
            OnionIndex(small_dataset).insert_and_rebuild(0)
