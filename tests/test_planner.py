"""Unit tests for the cost-based planner."""

import numpy as np
import pytest

from repro.core.functions import LinearFunction
from repro.data.generators import uniform
from repro.planner import (
    Planner,
    estimate_dg_accesses,
    estimate_ta_accesses,
)


class TestEstimates:
    def test_dg_estimate_is_theorem_32(self):
        from repro.skyline.cardinality import expected_skyline_uniform

        assert estimate_dg_accesses(1000, 3, 10) == pytest.approx(
            9 + expected_skyline_uniform(1000, 3)
        )

    def test_ta_estimate_bounded_by_n(self):
        assert estimate_ta_accesses(100, 3, 100) <= 300
        assert estimate_ta_accesses(100, 1, 100) == 100

    def test_ta_estimate_grows_with_k(self):
        values = [estimate_ta_accesses(10_000, 3, k) for k in (1, 10, 100)]
        assert values == sorted(values)

    def test_ta_estimate_tracks_reality_order(self):
        # The heuristic should be within an order of magnitude of a real
        # TA run on uniform data.
        from repro.baselines.ta import ThresholdAlgorithm

        dataset = uniform(1000, 3, seed=1)
        measured = ThresholdAlgorithm(dataset).top_k(
            LinearFunction([0.5, 0.3, 0.2]), 10
        ).stats.computed
        estimate = estimate_ta_accesses(1000, 3, 10)
        assert 0.1 < estimate / measured < 10.0


class TestPlanner:
    def test_small_k_prefers_dg(self):
        planner = Planner(uniform(500, 3, seed=2))
        assert planner.choose(10).algorithm == "dg"

    def test_k_equals_n_prefers_naive(self):
        planner = Planner(uniform(500, 3, seed=3))
        assert planner.choose(500).algorithm == "naive"

    def test_estimates_sorted(self):
        planner = Planner(uniform(300, 3, seed=4))
        estimates = planner.estimates(10)
        costs = [p.estimated_accesses for p in estimates]
        assert costs == sorted(costs)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            Planner(uniform(50, 2, seed=5)).estimates(0)

    def test_explain_mentions_all_plans(self):
        text = Planner(uniform(100, 3, seed=6)).explain(5)
        for name in ("dg", "ta", "naive"):
            assert name in text
        assert "->" in text

    @pytest.mark.parametrize("k", [1, 10, 200])
    def test_top_k_correct_whatever_the_plan(self, k):
        dataset = uniform(200, 3, seed=7)
        planner = Planner(dataset, theta=16)
        f = LinearFunction([0.5, 0.3, 0.2])
        result = planner.top_k(f, k)
        expected = sorted(f.score_many(dataset.values), reverse=True)[
            : min(k, len(dataset))
        ]
        np.testing.assert_allclose(sorted(result.scores, reverse=True), expected)

    def test_index_cached_between_queries(self):
        dataset = uniform(150, 3, seed=8)
        planner = Planner(dataset, theta=16)
        f = LinearFunction([0.4, 0.3, 0.3])
        planner.top_k(f, 5)
        first = planner._dg
        planner.top_k(f, 5)
        assert planner._dg is first

    def test_planner_beats_naive_on_small_k(self):
        dataset = uniform(800, 3, seed=9)
        planner = Planner(dataset, theta=16)
        f = LinearFunction([0.5, 0.3, 0.2])
        result = planner.top_k(f, 10)
        assert result.stats.computed < len(dataset) / 2
