"""Unit tests for the R-tree substrate."""

import numpy as np
import pytest

from repro.spatial.mbr import MBR
from repro.spatial.rtree import RTree


def brute_box_search(points, box):
    return sorted(
        i for i, p in enumerate(points) if box.contains_point(p)
    )


class TestInsertion:
    def test_insert_and_size(self, rng):
        tree = RTree(dims=2)
        points = rng.uniform(size=(40, 2))
        for i, p in enumerate(points):
            tree.insert(i, p)
        assert len(tree) == 40
        tree.validate()

    def test_insert_triggers_splits(self, rng):
        tree = RTree(dims=2, max_entries=4)
        points = rng.uniform(size=(100, 2))
        for i, p in enumerate(points):
            tree.insert(i, p)
        assert tree.height() >= 2
        tree.validate()

    def test_insert_rejects_bad_shape(self):
        tree = RTree(dims=2)
        with pytest.raises(ValueError):
            tree.insert(0, np.array([1.0, 2.0, 3.0]))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RTree(dims=0)
        with pytest.raises(ValueError):
            RTree(dims=2, max_entries=3)
        with pytest.raises(ValueError):
            RTree(dims=2, max_entries=8, min_entries=5)

    def test_duplicate_points_allowed(self):
        tree = RTree(dims=2, max_entries=4)
        for i in range(20):
            tree.insert(i, np.array([1.0, 1.0]))
        assert len(tree) == 20
        tree.validate()


class TestBulkLoad:
    def test_str_pack_all_points_present(self, rng):
        points = rng.uniform(size=(200, 3))
        tree = RTree.bulk_load(points)
        tree.validate()
        everything = MBR(points.min(axis=0), points.max(axis=0))
        assert sorted(tree.search_box(everything)) == list(range(200))

    def test_custom_record_ids(self, rng):
        points = rng.uniform(size=(10, 2))
        ids = [100 + i for i in range(10)]
        tree = RTree.bulk_load(points, record_ids=ids)
        box = MBR(points.min(axis=0), points.max(axis=0))
        assert sorted(tree.search_box(box)) == ids

    def test_small_input_single_leaf(self, rng):
        tree = RTree.bulk_load(rng.uniform(size=(5, 2)))
        assert tree.height() == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RTree.bulk_load(np.empty((0, 2)))

    def test_id_count_mismatch(self, rng):
        with pytest.raises(ValueError):
            RTree.bulk_load(rng.uniform(size=(5, 2)), record_ids=[1, 2])


class TestSearch:
    @pytest.mark.parametrize("builder", ["insert", "bulk"])
    def test_box_search_matches_bruteforce(self, rng, builder):
        points = rng.uniform(size=(150, 2))
        if builder == "bulk":
            tree = RTree.bulk_load(points)
        else:
            tree = RTree(dims=2, max_entries=6)
            for i, p in enumerate(points):
                tree.insert(i, p)
        for _ in range(10):
            low = rng.uniform(0, 0.5, size=2)
            high = low + rng.uniform(0.1, 0.5, size=2)
            box = MBR(low, high)
            assert sorted(tree.search_box(box)) == brute_box_search(points, box)

    def test_nearest_matches_bruteforce(self, rng):
        points = rng.uniform(size=(120, 3))
        tree = RTree.bulk_load(points)
        for _ in range(15):
            q = rng.uniform(size=3)
            expected = int(np.argmin(np.sum((points - q) ** 2, axis=1)))
            got = tree.nearest(q)
            assert np.sum((points[got] - q) ** 2) == pytest.approx(
                np.sum((points[expected] - q) ** 2)
            )

    def test_nearest_iter_ascending_distance(self, rng):
        points = rng.uniform(size=(50, 2))
        tree = RTree.bulk_load(points)
        q = rng.uniform(size=2)
        distances = [d for _, d in tree.nearest_iter(q)]
        assert len(distances) == 50
        assert distances == sorted(distances)

    def test_nearest_on_empty_tree(self):
        tree = RTree(dims=2)
        assert tree.nearest(np.array([0.0, 0.0])) is None

    def test_search_box_empty_result(self, rng):
        points = rng.uniform(size=(30, 2))
        tree = RTree.bulk_load(points)
        far = MBR(np.array([10.0, 10.0]), np.array([11.0, 11.0]))
        assert tree.search_box(far) == []
