"""Unit tests for the N-Way Traveler (Algorithm 3, Section IV-C)."""

import numpy as np
import pytest

from repro.core.functions import DecomposableFunction, LinearFunction, MinFunction
from repro.core.nway import NWayTraveler
from repro.data.generators import correlated, uniform
from tests.conftest import assert_correct_topk


class TestEvenSplit:
    def test_even(self):
        assert NWayTraveler.even_split(10, 2) == [tuple(range(5)), tuple(range(5, 10))]

    def test_uneven(self):
        assert NWayTraveler.even_split(7, 3) == [(0, 1, 2), (3, 4), (5, 6)]

    def test_one_way(self):
        assert NWayTraveler.even_split(4, 1) == [(0, 1, 2, 3)]

    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            NWayTraveler.even_split(4, 0)
        with pytest.raises(ValueError):
            NWayTraveler.even_split(4, 5)


class TestConstruction:
    def test_rejects_overlapping_sets(self):
        dataset = uniform(50, 4, seed=0)
        with pytest.raises(ValueError, match="disjoint"):
            NWayTraveler(dataset, [(0, 1), (1, 2)])

    def test_rejects_empty_sets(self):
        dataset = uniform(50, 4, seed=0)
        with pytest.raises(ValueError):
            NWayTraveler(dataset, [])

    def test_builds_one_graph_per_set(self):
        dataset = uniform(80, 6, seed=1)
        traveler = NWayTraveler(dataset, NWayTraveler.even_split(6, 3), theta=8)
        assert len(traveler.graphs) == 3
        for graph, dims in zip(traveler.graphs, traveler.dimension_sets):
            assert graph.dataset.dims == len(dims)

    def test_plain_graphs_option(self):
        dataset = uniform(80, 4, seed=2)
        traveler = NWayTraveler(dataset, [(0, 1), (2, 3)], extended=False)
        assert all(g.num_pseudo == 0 for g in traveler.graphs)


class TestQueries:
    @pytest.mark.parametrize("ways", [1, 2, 3])
    @pytest.mark.parametrize("k", [1, 5, 30])
    def test_matches_bruteforce(self, ways, k):
        dataset = uniform(200, 6, seed=3)
        traveler = NWayTraveler(
            dataset, NWayTraveler.even_split(6, ways), theta=8
        )
        f = LinearFunction([0.25, 0.2, 0.15, 0.15, 0.15, 0.1])
        assert_correct_topk(traveler.top_k(f, k), dataset, f, k)

    def test_correlated_data(self):
        dataset = correlated(150, 6, seed=4)
        traveler = NWayTraveler(dataset, NWayTraveler.even_split(6, 2), theta=8)
        f = LinearFunction([1.0 / 6] * 6)
        assert_correct_topk(traveler.top_k(f, 10), dataset, f, 10)

    def test_k_larger_than_dataset(self):
        dataset = uniform(25, 4, seed=5)
        traveler = NWayTraveler(dataset, [(0, 1), (2, 3)], theta=8)
        result = traveler.top_k(LinearFunction([0.25] * 4), 99)
        assert len(result) == 25

    def test_rejects_nonpositive_k(self):
        dataset = uniform(30, 4, seed=6)
        traveler = NWayTraveler(dataset, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            traveler.top_k(LinearFunction([0.25] * 4), 0)

    def test_explicit_decomposable_function(self):
        dataset = uniform(120, 4, seed=7)
        sets = [(0, 1), (2, 3)]
        traveler = NWayTraveler(dataset, sets, theta=8)
        f = LinearFunction([0.3, 0.2, 0.3, 0.2])
        decomposed = DecomposableFunction.from_linear(f, sets)
        a = traveler.top_k(f, 10)
        b = traveler.top_k(decomposed, 10)
        assert a.score_multiset() == pytest.approx(b.score_multiset())

    def test_rejects_mismatched_decomposition(self):
        dataset = uniform(40, 4, seed=8)
        traveler = NWayTraveler(dataset, [(0, 1), (2, 3)])
        wrong = DecomposableFunction.from_linear(
            LinearFunction([0.25] * 4), [(0, 2), (1, 3)]
        )
        with pytest.raises(ValueError, match="dimension sets"):
            traveler.top_k(wrong, 5)

    def test_rejects_partial_linear_coverage(self):
        dataset = uniform(40, 4, seed=9)
        traveler = NWayTraveler(dataset, [(0, 1), (2, 3)])
        with pytest.raises(TypeError):
            traveler.top_k(MinFunction(), 5)

    def test_monotone_combiner_min(self):
        # G = min of per-set partial sums is aggregate monotone.
        dataset = uniform(100, 4, seed=10)
        sets = [(0, 1), (2, 3)]
        traveler = NWayTraveler(dataset, sets, theta=8)
        f = DecomposableFunction(
            sets,
            [LinearFunction([0.5, 0.5]), LinearFunction([0.5, 0.5])],
            combiner=lambda parts: float(np.min(parts)),
        )
        assert_correct_topk(traveler.top_k(f, 10), dataset, f, 10)

    def test_accesses_fewer_than_ta_on_high_dims(self):
        from repro.baselines.ta import ThresholdAlgorithm

        dataset = uniform(400, 10, seed=11)
        f = LinearFunction(np.arange(10, 0, -1) / 55.0)
        nway = NWayTraveler(dataset, NWayTraveler.even_split(10, 2), theta=8)
        nway_result = nway.top_k(f, 10)
        ta_result = ThresholdAlgorithm(dataset).top_k(f, 10)
        assert nway_result.score_multiset() == pytest.approx(
            ta_result.score_multiset()
        )
        assert nway_result.stats.computed < ta_result.stats.computed

    def test_stats_count_unique_scores(self):
        dataset = uniform(100, 4, seed=12)
        traveler = NWayTraveler(dataset, [(0, 1), (2, 3)], theta=8)
        result = traveler.top_k(LinearFunction([0.25] * 4), 5)
        assert result.stats.computed == len(result.stats.computed_ids)
