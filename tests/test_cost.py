"""Unit tests for the Section III cost model (Theorems 3.1 and 3.2)."""

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph
from repro.core.cost import (
    estimated_cost,
    predicted_cost,
    search_space,
    top_k_bruteforce,
)
from repro.core.functions import LinearFunction
from repro.core.traveler import BasicTraveler
from repro.data.generators import correlated, gaussian, uniform


class TestBruteForce:
    def test_order_and_tiebreak(self):
        from repro.core.dataset import Dataset

        ds = Dataset([[1.0, 1.0], [2.0, 0.0], [1.0, 1.0]])
        # All three score 1.0: ties break by ascending record id.
        ids = top_k_bruteforce(ds, LinearFunction([0.5, 0.5]), 3)
        assert ids == [0, 1, 2]

    def test_k_capped_by_scores(self, small_dataset):
        ids = top_k_bruteforce(small_dataset, LinearFunction([1.0, 0.0]), 2)
        assert ids == [0, 4]  # x-values 4.0 then 3.0


class TestSearchSpace:
    def test_running_example(self, running_example, linear2):
        space = search_space(running_example, linear2, k=2)
        # S2 = top-1 = {2} (TID3, score 332); S3 = skyline of the rest.
        assert space.s2 == frozenset({2})
        assert space.cost == len(space.s2 | space.s3)

    def test_s2_and_s3_disjoint(self):
        dataset = uniform(150, 3, seed=1)
        space = search_space(dataset, LinearFunction([0.5, 0.3, 0.2]), 10)
        assert not (space.s2 & space.s3)

    def test_k1_has_empty_s2(self, small_dataset):
        space = search_space(small_dataset, LinearFunction([0.5, 0.5]), 1)
        assert space.s2 == frozenset()
        # S3 is then the full skyline of D.
        assert space.s3 == frozenset({0, 1, 4})

    def test_rejects_nonpositive_k(self, small_dataset):
        with pytest.raises(ValueError):
            search_space(small_dataset, LinearFunction([0.5, 0.5]), 0)


class TestTheorem31:
    """S2 ∪ S3 ⊆ S1 exactly; the converse holds up to the paper's
    parent-vs-dominator gap (see the erratum in repro.core.cost)."""

    @pytest.mark.parametrize("maker,seed", [
        (uniform, 3), (uniform, 4), (gaussian, 5), (correlated, 6),
    ])
    @pytest.mark.parametrize("k", [2, 10, 40])
    def test_predicted_subset_of_measured(self, maker, seed, k):
        dataset = maker(250, 3, seed=seed)
        f = LinearFunction([0.5, 0.3, 0.2])
        space = search_space(dataset, f, k)
        result = BasicTraveler(build_dominant_graph(dataset)).top_k(f, k)
        assert space.predicted <= result.stats.computed_ids

    @pytest.mark.parametrize("k", [2, 10, 40])
    def test_measured_close_to_predicted(self, k):
        dataset = uniform(400, 3, seed=7)
        f = LinearFunction([0.5, 0.3, 0.2])
        predicted = predicted_cost(dataset, f, k)
        measured = BasicTraveler(build_dominant_graph(dataset)).top_k(f, k)
        surplus = measured.stats.computed - predicted
        assert surplus >= 0
        # The parent-vs-dominator gap is small in practice.
        assert surplus <= max(3, 0.1 * predicted), (
            f"surplus {surplus} too large vs predicted {predicted}"
        )

    def test_exact_on_running_example(self, running_example, linear2):
        space = search_space(running_example, linear2, k=2)
        graph = build_dominant_graph(running_example)
        result = BasicTraveler(graph).top_k(linear2, 2)
        assert result.stats.computed_ids == space.predicted

    def test_surplus_records_have_nonparent_dominators(self):
        # Characterize the erratum: every surplus record's parents are in
        # the final top-(k-1) but some non-parent dominator is not.
        from repro.core.dominance import dominates

        dataset = uniform(400, 3, seed=8)
        f = LinearFunction([0.5, 0.3, 0.2])
        k = 20
        graph = build_dominant_graph(dataset)
        result = BasicTraveler(graph).top_k(f, k)
        space = search_space(dataset, f, k)
        surplus = result.stats.computed_ids - space.predicted
        top_k_minus_1 = set(top_k_bruteforce(dataset, f, k - 1))
        for rid in surplus:
            assert set(graph.parents_of(rid)) <= top_k_minus_1
            outside_dominator = any(
                dominates(dataset.vector(s), dataset.vector(rid))
                for s in range(len(dataset))
                if s != rid and s not in top_k_minus_1
            )
            assert outside_dominator


class TestTheorem32:
    def test_estimate_formula(self):
        from repro.skyline.cardinality import expected_skyline_uniform

        assert estimated_cost(1000, 3, 10) == pytest.approx(
            9 + expected_skyline_uniform(1000, 3)
        )

    def test_estimate_within_factor_of_measured(self):
        n, dims, k = 800, 3, 10
        dataset = uniform(n, dims, seed=9)
        f = LinearFunction([1 / 3] * 3)
        measured = BasicTraveler(build_dominant_graph(dataset)).top_k(f, k)
        estimate = estimated_cost(n, dims, k)
        ratio = measured.stats.computed / estimate
        assert 0.3 < ratio < 4.0, f"estimate off by {ratio}x"

    def test_cost_grows_slowly_with_k(self):
        # The paper's observation: Skyline(S2-bar) changes little between
        # top-10 and top-100, so cost grows roughly additively in k.
        dataset = uniform(600, 3, seed=10)
        f = LinearFunction([0.4, 0.4, 0.2])
        traveler = BasicTraveler(build_dominant_graph(dataset))
        cost10 = traveler.top_k(f, 10).stats.computed
        cost100 = traveler.top_k(f, 100).stats.computed
        assert cost100 < cost10 * 6

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            estimated_cost(100, 3, 0)
