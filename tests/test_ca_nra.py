"""Unit tests for CA and NRA (sorted-list baselines with bounds)."""

import numpy as np
import pytest

from repro.baselines.bounds import PartialScores
from repro.baselines.ca import CombinedAlgorithm
from repro.baselines.nra import NoRandomAccess
from repro.baselines.sorted_lists import SortedLists
from repro.baselines.ta import ThresholdAlgorithm
from repro.core.functions import LinearFunction
from repro.data.generators import correlated, gaussian, uniform
from tests.conftest import assert_correct_topk


class TestPartialScores:
    def test_bounds_bracket_true_score(self, rng):
        dims = 3
        floor = np.zeros(dims)
        partial = PartialScores(dims, floor)
        vector = rng.uniform(size=dims)
        partial.observe(0, 1, vector[1])
        f = LinearFunction([0.2, 0.3, 0.5])
        depth_values = np.ones(dims)  # every unseen value is <= 1
        assert partial.lower_bound(0, f) <= f(vector) <= partial.upper_bound(
            0, f, depth_values
        )

    def test_resolved_after_full_observation(self, rng):
        partial = PartialScores(2, np.zeros(2))
        partial.observe(0, 0, 0.5)
        assert not partial.is_resolved(0)
        partial.observe(0, 1, 0.7)
        assert partial.is_resolved(0)

    def test_observe_full(self):
        partial = PartialScores(2, np.zeros(2))
        partial.observe_full(3, np.array([0.1, 0.2]))
        assert partial.is_resolved(3)
        f = LinearFunction([1.0, 1.0])
        assert partial.lower_bound(3, f) == pytest.approx(0.3)
        assert partial.upper_bound(3, f, np.ones(2)) == pytest.approx(0.3)

    def test_seen_lists_all_observed(self):
        partial = PartialScores(2, np.zeros(2))
        partial.observe(1, 0, 0.5)
        partial.observe(7, 1, 0.5)
        assert sorted(partial.seen()) == [1, 7]


class TestCombinedAlgorithm:
    @pytest.mark.parametrize("maker", [uniform, gaussian, correlated])
    @pytest.mark.parametrize("k", [1, 10, 40])
    def test_matches_bruteforce(self, maker, k):
        dataset = maker(180, 3, seed=23)
        ca = CombinedAlgorithm(dataset)
        f = LinearFunction([0.5, 0.3, 0.2])
        assert_correct_topk(ca.top_k(f, k), dataset, f, k)

    def test_fewer_random_accesses_than_ta(self):
        dataset = uniform(300, 3, seed=24)
        f = LinearFunction([0.4, 0.3, 0.3])
        lists = SortedLists(dataset)
        ta = ThresholdAlgorithm(dataset, lists=lists).top_k(f, 10)
        ca = CombinedAlgorithm(dataset, cost_ratio=10, lists=lists).top_k(f, 10)
        assert ca.stats.random < ta.stats.random

    def test_cost_ratio_trades_accesses(self):
        dataset = uniform(300, 3, seed=25)
        f = LinearFunction([0.4, 0.3, 0.3])
        eager = CombinedAlgorithm(dataset, cost_ratio=1).top_k(f, 10)
        lazy = CombinedAlgorithm(dataset, cost_ratio=50).top_k(f, 10)
        assert eager.score_multiset() == pytest.approx(lazy.score_multiset())
        assert eager.stats.random >= lazy.stats.random

    def test_rejects_bad_cost_ratio(self, small_dataset):
        with pytest.raises(ValueError):
            CombinedAlgorithm(small_dataset, cost_ratio=0)

    def test_rejects_nonpositive_k(self, small_dataset):
        with pytest.raises(ValueError):
            CombinedAlgorithm(small_dataset).top_k(LinearFunction([0.5, 0.5]), 0)

    def test_k_larger_than_dataset(self, small_dataset):
        f = LinearFunction([0.5, 0.5])
        assert len(CombinedAlgorithm(small_dataset).top_k(f, 99)) == len(small_dataset)

    def test_counts_random_accesses(self):
        dataset = uniform(200, 3, seed=26)
        result = CombinedAlgorithm(dataset).top_k(LinearFunction([1 / 3] * 3), 10)
        assert result.stats.random >= 0
        assert result.stats.sequential > 0


class TestNoRandomAccess:
    @pytest.mark.parametrize("maker", [uniform, gaussian, correlated])
    @pytest.mark.parametrize("k", [1, 10, 40])
    def test_matches_bruteforce(self, maker, k):
        dataset = maker(180, 3, seed=27)
        nra = NoRandomAccess(dataset)
        f = LinearFunction([0.5, 0.3, 0.2])
        assert_correct_topk(nra.top_k(f, k), dataset, f, k)

    def test_never_random_accesses(self):
        dataset = uniform(200, 3, seed=28)
        result = NoRandomAccess(dataset).top_k(LinearFunction([1 / 3] * 3), 10)
        assert result.stats.random == 0
        assert result.stats.computed == 0  # never scores a full record online
        assert result.stats.sequential > 0

    def test_rejects_nonpositive_k(self, small_dataset):
        with pytest.raises(ValueError):
            NoRandomAccess(small_dataset).top_k(LinearFunction([0.5, 0.5]), 0)

    def test_k_larger_than_dataset(self, small_dataset):
        f = LinearFunction([0.5, 0.5])
        assert len(NoRandomAccess(small_dataset).top_k(f, 99)) == len(small_dataset)

    def test_duplicate_heavy_data(self):
        from repro.data.server import server_dataset

        dataset = server_dataset(150, seed=29)
        f = LinearFunction([0.4, 0.3, 0.3])
        assert_correct_topk(NoRandomAccess(dataset).top_k(f, 10), dataset, f, 10)
