"""Accounting-consistency tests: every algorithm's counters must be
internally coherent (the paper's metrics depend on them)."""

import numpy as np
import pytest

from repro.baselines import (
    CombinedAlgorithm,
    NoRandomAccess,
    OnionIndex,
    PreferIndex,
    RankCubeIndex,
    ThresholdAlgorithm,
)
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_extended_graph
from repro.core.functions import LinearFunction
from repro.data.generators import uniform

F = LinearFunction([0.5, 0.3, 0.2])
K = 10


@pytest.fixture(scope="module")
def dataset():
    return uniform(300, 3, seed=71)


class TestDGAccounting:
    def test_every_computed_record_tracked(self, dataset):
        graph = build_extended_graph(dataset, theta=16)
        result = AdvancedTraveler(graph).top_k(F, K)
        assert len(result.stats.computed_ids) == result.stats.computed

    def test_answers_are_computed(self, dataset):
        graph = build_extended_graph(dataset, theta=16)
        result = AdvancedTraveler(graph).top_k(F, K)
        assert set(result.ids) <= set(result.stats.computed_ids)

    def test_pseudo_subset_of_computed(self, dataset):
        graph = build_extended_graph(dataset, theta=16)
        result = AdvancedTraveler(graph).top_k(F, K)
        assert result.stats.pseudo_computed <= result.stats.computed

    def test_cost_at_least_k(self, dataset):
        graph = build_extended_graph(dataset, theta=16)
        result = AdvancedTraveler(graph).top_k(F, K)
        assert result.stats.computed >= K


class TestSortedListAccounting:
    def test_ta_sequential_at_least_dims_per_depth(self, dataset):
        result = ThresholdAlgorithm(dataset).top_k(F, K)
        # m sequential accesses per round, and at least one round.
        assert result.stats.sequential >= dataset.dims
        assert result.stats.sequential % dataset.dims == 0

    def test_ta_random_equals_unique_computed(self, dataset):
        result = ThresholdAlgorithm(dataset).top_k(F, K)
        assert result.stats.random == result.stats.computed
        assert result.stats.random <= len(dataset)

    def test_ca_random_bounded_by_rounds(self, dataset):
        ca = CombinedAlgorithm(dataset, cost_ratio=10)
        result = ca.top_k(F, K)
        rounds = result.stats.sequential // dataset.dims
        assert result.stats.random <= rounds // 10 + 1

    def test_nra_never_computes(self, dataset):
        result = NoRandomAccess(dataset).top_k(F, K)
        assert result.stats.computed == 0
        assert result.stats.random == 0


class TestLayerAccounting:
    def test_onion_cost_is_layer_prefix(self, dataset):
        onion = OnionIndex(dataset)
        result = onion.top_k(F, K)
        prefix_sums = np.cumsum(onion.layer_sizes())
        assert result.stats.computed in set(int(p) for p in prefix_sums)

    def test_prefer_sequential_equals_computed(self, dataset):
        result = PreferIndex(dataset).top_k(F, K)
        assert result.stats.sequential == result.stats.computed

    def test_rankcube_cost_bounded_by_n(self, dataset):
        result = RankCubeIndex(dataset).top_k(F, K)
        assert K <= result.stats.computed <= len(dataset)
