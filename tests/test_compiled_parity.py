"""Parity sweep: the compiled engine must equal the reference bit-for-bit.

The compiled engine (:mod:`repro.core.compiled`) replaces the reference
Travelers' execution model wholesale — every query runs the
layer-progressive batch kernel (a single query is a batch of one), with
a float32 fast lane whose boundary is re-checked in exact float64 — so
the *answer* contract is checked at the strongest level available:
identical ids and identical float scores on every (data distribution ×
scoring function × k) combination, on plain and Extended (pseudo-level)
graphs, including the ``where=`` filtered path.

Access tallies are deliberately *not* compared against the reference:
the batch kernel charges whole layer chunks (trading extra score
computations for vectorization), so its counters legitimately exceed
the best-first traversal's.  The counters are instead held to their own
invariants — monotone in the reference's, consistent with the scanned
id set, pseudo split correct — and
``tests/test_guard.py``/``tests/test_fast_lane.py`` cover their budget
and threading behaviour.
"""

import numpy as np
import pytest

from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.compiled import (
    CompiledAdvancedTraveler,
    CompiledBasicTraveler,
    CompiledDG,
)
from repro.core.dataset import Dataset
from repro.core.functions import (
    LinearFunction,
    MinFunction,
    WeightedPowerFunction,
)
from repro.core.maintenance import insert_record
from repro.core.traveler import BasicTraveler
from repro.data.generators import anticorrelated, correlated, uniform

N = 250
DIMS = 3
KINDS = {"uniform": uniform, "correlated": correlated,
         "anticorrelated": anticorrelated}


def make_functions(seed: int) -> list:
    """One linear and two nonlinear monotone functions per seed."""
    weights = np.random.default_rng(seed).dirichlet(np.ones(DIMS))
    return [
        LinearFunction(weights),
        MinFunction(),
        WeightedPowerFunction(weights, p=2.0),
    ]


def assert_parity(reference, compiled):
    """Answers must match bit-for-bit; counters must be self-consistent.

    The compiled kernel scans whole layer chunks, so it computes a
    *superset* of the best-first traversal's records: its tally must
    cover the reference's and agree with its own scanned-id set.
    """
    assert reference.ids == compiled.ids
    assert reference.scores == compiled.scores
    assert compiled.stats.computed >= reference.stats.computed
    assert compiled.stats.pseudo_computed >= reference.stats.pseudo_computed
    assert compiled.stats.computed == len(compiled.stats.computed_ids)
    assert reference.stats.computed_ids <= compiled.stats.computed_ids


@pytest.mark.parametrize("kind", sorted(KINDS))
@pytest.mark.parametrize("k", [1, 10, N])
def test_basic_traveler_parity(kind, k):
    dataset = KINDS[kind](N, DIMS, seed=11)
    graph = build_dominant_graph(dataset)
    snapshot = graph.compile()
    for function in make_functions(seed=k):
        assert_parity(
            BasicTraveler(graph).top_k(function, k),
            CompiledBasicTraveler(snapshot).top_k(function, k),
        )


@pytest.mark.parametrize("kind", sorted(KINDS))
@pytest.mark.parametrize("k", [1, 10, N])
def test_advanced_traveler_parity_with_pseudo_levels(kind, k):
    dataset = KINDS[kind](N, DIMS, seed=23)
    graph = build_extended_graph(dataset, theta=2)
    if kind != "correlated":  # correlated layers are already tiny
        assert graph.num_pseudo > 0, "theta=2 must force pseudo levels"
    snapshot = graph.compile()
    for function in make_functions(seed=k):
        assert_parity(
            AdvancedTraveler(graph).top_k(function, k),
            CompiledAdvancedTraveler(snapshot).top_k(function, k),
        )


@pytest.mark.parametrize("kind", sorted(KINDS))
@pytest.mark.parametrize("k", [1, 10, N])
def test_filtered_path_parity(kind, k):
    dataset = KINDS[kind](N, DIMS, seed=37)
    graph = build_extended_graph(dataset, theta=2)
    snapshot = graph.compile()
    where = lambda vector: vector[0] > 350.0  # noqa: E731
    for function in make_functions(seed=k):
        assert_parity(
            AdvancedTraveler(graph).top_k(function, k, where=where),
            CompiledAdvancedTraveler(snapshot).top_k(function, k, where=where),
        )


def test_advanced_on_plain_graph_parity():
    dataset = uniform(N, DIMS, seed=5)
    graph = build_dominant_graph(dataset)
    snapshot = graph.compile()
    function = LinearFunction([0.2, 0.5, 0.3])
    assert_parity(
        AdvancedTraveler(graph).top_k(function, 25),
        CompiledAdvancedTraveler(snapshot).top_k(function, 25),
    )


def test_k_larger_than_dataset_returns_everything():
    dataset = uniform(40, DIMS, seed=9)
    graph = build_dominant_graph(dataset)
    result = CompiledBasicTraveler(graph.compile()).top_k(MinFunction(), 500)
    assert len(result) == 40


def test_compiled_snapshot_structure():
    dataset = uniform(N, DIMS, seed=2)
    graph = build_extended_graph(dataset, theta=6)
    snapshot = graph.compile()
    assert isinstance(snapshot, CompiledDG)
    assert snapshot.num_records == len(graph)
    assert snapshot.num_pseudo == graph.num_pseudo
    assert snapshot.num_edges == graph.edge_count()
    assert snapshot.first_layer_size == len(graph.layer(0))
    # CSR indptr invariants and parent/child symmetry.
    assert snapshot.children_indptr[0] == 0
    assert snapshot.children_indptr[-1] == snapshot.num_edges
    assert snapshot.parents_indptr[-1] == snapshot.num_edges
    np.testing.assert_array_equal(
        snapshot.indegree, np.diff(snapshot.parents_indptr)
    )
    # Per-record layer index mirrors the graph.
    for dense, rid in enumerate(snapshot.record_ids.tolist()):
        assert snapshot.layer_index[dense] == graph.layer_of(rid)
        assert snapshot.pseudo_mask[dense] == graph.is_pseudo(rid)


def test_compiled_arrays_are_frozen():
    dataset = uniform(60, DIMS, seed=3)
    snapshot = build_dominant_graph(dataset).compile()
    with pytest.raises((ValueError, RuntimeError)):
        snapshot.values[0, 0] = 1.0
    with pytest.raises((ValueError, RuntimeError)):
        snapshot.children_indices[:1] = 0


def test_mutation_makes_snapshot_stale():
    dataset = uniform(80, DIMS, seed=4)
    graph = build_dominant_graph(dataset, record_ids=range(79))
    snapshot = graph.compile()
    assert not snapshot.stale
    insert_record(graph, 79)
    assert snapshot.stale
    with pytest.raises(RuntimeError, match="stale"):
        CompiledBasicTraveler(snapshot).top_k(MinFunction(), 5)
    fresh = graph.compile()
    assert not fresh.stale
    assert_parity(
        BasicTraveler(graph).top_k(MinFunction(), 5),
        CompiledBasicTraveler(fresh).top_k(MinFunction(), 5),
    )


def test_basic_rejects_pseudo_graphs():
    dataset = uniform(N, 5, seed=6)
    graph = build_extended_graph(dataset, theta=6)
    assert graph.num_pseudo > 0
    with pytest.raises(ValueError, match="plain DG"):
        CompiledBasicTraveler(graph.compile())


def test_k_must_be_positive():
    snapshot = build_dominant_graph(uniform(20, 2, seed=1)).compile()
    with pytest.raises(ValueError, match="positive"):
        CompiledBasicTraveler(snapshot).top_k(MinFunction(), 0)


def test_tie_heavy_grid_parity():
    """Duplicate coordinates stress (-score, id) tie-breaking."""
    rng = np.random.default_rng(17)
    values = rng.integers(0, 4, size=(120, 3)).astype(float)
    dataset = Dataset(values)
    graph = build_dominant_graph(dataset)
    snapshot = graph.compile()
    for k in (1, 7, 120):
        assert_parity(
            BasicTraveler(graph).top_k(LinearFunction([1.0, 1.0, 1.0]), k),
            CompiledBasicTraveler(snapshot).top_k(
                LinearFunction([1.0, 1.0, 1.0]), k
            ),
        )
