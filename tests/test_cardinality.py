"""Unit tests for skyline cardinality estimation (Theorem 3.2 support)."""

import math

import numpy as np
import pytest

from repro.core.dominance import maximal_mask
from repro.data.generators import uniform
from repro.skyline.cardinality import (
    expected_skyline_uniform,
    harmonic_approximation,
    montecarlo_skyline_uniform,
)


class TestHarmonicRecurrence:
    def test_one_dimension(self):
        assert expected_skyline_uniform(1000, 1) == 1.0

    def test_two_dimensions_is_harmonic_number(self):
        h100 = sum(1.0 / i for i in range(1, 101))
        assert expected_skyline_uniform(100, 2) == pytest.approx(h100)

    def test_n_one(self):
        for d in range(1, 5):
            assert expected_skyline_uniform(1, d) == pytest.approx(1.0)

    def test_monotone_in_dims(self):
        values = [expected_skyline_uniform(1000, d) for d in range(1, 6)]
        assert values == sorted(values)

    def test_monotone_in_n(self):
        values = [expected_skyline_uniform(n, 3) for n in (10, 100, 1000)]
        assert values == sorted(values)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            expected_skyline_uniform(0, 2)
        with pytest.raises(ValueError):
            expected_skyline_uniform(10, 0)

    def test_matches_small_exact_enumeration(self):
        # T(2, 2) = 1 + 1/2 = 1.5: two points, P(both maximal)=1/2.
        assert expected_skyline_uniform(2, 2) == pytest.approx(1.5)

    def test_close_to_approximation_for_large_n(self):
        exact = expected_skyline_uniform(100_000, 3)
        approx = harmonic_approximation(100_000, 3)
        assert approx / exact == pytest.approx(1.0, abs=0.35)


class TestApproximation:
    def test_formula(self):
        assert harmonic_approximation(math.e.__ceil__() ** 1, 1) == 1.0
        assert harmonic_approximation(100, 2) == pytest.approx(math.log(100))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            harmonic_approximation(0, 1)


class TestMonteCarloIntegral:
    def test_agrees_with_recurrence(self):
        exact = expected_skyline_uniform(500, 3)
        mc = montecarlo_skyline_uniform(500, 3, samples=40_000, seed=1)
        assert mc == pytest.approx(exact, rel=0.15)

    def test_matches_empirical_skyline_sizes(self):
        n, dims = 400, 3
        sizes = [
            int(maximal_mask(uniform(n, dims, seed=s).values).sum())
            for s in range(8)
        ]
        empirical = float(np.mean(sizes))
        predicted = expected_skyline_uniform(n, dims)
        assert predicted == pytest.approx(empirical, rel=0.35)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            montecarlo_skyline_uniform(0, 3)
