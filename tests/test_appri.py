"""Unit tests for the AppRI baseline (robust min-rank layers)."""

import numpy as np
import pytest

from repro.baselines.appri import (
    AppRIIndex,
    minimum_rank_estimate,
    sample_query_vectors,
)
from repro.core.functions import LinearFunction, MinFunction
from repro.data.generators import correlated, gaussian, uniform
from tests.conftest import assert_correct_topk


class TestQuerySample:
    def test_includes_corners(self):
        queries = sample_query_vectors(3, extra=0)
        corners = {tuple(np.eye(3)[i]) for i in range(3)}
        rows = {tuple(q) for q in queries}
        assert corners <= rows

    def test_unit_sum(self):
        queries = sample_query_vectors(4, extra=10)
        np.testing.assert_allclose(queries.sum(axis=1), 1.0)

    def test_deterministic(self):
        a = sample_query_vectors(3, extra=5, seed=2)
        b = sample_query_vectors(3, extra=5, seed=2)
        np.testing.assert_array_equal(a, b)


class TestMinimumRank:
    def test_dominating_record_rank_one(self):
        values = np.array([[10.0, 10.0], [1.0, 1.0], [2.0, 2.0]])
        ranks = minimum_rank_estimate(values, sample_query_vectors(2))
        assert ranks[0] == 1

    def test_floored_by_dominator_count(self):
        # Record 2 has two dominators -> min rank >= 3 regardless of query.
        values = np.array([[3.0, 3.0], [2.0, 2.0], [1.0, 1.0]])
        ranks = minimum_rank_estimate(values, sample_query_vectors(2))
        assert ranks[2] >= 3

    def test_rank_upper_bounded_by_n(self):
        values = uniform(50, 3, seed=1).values
        ranks = minimum_rank_estimate(values, sample_query_vectors(3))
        assert np.all(ranks >= 1) and np.all(ranks <= 50)

    def test_skyline_records_can_be_rank_one_in_2d(self):
        # In 2-d with the corner queries, every hull-extreme record gets
        # rank 1 for some corner query.
        values = np.array([[5.0, 0.0], [0.0, 5.0], [1.0, 1.0]])
        ranks = minimum_rank_estimate(values, sample_query_vectors(2))
        assert ranks[0] == 1 and ranks[1] == 1


class TestAppRIIndex:
    @pytest.mark.parametrize("maker", [uniform, gaussian, correlated])
    @pytest.mark.parametrize("k", [1, 10, 30])
    def test_matches_bruteforce(self, maker, k):
        dataset = maker(200, 3, seed=43)
        appri = AppRIIndex(dataset)
        f = LinearFunction([0.5, 0.3, 0.2])
        assert_correct_topk(appri.top_k(f, k), dataset, f, k)

    def test_supports_monotone_nonlinear_via_upper_bounds(self):
        # Layer *assignment* assumes linear queries, but the scan's
        # stopping rule is monotone-safe, so answers stay exact.
        dataset = uniform(150, 3, seed=44)
        f = MinFunction()
        assert_correct_topk(AppRIIndex(dataset).top_k(f, 5), dataset, f, 5)

    def test_layers_partition_records(self):
        dataset = uniform(120, 3, seed=45)
        appri = AppRIIndex(dataset)
        assert sum(appri.layer_sizes()) == 120

    def test_reads_whole_layers(self):
        dataset = uniform(200, 3, seed=46)
        appri = AppRIIndex(dataset)
        result = appri.top_k(LinearFunction([1 / 3] * 3), 1)
        sizes = appri.layer_sizes()
        # Cost is a prefix sum of layer sizes.
        prefix = np.cumsum(sizes)
        assert result.stats.computed in set(int(p) for p in prefix)

    def test_rejects_nonpositive_k(self, small_dataset):
        with pytest.raises(ValueError):
            AppRIIndex(small_dataset).top_k(LinearFunction([0.5, 0.5]), 0)

    def test_k_larger_than_dataset(self, small_dataset):
        f = LinearFunction([0.5, 0.5])
        assert len(AppRIIndex(small_dataset).top_k(f, 99)) == len(small_dataset)

    def test_dg_accesses_fewer_records(self):
        # The paper's headline: DG's search space < AppRI's (which reads
        # whole layers).
        from repro.core.advanced import AdvancedTraveler
        from repro.core.builder import build_extended_graph

        dataset = uniform(500, 3, seed=47)
        f = LinearFunction([0.5, 0.3, 0.2])
        appri = AppRIIndex(dataset).top_k(f, 10)
        dg = AdvancedTraveler(build_extended_graph(dataset, theta=16)).top_k(f, 10)
        assert dg.stats.computed < appri.stats.computed
