"""End-to-end deadlines, circuit breakers, and retry/timeout policies.

Covers the resilience primitives in isolation (deterministic clocks, no
real waiting), their integration into the guard's tier ladder and the
admission controller, the fabric's hung-worker repair, and the
cache-vs-republish race that must never surface a stale-epoch answer.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.builder import build_extended_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.guard import run_query
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    DegradedResultWarning,
    QueryBudgetExceeded,
    ServiceOverloaded,
)
from repro.parallel.executor import ParallelQueryExecutor
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    TimeoutPolicy,
)
from repro.serve.admission import AdmissionController
from repro.serve.index import ServingIndex, snapshot_scan

F = LinearFunction([0.5, 0.5])


class FakeClock:
    """A manually advanced monotonic clock for breaker/deadline tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_after_ms_validates(self):
        with pytest.raises(ValueError):
            Deadline.after_ms(0)
        with pytest.raises(ValueError):
            Deadline.after_ms(-5)

    def test_remaining_counts_down(self):
        deadline = Deadline.after_ms(10_000)
        assert 0 < deadline.remaining() <= 10.0
        assert 0 < deadline.remaining_ms() <= 10_000
        assert not deadline.expired
        assert deadline.spent_ms() >= 0.0

    def test_check_raises_typed_budget_error(self):
        deadline = Deadline(expires_at=time.monotonic() - 1.0, total_ms=50.0)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check(stage="kernel", tier="compiled")
        exc = excinfo.value
        assert isinstance(exc, QueryBudgetExceeded)
        assert exc.kind == "time"
        assert exc.stage == "kernel"
        assert exc.tier == "compiled"
        assert exc.spent >= exc.limit

    def test_clamp_bounds_waits(self):
        deadline = Deadline.after_ms(10_000)
        assert deadline.clamp(0.001) == pytest.approx(0.001)
        assert deadline.clamp(60.0) <= 10.0
        assert deadline.clamp(None) <= 10.0
        expired = Deadline(expires_at=time.monotonic() - 1.0, total_ms=1.0)
        assert expired.clamp(5.0) == 0.0

    def test_picklable_for_the_fork_boundary(self):
        import pickle

        deadline = Deadline.after_ms(500)
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone.expires_at == deadline.expires_at
        assert clone.total_ms == deadline.total_ms


class TestCircuitBreaker:
    def _tripped(self, clock) -> CircuitBreaker:
        breaker = CircuitBreaker(
            "t", window=4, failure_threshold=0.5, min_calls=2,
            cooldown=1.0, clock=clock,
        )
        breaker.record_failure()
        breaker.record_failure()
        return breaker

    def test_opens_at_failure_threshold(self):
        clock = FakeClock()
        breaker = self._tripped(clock)
        assert breaker.state == OPEN
        assert not breaker.allow()
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.check()
        assert excinfo.value.retry_after <= 1.0

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = self._tripped(clock)
        clock.advance(1.5)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # second concurrent probe refused
        breaker.record_success(latency_ms=5.0)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self._tripped(clock)
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_below_min_calls_never_opens(self):
        breaker = CircuitBreaker("t", window=8, min_calls=4)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_latency_ewma(self):
        breaker = CircuitBreaker("t")
        assert breaker.latency_ewma_ms is None
        breaker.record_success(latency_ms=100.0)
        breaker.record_success(latency_ms=0.0)
        assert breaker.latency_ewma_ms == pytest.approx(75.0)

    def test_snapshot_shape(self):
        breaker = CircuitBreaker("t")
        snap = breaker.snapshot()
        assert snap["name"] == "t"
        assert snap["state"] == CLOSED
        assert set(snap) >= {"window_calls", "window_failures", "opens",
                             "rejections", "latency_ewma_ms"}

    def test_board_is_a_registry(self):
        board = BreakerBoard(min_calls=1, failure_threshold=0.5)
        assert board.get("a") is board.get("a")
        board.get("b").record_failure()
        snap = board.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["b"]["state"] == OPEN
        board.drop("b")
        assert board.get("b").state == CLOSED


class TestRetryPolicy:
    def test_retries_then_succeeds(self):
        sleeps: list = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, base_delay=0.01, sleep=sleeps.append)
        assert policy.run(flaky) == "ok"
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_fatal_errors_never_retry(self):
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise QueryBudgetExceeded("records", 1, 2)

        policy = RetryPolicy(attempts=5, sleep=lambda _: None)
        with pytest.raises(QueryBudgetExceeded):
            policy.run(fatal)
        assert calls["n"] == 1

    def test_expired_deadline_raises_before_the_first_attempt(self):
        calls = {"n": 0}

        def work():
            calls["n"] += 1
            return "ok"

        expired = Deadline(expires_at=time.monotonic() - 1.0, total_ms=1.0)
        policy = RetryPolicy(sleep=lambda _: None)
        with pytest.raises(DeadlineExceeded):
            policy.run(work, deadline=expired)
        assert calls["n"] == 0

    def test_never_sleeps_past_the_deadline(self):
        sleeps: list = []

        def failing():
            raise RuntimeError("transient")

        # 5 ms of budget cannot cover a 1 s backoff: the policy must
        # re-raise the failure instead of burning the rest of the budget
        # asleep.
        deadline = Deadline.after_ms(5)
        policy = RetryPolicy(
            attempts=3, base_delay=1.0, sleep=sleeps.append
        )
        with pytest.raises(RuntimeError):
            policy.run(failing, deadline=deadline)
        assert sleeps == []

    def test_validates_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestTimeoutPolicy:
    def test_deadline_for(self):
        policy = TimeoutPolicy(default_deadline_ms=250.0)
        assert policy.deadline_for() is not None
        assert policy.deadline_for(500.0).total_ms == 500.0
        assert TimeoutPolicy().deadline_for() is None

    def test_hedge_delay(self):
        assert TimeoutPolicy(reply_timeout=2.0, hedge_fraction=0.25
                             ).hedge_delay == pytest.approx(0.5)
        assert TimeoutPolicy(reply_timeout=None).hedge_delay is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeoutPolicy(default_deadline_ms=0.0)
        with pytest.raises(ValueError):
            TimeoutPolicy(reply_timeout=-1.0)
        with pytest.raises(ValueError):
            TimeoutPolicy(hedge_fraction=0.0)


@pytest.fixture
def graph():
    rng = np.random.default_rng(7)
    return build_extended_graph(Dataset(rng.random((60, 2))))


class TestGuardDeadline:
    def test_expired_deadline_is_typed_and_never_degrades(self, graph):
        expired = Deadline(expires_at=time.monotonic() - 1.0, total_ms=1.0)
        with pytest.raises(DeadlineExceeded):
            run_query(graph, F, 5, deadline=expired)

    def test_generous_deadline_changes_nothing(self, graph):
        deadline = Deadline.after_ms(60_000)
        free = run_query(graph, F, 5)
        bounded = run_query(graph, F, 5, deadline=deadline)
        assert bounded.ids == free.ids
        assert bounded.scores == pytest.approx(free.scores)
        assert bounded.tier == "compiled"

    def test_open_breaker_skips_a_non_final_tier(self, graph):
        board = BreakerBoard(min_calls=1, failure_threshold=0.5)
        board.get("tier:compiled").record_failure()
        assert board.get("tier:compiled").state == OPEN
        with pytest.warns(DegradedResultWarning, match="compiled"):
            result = run_query(graph, F, 5, breakers=board)
        assert result.tier == "reference"
        oracle = run_query(graph, F, 5, engine="naive")
        assert result.ids == oracle.ids

    def test_open_breakers_never_skip_the_last_tier(self, graph):
        board = BreakerBoard(min_calls=1, failure_threshold=0.5)
        for tier in ("compiled", "reference", "naive"):
            board.get(f"tier:{tier}").record_failure()
        with pytest.warns(DegradedResultWarning):
            result = run_query(graph, F, 5, breakers=board)
        assert result.tier == "naive"

    def test_success_feeds_the_breaker_latency_estimate(self, graph):
        board = BreakerBoard()
        run_query(graph, F, 5, breakers=board)
        assert board.get("tier:compiled").latency_ewma_ms is not None


class TestAdmissionDeadline:
    def test_expired_deadline_rejected_up_front(self):
        controller = AdmissionController(max_concurrent=1)
        expired = Deadline(expires_at=time.monotonic() - 1.0, total_ms=1.0)
        with pytest.raises(DeadlineExceeded):
            with controller.admit(deadline=expired):
                pass
        assert controller.stats.shed == 0  # expiry is not an overload shed
        assert controller.stats.admitted == 0

    def test_deadline_bounds_the_wait(self):
        controller = AdmissionController(
            max_concurrent=1, max_waiting=4, wait_timeout=30.0
        )
        release = threading.Event()

        def hog():
            with controller.admit():
                release.wait(5.0)

        thread = threading.Thread(target=hog)
        thread.start()
        while controller.active == 0:
            time.sleep(0.001)
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            with controller.admit(deadline=Deadline.after_ms(50)):
                pass
        assert time.monotonic() - started < 2.0  # not the 30 s timeout
        release.set()
        thread.join()


@pytest.fixture
def compiled():
    rng = np.random.default_rng(3)
    return build_extended_graph(Dataset(rng.random((120, 3)))).compile()


class TestFabricResilience:
    def _functions(self, count: int) -> list:
        rng = np.random.default_rng(11)
        return [
            LinearFunction(w.tolist())
            for w in rng.uniform(0.1, 1.0, (count, 3))
        ]

    def test_hung_worker_no_longer_wedges_the_pool(self, compiled):
        """Regression: a SIGSTOPped worker used to stall queries forever.

        ``is_alive()`` still reports True for a stopped process, so only
        the missing reply can catch it; the executor must hedge or
        SIGKILL-heal and still answer, bit-identically, within bounds.
        """
        functions = self._functions(6)
        with ParallelQueryExecutor(
            compiled, workers=2, reply_timeout=0.3
        ) as pool:
            baseline = pool.map_queries(functions, k=5)
            os.kill(pool._slots[0].process.pid, signal.SIGSTOP)
            started = time.monotonic()
            stalled = pool.map_queries(functions, k=5)
            elapsed = time.monotonic() - started
            assert elapsed < 10.0  # pre-fix this wedged forever
            for fresh, reference in zip(stalled, baseline):
                assert fresh.ids == reference.ids
                assert fresh.scores == reference.scores
            # And the pool keeps serving afterwards.
            again = pool.map_queries(functions, k=5)
            assert [r.ids for r in again] == [r.ids for r in baseline]
            stats = pool.stats()
            assert (
                stats["tasks_hedged"] > 0
                or stats["workers_killed_hung"] > 0
            )

    def test_reap_rebuilds_the_whole_pool(self, compiled):
        """A reap must not trust the shared reply queue it just shot at."""
        functions = self._functions(4)
        with ParallelQueryExecutor(
            compiled, workers=2, reply_timeout=0.2
        ) as pool:
            os.kill(pool._slots[1].process.pid, signal.SIGSTOP)
            pool.map_queries(functions, k=5)
            stats = pool.stats()
            if stats["workers_killed_hung"]:
                # Both workers were replaced onto a fresh reply queue.
                assert stats["workers_respawned"] >= 2
            for _ in range(3):
                results = pool.map_queries(functions, k=5)
                assert len(results) == len(functions)

    def test_sigkilled_worker_heals(self, compiled):
        functions = self._functions(4)
        with ParallelQueryExecutor(compiled, workers=2) as pool:
            baseline = pool.map_queries(functions, k=5)
            pool._slots[0].process.kill()
            healed = pool.map_queries(functions, k=5)
            assert [r.ids for r in healed] == [r.ids for r in baseline]
            assert pool.stats()["workers_respawned"] >= 1

    def test_kill_during_replies_never_wedges(self, compiled):
        """Regression: a worker SIGKILLed mid-reply used to hang the pool.

        A corpse that dies inside ``results.put`` keeps the reply
        queue's cross-process write lock forever, silencing every other
        worker.  With ``reply_timeout=None`` there is no reap, so only
        the post-crash wedge backstop (``_check_wedged``) can notice the
        silence and rebuild the pool onto a fresh queue.  ``batch_size=1``
        keeps both workers streaming replies so the kill lands mid-put
        with decent probability; with the backstop the call must finish
        either way, bit-identically.
        """
        functions = self._functions(12)
        with ParallelQueryExecutor(compiled, workers=2, batch_size=1) as pool:
            baseline = pool.map_queries(functions, k=5)

            def murder():
                time.sleep(0.002)
                pool._slots[0].process.kill()

            killer = threading.Thread(target=murder)
            killer.start()
            started = time.monotonic()
            healed = pool.map_queries(functions, k=5)
            killer.join()
            assert time.monotonic() - started < 30.0
            assert [r.ids for r in healed] == [r.ids for r in baseline]
            # And the rebuilt pool keeps serving.
            again = pool.map_queries(functions, k=5)
            assert [r.ids for r in again] == [r.ids for r in baseline]

    def test_expired_deadline_raises_typed_from_the_fabric(self, compiled):
        expired = Deadline(expires_at=time.monotonic() - 1.0, total_ms=1.0)
        with ParallelQueryExecutor(compiled, workers=2) as pool:
            with pytest.raises(DeadlineExceeded):
                pool.map_queries(self._functions(2), k=5, deadline=expired)

    def test_stats_expose_breakers(self, compiled):
        with ParallelQueryExecutor(compiled, workers=2) as pool:
            pool.map_queries(self._functions(2), k=5)
            stats = pool.stats()
            assert stats["reply_timeout"] is None
            assert any(
                name.startswith("worker:") for name in stats["breakers"]
            )


class TestServingDeadlines:
    @pytest.fixture
    def serving(self, tmp_path):
        rng = np.random.default_rng(5)
        dataset = Dataset(rng.uniform(0.0, 100.0, (150, 3)).tolist())
        index = ServingIndex.create(str(tmp_path / "idx"), dataset)
        yield index
        index.close(checkpoint=False)

    def test_expired_deadline_is_typed_not_degraded(self, serving):
        with pytest.raises(DeadlineExceeded):
            serving.query(F3, 5, deadline_ms=1e-6)

    def test_batch_deadline_expired(self, serving):
        with pytest.raises(DeadlineExceeded):
            serving.query_batch([F3, F3], 5, deadline_ms=1e-6)

    def test_generous_deadline_answers_identically(self, serving):
        free = serving.query(F3, 5)
        bounded = serving.query(F3, 5, deadline_ms=60_000.0)
        assert bounded.ids == free.ids
        assert bounded.scores == free.scores

    def test_health_reports_breakers_and_policies(self, serving):
        health = serving.health()
        assert "breakers" in health
        assert health["policies"]["reply_timeout"] == pytest.approx(2.0)
        assert health["policies"]["retry_attempts"] >= 1

    def test_default_deadline_policy_applies(self, tmp_path):
        rng = np.random.default_rng(6)
        dataset = Dataset(rng.uniform(0.0, 100.0, (80, 3)).tolist())
        index = ServingIndex.create(
            str(tmp_path / "idx2"),
            dataset,
            timeout_policy=TimeoutPolicy(default_deadline_ms=60_000.0),
        )
        try:
            result = index.query(F3, 5)
            assert result.tier == "compiled"
        finally:
            index.close(checkpoint=False)


F3 = LinearFunction([0.5, 0.3, 0.2])


class TestCacheEpochRace:
    def test_purge_racing_republish_never_serves_stale_epochs(self, tmp_path):
        """Satellite: cached answers must match the epoch they claim.

        A writer republishes (delete/insert cycles) while a reader
        hammers the cached batch path.  Every result is verified after
        the fact against a full-scan oracle of the exact snapshot that
        carried its epoch — a cache entry surviving a purge race would
        surface as an epoch/answer mismatch here.
        """
        rng = np.random.default_rng(9)
        dataset = Dataset(rng.uniform(0.0, 100.0, (120, 3)).tolist())
        index = ServingIndex.create(
            str(tmp_path / "race"), dataset, cache_size=64
        )
        oracle = {}
        lock = threading.Lock()

        def register():
            snap = index.snapshot()
            with lock:
                oracle[snap.epoch] = snap

        register()
        functions = [
            LinearFunction(w.tolist())
            for w in rng.uniform(0.1, 1.0, (4, 3))
        ]
        seen: list = []
        stop = threading.Event()
        errors: list = []
        snap0 = index.snapshot().compiled
        real_ids = sorted(
            int(rid)
            for rid, pseudo in zip(
                snap0.record_ids.tolist(), snap0.pseudo_mask.tolist()
            )
            if not pseudo
        )

        def reader():
            try:
                while not stop.is_set():
                    results = index.query_batch(functions, 5)
                    seen.extend(zip(functions, results))
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        def writer():
            try:
                for round_index in range(25):
                    victim = real_ids[round_index % len(real_ids)]
                    index.delete(victim)
                    register()
                    index.insert(victim)
                    register()
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        writer_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        writer_thread.start()
        writer_thread.join()
        stop.set()
        for thread in threads:
            thread.join()
        index.close(checkpoint=False)
        assert not errors, errors
        assert seen, "reader made no progress"
        for function, result in seen:
            snap = oracle.get(result.epoch)
            assert snap is not None, (
                f"result claims unknown epoch {result.epoch}"
            )
            expected = snapshot_scan(
                snap.compiled, function, 5, overlay=snap.overlay
            )
            assert (result.ids, result.scores) == (
                expected.ids,
                expected.scores,
            ), (
                f"epoch {result.epoch} answer diverges from its "
                "snapshot's oracle: stale cache entry"
            )
