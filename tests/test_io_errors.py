"""Error-path tests for persistence and the dataset archive format."""

import numpy as np
import pytest

from repro.cli import load_dataset, save_dataset
from repro.core.builder import build_dominant_graph
from repro.core.io import load_graph, save_graph
from repro.data.generators import uniform
from repro.errors import IndexCorruptionError


class TestLoadGraphErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(str(tmp_path / "absent.npz"))

    def test_extensionless_path_resolved(self, tmp_path):
        graph = build_dominant_graph(uniform(20, 2, seed=1))
        save_graph(graph, str(tmp_path / "idx"))
        loaded = load_graph(str(tmp_path / "idx"))  # no .npz either way
        assert len(loaded) == 20

    def test_corrupt_edges_caught_by_checksum(self, tmp_path):
        # Tampering with an array without re-signing the manifest is
        # caught by the SHA-256 check before any reconstruction runs.
        graph = build_dominant_graph(uniform(30, 2, seed=2))
        path = save_graph(graph, str(tmp_path / "c.npz"))
        with np.load(path) as archive:
            payload = dict(archive)
        edges = payload["edges"]
        layer_of = dict(zip(payload["record_ids"].tolist(),
                            payload["layer_of"].tolist()))
        deep = [rid for rid, layer in layer_of.items() if layer >= 2]
        top = [rid for rid, layer in layer_of.items() if layer == 0]
        assert deep and top
        payload["edges"] = np.vstack([edges, [[top[0], deep[0]]]])
        np.savez(path, **payload)
        with pytest.raises(IndexCorruptionError, match="checksum"):
            load_graph(path, validate=True)

    def test_corrupt_edges_caught_by_structural_validation(self, tmp_path):
        # Even with a correctly re-signed manifest, a non-consecutive
        # edge is rejected by structural validation at load time.
        from repro.core.io import compute_manifest

        graph = build_dominant_graph(uniform(30, 2, seed=2))
        path = save_graph(graph, str(tmp_path / "c2.npz"))
        with np.load(path) as archive:
            payload = dict(archive)
        layer_of = dict(zip(payload["record_ids"].tolist(),
                            payload["layer_of"].tolist()))
        deep = [rid for rid, layer in layer_of.items() if layer >= 2]
        top = [rid for rid, layer in layer_of.items() if layer == 0]
        assert deep and top
        payload["edges"] = np.vstack([payload["edges"], [[top[0], deep[0]]]])
        names, digests = compute_manifest(
            {k: v for k, v in payload.items()
             if k not in ("manifest_names", "manifest_sha256", "format_version")}
        )
        payload["manifest_names"] = np.asarray(names, dtype=str)
        payload["manifest_sha256"] = np.asarray(digests, dtype=str)
        np.savez(path, **payload)
        with pytest.raises(IndexCorruptionError, match="consecutive"):
            load_graph(path)

    def test_dataset_archive_missing_key(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        np.savez(path, values=np.ones((3, 2)))
        with pytest.raises(KeyError):
            load_dataset(path)


class TestDatasetArchive:
    def test_float_preservation(self, tmp_path):
        dataset = uniform(25, 3, seed=3)
        path = save_dataset(dataset, str(tmp_path / "d"))
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.values, dataset.values)

    def test_rejects_pickle(self, tmp_path):
        # Archives are loaded with allow_pickle=False: object arrays fail.
        path = str(tmp_path / "evil.npz")
        np.savez(
            path,
            values=np.ones((2, 2)),
            attribute_names=np.asarray([{"evil": 1}, "b"], dtype=object),
        )
        with pytest.raises(ValueError):
            load_dataset(path)
