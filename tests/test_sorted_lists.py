"""Unit tests for the sorted-list substrate (TA/CA/NRA)."""

import numpy as np
import pytest

from repro.baselines.sorted_lists import SortedLists
from repro.core.dataset import Dataset


@pytest.fixture
def lists(small_dataset):
    return SortedLists(small_dataset)


class TestSortedLists:
    def test_descending_per_dimension(self, lists, small_dataset):
        for dim in range(small_dataset.dims):
            values = [lists.entry(dim, d)[1] for d in range(len(lists))]
            assert values == sorted(values, reverse=True)

    def test_entry_values_match_dataset(self, lists, small_dataset):
        rid, value = lists.entry(0, 0)
        assert value == small_dataset.values[rid, 0]
        assert rid == 0  # x-max is record 0 (4.0)

    def test_tie_break_by_id(self):
        ds = Dataset([[1.0, 0.0], [1.0, 0.0], [0.5, 0.0]])
        lists = SortedLists(ds)
        assert lists.entry(0, 0)[0] == 0
        assert lists.entry(0, 1)[0] == 1

    def test_depth_values(self, lists):
        np.testing.assert_array_equal(lists.depth_values(0), [4.0, 4.0])

    def test_floor_vector(self, lists):
        np.testing.assert_array_equal(lists.floor_vector(), [0.5, 0.5])

    def test_each_record_appears_once_per_list(self, lists):
        for dim in range(lists.dims):
            seen = [lists.entry(dim, d)[0] for d in range(len(lists))]
            assert sorted(seen) == list(range(len(lists)))
