"""Unit tests for query workloads, the comparison harness, and the
constrained (filtered) top-k extension."""

import numpy as np
import pytest

from repro.bench.compare import compare_algorithms, default_suite, format_report
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_extended_graph
from repro.core.functions import LinearFunction
from repro.data.generators import uniform
from repro.data.queries import clustered_queries, random_queries


class TestRandomQueries:
    def test_shape_and_normalization(self):
        queries = random_queries(4, 10, seed=1)
        assert len(queries) == 10
        for q in queries:
            assert q.dims == 4
            assert np.all(q.weights >= 0)
            assert q.weights.sum() == pytest.approx(1.0)

    def test_deterministic(self):
        a = random_queries(3, 5, seed=2)
        b = random_queries(3, 5, seed=2)
        for qa, qb in zip(a, b):
            np.testing.assert_array_equal(qa.weights, qb.weights)

    def test_alpha_shapes_concentration(self):
        concentrated = random_queries(5, 200, alpha=0.1, seed=3)
        balanced = random_queries(5, 200, alpha=50.0, seed=3)
        max_c = np.mean([q.weights.max() for q in concentrated])
        max_b = np.mean([q.weights.max() for q in balanced])
        assert max_c > max_b + 0.2

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            random_queries(0, 5)
        with pytest.raises(ValueError):
            random_queries(3, 5, alpha=0.0)


class TestClusteredQueries:
    def test_queries_cluster_around_prototypes(self):
        queries = clustered_queries(3, 30, n_clusters=2, spread=0.01, seed=4)
        weights = np.vstack([q.weights for q in queries])
        # With tiny spread, members of the same cluster are near-equal.
        first_cluster = weights[::2]
        assert np.max(np.std(first_cluster, axis=0)) < 0.05

    def test_normalized(self):
        for q in clustered_queries(4, 12, seed=5):
            assert q.weights.sum() == pytest.approx(1.0)
            assert np.all(q.weights >= 0)

    def test_rejects_bad_clusters(self):
        with pytest.raises(ValueError):
            clustered_queries(3, 5, n_clusters=0)


class TestCompareAlgorithms:
    @pytest.fixture(scope="class")
    def reports(self):
        dataset = uniform(300, 3, seed=6)
        queries = random_queries(3, 4, seed=7)
        return compare_algorithms(dataset, queries, k=5)

    def test_all_correct(self, reports):
        assert all(r.correct for r in reports)

    def test_covers_standard_suite(self, reports):
        names = {r.name for r in reports}
        assert {"DG", "TA", "CA", "ONION", "AppRI", "PREFER", "RankCube"} <= names

    def test_metrics_positive(self, reports):
        for r in reports:
            assert r.mean_accessed >= 0
            assert r.mean_seconds >= 0
            assert r.build_seconds >= 0

    def test_format_report(self, reports):
        text = format_report(reports, k=5, n_queries=4)
        assert "DG" in text and "accessed" in text

    def test_rejects_empty_queries(self):
        with pytest.raises(ValueError):
            compare_algorithms(uniform(50, 2, seed=8), [], k=5)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            compare_algorithms(uniform(50, 2, seed=8), random_queries(2, 2), k=0)

    def test_custom_suite(self):
        dataset = uniform(100, 2, seed=9)
        suite = {
            key: value
            for key, value in default_suite(dataset).items()
            if key in ("DG", "TA")
        }
        reports = compare_algorithms(
            dataset, random_queries(2, 3, seed=10), k=5, suite=suite
        )
        assert {r.name for r in reports} == {"DG", "TA"}


class TestFilteredTopK:
    @pytest.fixture(scope="class")
    def setup(self):
        dataset = uniform(400, 3, seed=11)
        graph = build_extended_graph(dataset, theta=16)
        return dataset, AdvancedTraveler(graph)

    def test_matches_filtered_bruteforce(self, setup):
        dataset, traveler = setup
        f = LinearFunction([0.5, 0.3, 0.2])
        predicate = lambda v: v[0] < 500.0
        result = traveler.top_k(f, 10, where=predicate)
        eligible = [i for i in range(len(dataset)) if predicate(dataset.vector(i))]
        expected = sorted(
            f.score_many(dataset.values[eligible]), reverse=True
        )[:10]
        np.testing.assert_allclose(sorted(result.scores, reverse=True), expected)
        assert all(predicate(dataset.vector(r)) for r in result.ids)

    def test_highly_selective_predicate(self, setup):
        dataset, traveler = setup
        f = LinearFunction([0.4, 0.3, 0.3])
        predicate = lambda v: v[1] < 50.0  # ~5% of uniform [0,1000]
        result = traveler.top_k(f, 5, where=predicate)
        eligible = [i for i in range(len(dataset)) if predicate(dataset.vector(i))]
        expected = sorted(f.score_many(dataset.values[eligible]), reverse=True)[:5]
        np.testing.assert_allclose(sorted(result.scores, reverse=True), expected)

    def test_nothing_matches(self, setup):
        _, traveler = setup
        result = traveler.top_k(
            LinearFunction([0.5, 0.3, 0.2]), 5, where=lambda v: False
        )
        assert len(result) == 0

    def test_everything_matches_equals_unfiltered(self, setup):
        _, traveler = setup
        f = LinearFunction([0.5, 0.3, 0.2])
        plain = traveler.top_k(f, 10)
        filtered = traveler.top_k(f, 10, where=lambda v: True)
        assert plain.ids == filtered.ids

    def test_range_predicate_on_two_attributes(self, setup):
        dataset, traveler = setup
        f = LinearFunction([0.6, 0.2, 0.2])
        predicate = lambda v: 200.0 <= v[0] <= 800.0 and v[2] >= 100.0
        result = traveler.top_k(f, 8, where=predicate)
        eligible = [i for i in range(len(dataset)) if predicate(dataset.vector(i))]
        expected = sorted(f.score_many(dataset.values[eligible]), reverse=True)[:8]
        np.testing.assert_allclose(sorted(result.scores, reverse=True), expected)
