"""Unit tests for index persistence (repro.core.io)."""

import numpy as np
import pytest

from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.functions import LinearFunction
from repro.core.io import load_graph, save_graph
from repro.core.maintenance import delete_record, insert_record
from repro.data.generators import all_skyline, uniform


class TestRoundTrip:
    def test_plain_graph(self, tmp_path, small_dataset):
        graph = build_dominant_graph(small_dataset)
        path = save_graph(graph, str(tmp_path / "index"))
        loaded = load_graph(path, validate=True)
        assert loaded.layers() == graph.layers()
        assert loaded.dataset == small_dataset

    def test_extension_appended(self, tmp_path, small_dataset):
        graph = build_dominant_graph(small_dataset)
        path = save_graph(graph, str(tmp_path / "noext"))
        assert path.endswith(".npz")

    def test_extended_graph_with_pseudo(self, tmp_path):
        dataset = all_skyline(80, 3, seed=1)
        graph = build_extended_graph(dataset, theta=8)
        assert graph.num_pseudo > 0
        path = save_graph(graph, str(tmp_path / "ext.npz"))
        loaded = load_graph(path, validate=True)
        assert loaded.num_pseudo == graph.num_pseudo
        assert loaded.layers() == graph.layers()
        for rid in graph.iter_records():
            if graph.is_pseudo(rid):
                np.testing.assert_array_equal(loaded.vector(rid), graph.vector(rid))

    def test_queries_identical_after_roundtrip(self, tmp_path):
        dataset = uniform(150, 3, seed=2)
        graph = build_extended_graph(dataset, theta=8)
        path = save_graph(graph, str(tmp_path / "q.npz"))
        loaded = load_graph(path)
        f = LinearFunction([0.5, 0.3, 0.2])
        a = AdvancedTraveler(graph).top_k(f, 10)
        b = AdvancedTraveler(loaded).top_k(f, 10)
        assert a.ids == b.ids
        assert a.stats.computed == b.stats.computed

    def test_subset_graph_roundtrip(self, tmp_path):
        dataset = uniform(100, 2, seed=3)
        graph = build_dominant_graph(dataset, record_ids=range(60))
        loaded = load_graph(save_graph(graph, str(tmp_path / "s.npz")))
        assert sorted(loaded.real_ids()) == list(range(60))
        # And maintenance keeps working after a reload.
        insert_record(loaded, 60)
        delete_record(loaded, 0)
        loaded.validate()

    def test_graph_after_maintenance_roundtrip(self, tmp_path):
        # Maintenance merges can leave non-contiguous pseudo ids; the
        # format must preserve them exactly.
        dataset = all_skyline(120, 3, seed=4)
        graph = build_extended_graph(dataset, theta=8, record_ids=range(100))
        for rid in range(100, 120):
            insert_record(graph, rid)
        for rid in range(0, 30):
            delete_record(graph, rid)
        graph.validate()
        loaded = load_graph(save_graph(graph, str(tmp_path / "m.npz")), validate=True)
        assert loaded.layers() == graph.layers()

    def test_version_check(self, tmp_path, small_dataset):
        graph = build_dominant_graph(small_dataset)
        path = save_graph(graph, str(tmp_path / "v.npz"))
        with np.load(path) as archive:
            payload = dict(archive)
        payload["format_version"] = np.asarray(99)
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_graph(path)

    def test_attribute_names_preserved(self, tmp_path):
        from repro.data.server import server_dataset

        dataset = server_dataset(50, seed=5)
        graph = build_dominant_graph(dataset)
        loaded = load_graph(save_graph(graph, str(tmp_path / "n.npz")))
        assert loaded.dataset.attribute_names == dataset.attribute_names


class TestRegisterPseudo:
    def test_collision_with_dataset_row(self, small_dataset):
        from repro.core.graph import DominantGraph

        graph = DominantGraph(small_dataset)
        with pytest.raises(ValueError, match="collides"):
            graph.register_pseudo_record(0, np.array([1.0, 1.0]))

    def test_duplicate_registration(self, small_dataset):
        from repro.core.graph import DominantGraph

        graph = DominantGraph(small_dataset)
        graph.register_pseudo_record(10, np.array([1.0, 1.0]))
        with pytest.raises(ValueError, match="already"):
            graph.register_pseudo_record(10, np.array([2.0, 2.0]))

    def test_counter_advances(self, small_dataset):
        from repro.core.graph import DominantGraph

        graph = DominantGraph(small_dataset)
        graph.register_pseudo_record(10, np.array([1.0, 1.0]))
        fresh = graph.add_pseudo_record(np.array([2.0, 2.0]))
        assert fresh == 11
