"""Guarded query execution: tiers, budgets, and the degradation chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_extended_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.guard import TIERS, BudgetedAccessCounter, run_query
from repro.core.maintenance import mark_deleted
from repro.errors import QueryBudgetExceeded

F = LinearFunction([0.5, 0.5])


@pytest.fixture
def graph():
    rng = np.random.default_rng(7)
    return build_extended_graph(Dataset(rng.random((50, 2))))


class TestTiers:
    """Every tier answers; every tier answers the same."""

    def test_tier_order(self):
        assert TIERS == ("compiled", "reference", "naive")

    @pytest.mark.parametrize("engine", ["auto", "compiled", "reference", "naive"])
    def test_every_tier_agrees(self, graph, engine):
        result = run_query(graph, F, 5, engine=engine)
        oracle = run_query(graph, F, 5, engine="naive")
        assert result.tier == (engine if engine != "auto" else "compiled")
        assert result.ids == oracle.ids
        assert result.scores == pytest.approx(oracle.scores)

    @pytest.mark.parametrize("engine", ["compiled", "reference", "naive"])
    def test_where_predicate_respected_everywhere(self, graph, engine):
        where = lambda v: v[0] < 0.5
        result = run_query(graph, F, 5, engine=engine, where=where)
        assert all(graph.vector(rid)[0] < 0.5 for rid in result.ids)
        oracle = run_query(graph, F, 5, engine="naive", where=where)
        assert result.ids == oracle.ids

    def test_naive_tier_excludes_mark_deleted(self, graph):
        victim = run_query(graph, F, 1, engine="naive").ids[0]
        mark_deleted(graph, victim)
        result = run_query(graph, F, 5, engine="naive")
        assert victim not in result.ids

    def test_stale_snapshot_is_recompiled(self, graph):
        snapshot = graph.compile()
        victim = run_query(graph, F, 1).ids[0]
        mark_deleted(graph, victim)
        assert snapshot.stale
        result = run_query(graph, F, 5, snapshot=snapshot)
        assert result.tier == "compiled"
        assert victim not in result.ids

    def test_unknown_engine_raises(self, graph):
        with pytest.raises(ValueError, match="unknown engine"):
            run_query(graph, F, 5, engine="quantum")

    def test_nonpositive_k_raises(self, graph):
        with pytest.raises(ValueError, match="positive"):
            run_query(graph, F, 0)


class TestBudgetedCounter:
    """The counter raises mid-count the moment a limit is passed."""

    def test_unlimited_by_default(self):
        counter = BudgetedAccessCounter()
        counter.count_computed_batch(list(range(1000)))
        assert counter.computed == 1000

    def test_record_limit_trips_on_the_crossing_charge(self):
        counter = BudgetedAccessCounter(max_records=2)
        counter.count_computed(0)
        counter.count_computed(1)
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            counter.count_computed(2)
        assert excinfo.value.kind == "records"
        assert excinfo.value.limit == 2
        assert excinfo.value.spent == 3

    def test_batch_charges_trip_too(self):
        counter = BudgetedAccessCounter(max_records=5)
        with pytest.raises(QueryBudgetExceeded):
            counter.count_computed_batch(list(range(10)))

    def test_budget_error_records_the_tier(self, graph):
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            run_query(graph, F, 5, engine="naive", budget_records=3)
        assert excinfo.value.tier == "naive"


class TestZeroAccessPaths:
    """Regression: the wall-clock budget must bind even when a query
    charges nothing.

    Enforcement used to live only inside ``count_computed*``, so a tier
    that scored zero records — every real record mark-deleted, an empty
    candidate set — never checked the deadline and could return
    arbitrarily late as if on time.  ``run_query`` now re-enforces at
    tier completion.
    """

    @pytest.fixture
    def emptied(self, graph):
        for rid in sorted(graph.real_ids()):
            mark_deleted(graph, rid)
        return graph

    def test_zero_access_query_still_trips_the_deadline(self, emptied):
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            run_query(emptied, F, 5, engine="naive", budget_ms=0.0)
        assert excinfo.value.kind == "time"
        assert excinfo.value.tier == "naive"

    def test_zero_access_query_without_budget_answers_empty(self, emptied):
        result = run_query(emptied, F, 5, engine="naive")
        assert result.ids == ()
        assert result.stats.computed == 0

    def test_completion_check_applies_to_every_tier(self, emptied):
        for engine in TIERS:
            with pytest.raises(QueryBudgetExceeded) as excinfo:
                run_query(
                    emptied, F, 5, engine=engine, budget_ms=0.0,
                    fallback=False,
                )
            assert excinfo.value.kind == "time"
            assert excinfo.value.tier == engine

    def test_record_budget_alone_lets_zero_access_queries_pass(self, emptied):
        # Zero accesses can never exceed a record budget: only the
        # wall-clock half of the completion check may fire here.
        result = run_query(emptied, F, 5, engine="naive", budget_records=1)
        assert result.ids == ()
