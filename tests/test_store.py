"""The crash-safe index store: format, directory, mmap, scrub, serving.

Every test here defends one clause of the store's contract
(``docs/storage.md``): a file either opens bit-identical to what was
written, or it raises a typed error — torn writes, flipped bits, and
stale stamps are all *detected*, never served.
"""

from __future__ import annotations

import os
import shutil
import warnings

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.errors import (
    DegradedResultWarning,
    StoreCorruptionError,
    StoreStaleError,
)
from repro.parallel.executor import ParallelQueryExecutor
from repro.serve.index import ServingIndex
from repro.store import (
    ALIGNMENT,
    COMPILED_SECTIONS,
    QUARANTINE_DIR,
    StoreDirectory,
    StoreScrubber,
    StoreStamp,
    attach_store,
    load_graph_store,
    open_store,
    read_toc,
    save_graph_store,
    serialize_store,
    write_store,
)
from repro.testing import flip_bits, store_crash_offsets, truncate_file


@pytest.fixture
def dataset(rng) -> Dataset:
    return Dataset(rng.uniform(0.0, 100.0, (60, 3)).tolist())


@pytest.fixture
def graph(dataset):
    return build_dominant_graph(dataset)


@pytest.fixture
def compiled(graph):
    return graph.compile().detach()


@pytest.fixture
def arrays(compiled) -> dict:
    return {name: getattr(compiled, name) for name in COMPILED_SECTIONS}


def compiled_stamp(compiled, **overrides) -> StoreStamp:
    fields = dict(
        kind="compiled", first_layer_size=compiled.first_layer_size
    )
    fields.update(overrides)
    return StoreStamp(**fields)


# ----------------------------------------------------------------------
# Format: serialization, verification, torn writes
# ----------------------------------------------------------------------
class TestFormat:
    def test_round_trip_is_bit_identical_and_read_only(
        self, tmp_path, compiled, arrays
    ):
        path = str(tmp_path / "index.dgs")
        write_store(path, arrays, compiled_stamp(compiled, generation=4))
        with open_store(path, deep=True) as store:
            assert store.info.stamp.generation == 4
            assert store.info.stamp.kind == "compiled"
            for name, original in arrays.items():
                view = store.section(name)
                assert view.dtype == original.dtype
                assert view.shape == original.shape
                np.testing.assert_array_equal(view, original)
                assert not view.flags.writeable
            rebuilt = store.compiled()
            assert rebuilt.first_layer_size == compiled.first_layer_size
            function = LinearFunction([0.5, 0.3, 0.2])
            assert rebuilt.top_k(function, 5) == compiled.top_k(function, 5)

    def test_sections_are_aligned(self, tmp_path, compiled, arrays):
        path = str(tmp_path / "index.dgs")
        write_store(path, arrays, compiled_stamp(compiled))
        info = read_toc(path)
        for spec in info.sections:
            assert spec.offset % ALIGNMENT == 0

    def test_serialize_matches_written_file(self, tmp_path, compiled, arrays):
        path = str(tmp_path / "index.dgs")
        stamp = compiled_stamp(compiled, generation=2)
        write_store(path, arrays, stamp)
        with open(path, "rb") as handle:
            assert handle.read() == serialize_store(arrays, stamp)

    def test_every_truncation_point_is_rejected(
        self, tmp_path, compiled, arrays
    ):
        path = str(tmp_path / "index.dgs")
        write_store(path, arrays, compiled_stamp(compiled))
        image = open(path, "rb").read()
        torn = str(tmp_path / "torn.dgs")
        for offset in store_crash_offsets(path):
            with open(torn, "wb") as handle:
                handle.write(image[:offset])
            with pytest.raises(StoreCorruptionError):
                read_toc(torn)

    def test_every_toc_byte_flip_is_rejected_at_open(
        self, tmp_path, compiled, arrays
    ):
        path = str(tmp_path / "index.dgs")
        write_store(path, arrays, compiled_stamp(compiled))
        image = bytearray(open(path, "rb").read())
        toc_bytes = read_toc(path).toc_bytes
        bent = str(tmp_path / "bent.dgs")
        for offset in range(toc_bytes):
            damaged = bytearray(image)
            damaged[offset] ^= 0xFF
            with open(bent, "wb") as handle:
                handle.write(bytes(damaged))
            with pytest.raises(StoreCorruptionError):
                read_toc(bent)

    def test_payload_flip_passes_fast_but_deep_names_the_section(
        self, tmp_path, compiled, arrays
    ):
        path = str(tmp_path / "index.dgs")
        write_store(path, arrays, compiled_stamp(compiled))
        spec = read_toc(path).spec("values")
        with open(path, "r+b") as handle:
            handle.seek(spec.offset)
            byte = handle.read(1)
            handle.seek(spec.offset)
            handle.write(bytes([byte[0] ^ 0x01]))
        read_toc(path)  # fast verify is O(header): payload rot invisible
        with pytest.raises(StoreCorruptionError) as excinfo:
            open_store(path, deep=True)
        assert excinfo.value.section == "values"

    def test_random_bit_flips_never_serve_silently(
        self, tmp_path, compiled, arrays
    ):
        path = str(tmp_path / "index.dgs")
        write_store(path, arrays, compiled_stamp(compiled))
        pristine = open(path, "rb").read()
        for seed in range(8):
            with open(path, "wb") as handle:
                handle.write(pristine)
            flip_bits(path, n=1, seed=seed)
            try:
                store = open_store(path, deep=True)
            except StoreCorruptionError:
                continue  # detected: the contract held
            store.close()
            pytest.fail(f"bit flip with seed {seed} went undetected")

    def test_truncated_file_is_rejected(self, tmp_path, compiled, arrays):
        path = str(tmp_path / "index.dgs")
        write_store(path, arrays, compiled_stamp(compiled))
        truncate_file(path, fraction=0.5)
        with pytest.raises(StoreCorruptionError):
            read_toc(path)


# ----------------------------------------------------------------------
# Staleness: the stamp binds a file to its source
# ----------------------------------------------------------------------
class TestStaleness:
    def test_source_version_mismatch_is_stale_not_corrupt(
        self, tmp_path, compiled, arrays
    ):
        path = str(tmp_path / "index.dgs")
        write_store(
            path, arrays, compiled_stamp(compiled, source_version=3)
        )
        with pytest.raises(StoreStaleError) as excinfo:
            open_store(
                path, expect=StoreStamp(kind="compiled", source_version=4)
            )
        assert excinfo.value.field == "source_version"
        assert excinfo.value.expected == 4
        assert excinfo.value.found == 3
        open_store(path).close()  # without expectations the file is fine

    def test_kind_mismatch_is_stale(self, tmp_path, compiled, arrays):
        path = str(tmp_path / "index.dgs")
        write_store(path, arrays, compiled_stamp(compiled))
        with pytest.raises(StoreStaleError):
            open_store(path, expect=StoreStamp(kind="graph"))

    def test_applied_seq_mismatch_is_stale(self, tmp_path, compiled, arrays):
        path = str(tmp_path / "index.dgs")
        write_store(path, arrays, compiled_stamp(compiled, applied_seq=7))
        with pytest.raises(StoreStaleError) as excinfo:
            open_store(
                path, expect=StoreStamp(kind="compiled", applied_seq=9)
            )
        assert excinfo.value.field == "applied_seq"


# ----------------------------------------------------------------------
# Directory: generations, CURRENT, quarantine, torn publishes
# ----------------------------------------------------------------------
class TestDirectory:
    def test_publish_rotates_generations_and_collects_orphans(
        self, tmp_path, compiled, arrays
    ):
        spool = StoreDirectory(str(tmp_path / "spool"), keep=1)
        stamp = compiled_stamp(compiled)
        for _ in range(3):
            spool.publish(arrays, stamp)
        assert spool.generations() == [2, 3]
        path, generation = spool.read_current()
        assert generation == 3
        with spool.open_current(deep=True) as store:
            assert store.info.stamp.generation == 3
        assert spool.audit()["issues"] == []

    def test_kill_at_every_offset_mid_publish_never_loses_current(
        self, tmp_path, compiled, arrays
    ):
        """A publish killed at any byte leaves the old generation serving.

        For every interesting truncation point of the next generation's
        image, plant the torn bytes both ways a crash can leave them —
        as a stray temp file, and as a torn final file that never got
        its ``CURRENT`` flip — and require the directory to keep serving
        the intact generation bit-for-bit.
        """
        root = str(tmp_path / "spool")
        spool = StoreDirectory(root, keep=1)
        stamp = compiled_stamp(compiled)
        current_path, generation = spool.publish(arrays, stamp)
        image = serialize_store(arrays, stamp)
        offsets = store_crash_offsets(current_path)
        for offset in offsets:
            torn_final = spool.path_for(generation + 1)
            torn_temp = f"{torn_final}.tmp.424242"
            for debris in (torn_temp, torn_final):
                with open(debris, "wb") as handle:
                    handle.write(image[:offset])
                with spool.open_current() as store:
                    assert store.info.stamp.generation == generation
                    np.testing.assert_array_equal(
                        store.section("values"), arrays["values"]
                    )
                os.unlink(debris)
        # One full heal: leave the worst debris in place and publish.
        with open(spool.path_for(generation + 1), "wb") as handle:
            handle.write(image[: len(image) // 2])
        with open(
            f"{spool.path_for(generation + 2)}.tmp.424242", "wb"
        ) as handle:
            handle.write(image[:64])
        _, healed = spool.publish(arrays, stamp)
        assert healed == generation + 2  # allocated past the torn file
        assert not any(".tmp." in name for name in os.listdir(root))
        # The torn generation ages out of the keep window and is removed.
        spool.publish(arrays, stamp)
        names = os.listdir(root)
        assert os.path.basename(spool.path_for(generation + 1)) not in names

    def test_corrupt_current_is_quarantined_not_served(
        self, tmp_path, compiled, arrays
    ):
        spool = StoreDirectory(str(tmp_path / "spool"))
        path, _ = spool.publish(arrays, compiled_stamp(compiled))
        with open(path, "r+b") as handle:
            handle.seek(0)
            handle.write(b"XXXXXXXX")  # stomp the magic
        with pytest.raises(StoreCorruptionError):
            spool.open_current()
        assert not os.path.exists(path)
        assert spool.quarantined()
        audit = spool.audit()
        assert any("quarantined" in issue for issue in audit["issues"])

    def test_per_section_damage_is_quarantined_on_deep_open(
        self, tmp_path, compiled, arrays
    ):
        spool = StoreDirectory(str(tmp_path / "spool"))
        path, _ = spool.publish(arrays, compiled_stamp(compiled))
        pristine = open(path, "rb").read()
        for name in ("values", "record_ids", "children_indptr"):
            spec = read_toc(path).spec(name)
            if spec.nbytes == 0:
                continue
            damaged = bytearray(pristine)
            damaged[spec.offset] ^= 0x80
            with open(path, "wb") as handle:
                handle.write(bytes(damaged))
            with pytest.raises(StoreCorruptionError) as excinfo:
                spool.open_current(deep=True)
            assert excinfo.value.section == name
            assert not os.path.exists(path)  # quarantined, not servable
            # Restore the file (CURRENT still names it) for the next run.
            shutil.rmtree(
                os.path.join(str(tmp_path / "spool"), QUARANTINE_DIR)
            )
            with open(path, "wb") as handle:
                handle.write(pristine)

    def test_stale_current_is_not_quarantined(
        self, tmp_path, compiled, arrays
    ):
        spool = StoreDirectory(str(tmp_path / "spool"))
        path, _ = spool.publish(
            arrays, compiled_stamp(compiled, source_version=1)
        )
        with pytest.raises(StoreStaleError):
            spool.open_current(
                expect=StoreStamp(kind="compiled", source_version=2)
            )
        assert os.path.exists(path)  # intact, merely outdated
        assert not spool.quarantined()

    def test_audit_reports_missing_current(self, tmp_path, compiled, arrays):
        spool = StoreDirectory(str(tmp_path / "spool"))
        spool.publish(arrays, compiled_stamp(compiled))
        os.unlink(spool.current_path)
        audit = spool.audit()
        assert any("CURRENT is missing" in issue for issue in audit["issues"])
        assert audit["orphans"]


# ----------------------------------------------------------------------
# Scrubber: bit rot is detected while serving
# ----------------------------------------------------------------------
class _Breaker:
    def __init__(self) -> None:
        self.failures = 0
        self.successes = 0

    def record_failure(self) -> None:
        self.failures += 1

    def record_success(self, latency_ms: float = 0.0) -> None:
        self.successes += 1


class TestScrubber:
    def test_full_clean_cycle_records_success(
        self, tmp_path, compiled, arrays
    ):
        path = str(tmp_path / "index.dgs")
        write_store(path, arrays, compiled_stamp(compiled))
        breaker = _Breaker()
        store = open_store(path)
        scrubber = StoreScrubber(store, breaker=breaker)
        names = [scrubber.scrub_once() for _ in store.info.section_names]
        assert set(names) == set(store.info.section_names)
        assert breaker.successes == 1
        assert breaker.failures == 0
        stats = scrubber.stats()
        assert stats["full_cycles"] == 1
        assert stats["corruptions_detected"] == 0
        store.close()

    def test_rot_under_a_live_mapping_trips_breaker_and_callback(
        self, tmp_path, compiled, arrays
    ):
        path = str(tmp_path / "index.dgs")
        write_store(path, arrays, compiled_stamp(compiled))
        store = open_store(path, deep=True)  # clean at open time
        spec = store.info.spec("values")
        with open(path, "r+b") as handle:  # ...then the disk rots
            handle.seek(spec.offset)
            byte = handle.read(1)
            handle.seek(spec.offset)
            handle.write(bytes([byte[0] ^ 0x01]))
        breaker = _Breaker()
        caught: list = []
        scrubber = StoreScrubber(
            store, breaker=breaker, on_corruption=caught.append
        )
        for _ in store.info.section_names:
            scrubber.scrub_once()
        assert breaker.failures == 1
        assert len(caught) == 1
        assert caught[0].section == "values"
        stats = scrubber.stats()
        assert stats["corruptions_detected"] == 1
        assert stats["path"] is None  # the corpse is dropped
        assert scrubber.scrub_once() is None  # and never re-scrubbed
        store.close()


# ----------------------------------------------------------------------
# Fabric: file transport parity and shared spool hygiene
# ----------------------------------------------------------------------
class TestFabricFileTransport:
    def test_file_transport_matches_in_process_answers(
        self, tmp_path, compiled
    ):
        functions = [
            LinearFunction([0.6, 0.3, 0.1]),
            LinearFunction([0.2, 0.2, 0.6]),
        ]
        fabric = ParallelQueryExecutor(
            compiled, workers=2, snapshot_dir=str(tmp_path / "spool")
        )
        try:
            assert fabric.stats()["transport"] == "file"
            results = fabric.map_queries(functions, 5)
            for function, result in zip(functions, results):
                expected = compiled.top_k(function, 5)
                assert result.ids == expected.ids
                assert result.scores == expected.scores
        finally:
            fabric.shutdown()
        assert os.listdir(str(tmp_path / "spool")) == []

    def test_publish_rotates_the_spool(self, tmp_path, compiled, graph):
        fabric = ParallelQueryExecutor(
            compiled, workers=1, snapshot_dir=str(tmp_path / "spool")
        )
        try:
            fabric.publish(compiled, epoch=1)
            (result,) = fabric.map_queries(
                [LinearFunction([0.5, 0.25, 0.25])], 3
            )
            expected = compiled.top_k(LinearFunction([0.5, 0.25, 0.25]), 3)
            assert result.ids == expected.ids
        finally:
            fabric.shutdown()


# ----------------------------------------------------------------------
# Graph checkpoints ride the same container
# ----------------------------------------------------------------------
class TestGraphStore:
    def test_graph_round_trip(self, tmp_path, graph):
        path = save_graph_store(
            graph, str(tmp_path / "checkpoint"), applied_seq=11
        )
        assert path.endswith(".dgs")
        loaded = load_graph_store(path)
        assert len(loaded) == len(graph)
        assert loaded.num_layers == graph.num_layers
        assert loaded.edge_count() == graph.edge_count()
        info = read_toc(path)
        assert info.stamp.kind == "graph"
        assert info.stamp.applied_seq == 11

    def test_damaged_graph_store_is_rejected_at_load(self, tmp_path, graph):
        path = save_graph_store(graph, str(tmp_path / "checkpoint"))
        spec = read_toc(path).spec("values")
        with open(path, "r+b") as handle:
            handle.seek(spec.offset)
            byte = handle.read(1)
            handle.seek(spec.offset)
            handle.write(bytes([byte[0] ^ 0x04]))
        with pytest.raises(StoreCorruptionError):
            load_graph_store(path)


# ----------------------------------------------------------------------
# ServingIndex: .dgs checkpoints, scrub-driven recovery
# ----------------------------------------------------------------------
class TestServingIntegration:
    def test_checkpoints_are_store_files_and_reopen(self, tmp_path, dataset):
        directory = str(tmp_path / "serve")
        index = ServingIndex.create(directory, dataset, fsync="batch")
        try:
            index.delete(3)
            name = index.checkpoint()
            assert name.endswith(".dgs")
            # fast verify passes on a live checkpoint
            read_toc(os.path.join(directory, name))
        finally:
            index.close(checkpoint=False)
        reopened = ServingIndex.open(directory, fsync="batch")
        try:
            result = reopened.query(LinearFunction([0.4, 0.3, 0.3]), 5)
            assert 3 not in result.ids
        finally:
            reopened.close(checkpoint=False)

    def test_scrub_detection_quarantines_and_rewrites(
        self, tmp_path, dataset
    ):
        directory = str(tmp_path / "serve")
        index = ServingIndex.create(
            directory, dataset, fsync="batch", scrub_interval=3600.0
        )
        try:
            scrubber = index._scrubber
            assert scrubber is not None
            checkpoint = scrubber.stats()["path"]
            assert checkpoint is not None and checkpoint.endswith(".dgs")
            spec = read_toc(checkpoint).spec("values")
            with open(checkpoint, "r+b") as handle:
                handle.seek(spec.offset)
                byte = handle.read(1)
                handle.seek(spec.offset)
                handle.write(bytes([byte[0] ^ 0x01]))
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedResultWarning)
                for _ in range(len(read_toc(checkpoint).section_names) + 1):
                    if scrubber.stats()["corruptions_detected"]:
                        break
                    scrubber.scrub_once()
            health = index.health()["store"]
            assert health["recoveries"] == 1
            quarantine = os.path.join(directory, "quarantine")
            assert os.listdir(quarantine)
            # The rewritten checkpoint is clean and re-armed for scrub.
            fresh = scrubber.stats()["path"]
            assert fresh is not None
            open_store(fresh, deep=True).close()
            # And the index still answers correctly.
            result = index.query(LinearFunction([0.4, 0.3, 0.3]), 5)
            assert len(result.ids) == 5
        finally:
            index.close(checkpoint=False)

    def test_health_reports_publish_and_checkpoint_costs(
        self, tmp_path, dataset
    ):
        directory = str(tmp_path / "serve")
        index = ServingIndex.create(directory, dataset, fsync="batch")
        try:
            index.delete(1)
            index.checkpoint()
            store = index.health()["store"]
            assert store["publish"]["count"] >= 1
            assert store["publish"]["total_ms"] >= 0.0
            assert store["checkpoint"]["count"] >= 1
            assert store["checkpoint"]["last_ms"] >= 0.0
        finally:
            index.close(checkpoint=False)
