"""Unit tests for the progressive (incremental) ranking operator."""

import itertools

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.functions import LinearFunction, MinFunction
from repro.core.progressive import iter_ranked, top_k_progressive
from repro.core.advanced import AdvancedTraveler
from repro.data.generators import all_skyline, uniform
from repro.metrics.counters import AccessCounter


class TestIterRanked:
    def test_full_ranking_matches_bruteforce(self):
        dataset = uniform(120, 3, seed=1)
        graph = build_dominant_graph(dataset)
        f = LinearFunction([0.5, 0.3, 0.2])
        ranking = list(iter_ranked(graph, f))
        assert len(ranking) == len(dataset)
        scores = [s for _, s in ranking]
        np.testing.assert_allclose(
            scores, sorted(f.score_many(dataset.values), reverse=True)
        )

    def test_scores_non_increasing_with_ties(self):
        from repro.data.server import server_dataset

        dataset = server_dataset(150, seed=2)
        graph = build_dominant_graph(dataset)
        f = LinearFunction([0.4, 0.3, 0.3])
        scores = [s for _, s in iter_ranked(graph, f)]
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_pseudo_records_never_yielded(self):
        dataset = all_skyline(80, 3, seed=3)
        graph = build_extended_graph(dataset, theta=8)
        f = LinearFunction([0.5, 0.3, 0.2])
        ids = [rid for rid, _ in iter_ranked(graph, f)]
        assert sorted(ids) == list(range(80))

    def test_lazy_prefix_cost(self):
        # Consuming a short prefix must not traverse the whole graph.
        dataset = uniform(400, 3, seed=4)
        graph = build_dominant_graph(dataset)
        f = LinearFunction([0.5, 0.3, 0.2])
        stats = AccessCounter()
        prefix = list(itertools.islice(iter_ranked(graph, f, stats), 5))
        assert len(prefix) == 5
        assert stats.computed < len(dataset) / 2

    def test_stats_optional(self):
        dataset = uniform(30, 2, seed=5)
        graph = build_dominant_graph(dataset)
        ranking = iter_ranked(graph, LinearFunction([0.5, 0.5]))
        assert next(ranking)[0] in range(30)

    def test_nonlinear_function(self):
        dataset = uniform(80, 3, seed=6)
        graph = build_dominant_graph(dataset)
        scores = [s for _, s in iter_ranked(graph, MinFunction())]
        np.testing.assert_allclose(
            scores,
            sorted(MinFunction().score_many(dataset.values), reverse=True),
        )


class TestTopKProgressive:
    def test_matches_traveler_answers(self):
        dataset = uniform(200, 3, seed=7)
        graph = build_extended_graph(dataset, theta=8)
        f = LinearFunction([0.5, 0.3, 0.2])
        progressive = top_k_progressive(graph, f, 15)
        traveler = AdvancedTraveler(graph).top_k(f, 15)
        assert progressive.score_multiset() == pytest.approx(
            traveler.score_multiset()
        )

    def test_search_space_at_least_travelers(self):
        # Without candidate-list truncation the progressive operator can
        # only score more records, never fewer.
        dataset = uniform(300, 3, seed=8)
        graph = build_extended_graph(dataset, theta=8)
        f = LinearFunction([0.5, 0.3, 0.2])
        progressive = top_k_progressive(graph, f, 10)
        traveler = AdvancedTraveler(graph).top_k(f, 10)
        assert progressive.stats.computed >= traveler.stats.computed

    def test_rejects_nonpositive_k(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        with pytest.raises(ValueError):
            top_k_progressive(graph, LinearFunction([0.5, 0.5]), 0)

    def test_k_larger_than_dataset(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        result = top_k_progressive(graph, LinearFunction([0.5, 0.5]), 99)
        assert len(result) == len(small_dataset)
