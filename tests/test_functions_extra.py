"""Extra scoring-function coverage: protocol conformance, compositions,
and monotonicity across the whole bundled family."""

import numpy as np
import pytest

from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_extended_graph
from repro.core.functions import (
    DecomposableFunction,
    LinearFunction,
    MinFunction,
    ProductFunction,
    ScoringFunction,
    WeightedPowerFunction,
    check_monotone,
)
from repro.data.generators import uniform
from tests.conftest import assert_correct_topk

BUNDLED = [
    LinearFunction([0.2, 0.5, 0.3]),
    ProductFunction([1.0, 0.5, 2.0]),
    MinFunction(),
    WeightedPowerFunction([0.4, 0.3, 0.3], p=3.0),
    DecomposableFunction.from_linear(LinearFunction([0.2, 0.5, 0.3]), [(0,), (1, 2)]),
]


@pytest.mark.parametrize("function", BUNDLED, ids=lambda f: type(f).__name__)
class TestBundledFamily:
    def test_satisfies_protocol(self, function):
        assert isinstance(function, ScoringFunction)

    def test_monotone(self, function):
        assert check_monotone(function, dims=3, low=0.05, high=1.0)

    def test_scalar_batch_consistency(self, function, rng):
        block = rng.uniform(0.05, 1.0, size=(25, 3))
        batch = function.score_many(block)
        for row, value in zip(block, batch):
            assert function(row) == pytest.approx(float(value), rel=1e-9)

    def test_dg_answers_match_bruteforce(self, function):
        dataset = uniform(150, 3, seed=61)
        # Scale into (0, 1] to satisfy the non-negative-domain functions.
        from repro.core.dataset import Dataset

        scaled = Dataset(dataset.values / 1000.0 + 1e-6)
        graph = build_extended_graph(scaled, theta=16)
        assert_correct_topk(
            AdvancedTraveler(graph).top_k(function, 10), scaled, function, 10
        )


class TestUserDefinedFunction:
    def test_custom_monotone_function_works_end_to_end(self):
        class HarmonicMean:
            """Monotone on positive data."""

            def __call__(self, vector):
                v = np.asarray(vector, dtype=np.float64)
                return float(len(v) / np.sum(1.0 / v))

            def score_many(self, block):
                b = np.asarray(block, dtype=np.float64)
                return b.shape[1] / np.sum(1.0 / b, axis=1)

        from repro.core.dataset import Dataset

        rng = np.random.default_rng(62)
        dataset = Dataset(rng.uniform(0.1, 1.0, size=(120, 3)))
        f = HarmonicMean()
        assert check_monotone(f, dims=3, low=0.1, high=1.0)
        graph = build_extended_graph(dataset, theta=16)
        assert_correct_topk(AdvancedTraveler(graph).top_k(f, 8), dataset, f, 8)

    def test_non_monotone_function_gives_wrong_answers(self):
        # Negative control: the DG *requires* monotonicity; a distance-to-
        # origin-minimizing function breaks the best-first invariant.
        class AntiSum:
            def __call__(self, vector):
                return -float(np.sum(vector))

            def score_many(self, block):
                return -np.sum(np.asarray(block, dtype=np.float64), axis=1)

        from repro.core.dataset import Dataset

        rng = np.random.default_rng(63)
        dataset = Dataset(rng.uniform(size=(100, 2)))
        f = AntiSum()
        assert not check_monotone(f, dims=2)
        graph = build_extended_graph(dataset, theta=16)
        # The broken contract surfaces either as an out-of-order result
        # (TopKResult refuses to construct) or as a wrong answer set —
        # document that *something* goes visibly wrong.
        try:
            result = AdvancedTraveler(graph).top_k(f, 5)
        except ValueError:
            return
        expected = sorted(f.score_many(dataset.values), reverse=True)[:5]
        assert not np.allclose(sorted(result.scores, reverse=True), expected)
