"""Base+delta overlay: bit-parity with full recompiles, builder rules.

The tentpole's correctness claim is narrow and absolute: a snapshot
published as ``base + DeltaOverlay`` answers every query bit-identically
to the snapshot a full recompile would have published.  The hypothesis
property test here states that over random interleaved
insert/delete/mark_deleted sequences; the example-based tests pin the
builder's visibility rules, the frozen-overlay discipline, the kernel's
``exclude`` contract, and the serving index's publish/compact/sidecar
behaviour around them.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.builder import build_dominant_graph
from repro.core.compiled import batch_top_k
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.maintenance import (
    OverlayBuilder,
    delete_record,
    insert_record,
    mark_deleted,
)
from repro.core.overlay import (
    DeltaOverlay,
    alive_record_ids,
    overlay_batch_top_k,
    overlay_top_k,
)
from repro.serve import ServingIndex
from repro.serve.index import DELTA_SIDECAR, snapshot_scan
from repro.store.deltastore import load_delta_store, save_delta_store


def _functions(dims: int, count: int = 4, seed: int = 7) -> list:
    rng = np.random.default_rng(seed)
    return [
        LinearFunction((w + 0.05).tolist())
        for w in rng.uniform(0.1, 1.0, (count, dims))
    ]


# ----------------------------------------------------------------------
# The property: base+overlay ≡ full recompile, bit for bit
# ----------------------------------------------------------------------
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(
        st.sampled_from(["insert", "delete", "mark"]),
        min_size=1,
        max_size=12,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_overlay_matches_full_recompile_bit_for_bit(ops, seed):
    """Random interleaved insert/delete/mark_deleted: the frozen overlay
    over the *old* base answers exactly like compiling the mutated graph
    from scratch, for every query and every k (including k > alive)."""
    rng = np.random.default_rng(seed)
    # Integer-ish grid so dominance ties and equal scores are common —
    # exactly where a sloppy merge would break the (-score, id) order.
    dataset = Dataset(rng.integers(0, 9, (24, 3)).astype(float))
    graph = build_dominant_graph(dataset, record_ids=range(12))
    base = graph.compile().detach()
    builder = OverlayBuilder(base)

    indexed = set(range(12))
    marked: set = set()
    pending = list(range(12, 24))
    for action in ops:
        if action == "insert" and pending:
            rid = pending.pop(0)
            insert_record(graph, rid)
            builder.insert(rid, graph.vector(rid))
            indexed.add(rid)
        elif action == "delete" and len(indexed) > 2:
            rid = sorted(indexed)[int(rng.integers(0, len(indexed)))]
            delete_record(graph, rid)
            builder.delete(rid)
            indexed.discard(rid)
            pending.append(rid)
        elif action == "mark" and len(indexed) > 2:
            rid = sorted(indexed)[int(rng.integers(0, len(indexed)))]
            mark_deleted(graph, rid)
            builder.mark_deleted(rid)
            indexed.discard(rid)
            marked.add(rid)  # marked records stay pseudo; never reused

    overlay = builder.freeze()
    recompiled = graph.compile().detach()
    functions = _functions(3, count=4, seed=seed % 97)
    for k in (1, 5, 50):
        want = batch_top_k(recompiled, functions, k)
        if overlay is None:
            got = batch_top_k(base, functions, k)
        else:
            got = overlay_batch_top_k(base, overlay, functions, k)
        for w, g in zip(want, got):
            assert g.ids == w.ids
            assert g.scores == w.scores
    if overlay is not None:
        alive = alive_record_ids(base, overlay).tolist()
        assert sorted(alive) == sorted(indexed)


def test_overlay_parity_holds_under_where_predicates():
    rng = np.random.default_rng(3)
    dataset = Dataset(rng.uniform(0.0, 10.0, (30, 3)).tolist())
    graph = build_dominant_graph(dataset, record_ids=range(20))
    base = graph.compile().detach()
    builder = OverlayBuilder(base)
    for rid in (20, 21, 22):
        insert_record(graph, rid)
        builder.insert(rid, graph.vector(rid))
    for rid in (3, 21):
        delete_record(graph, rid)
        builder.delete(rid)
    overlay = builder.freeze()
    recompiled = graph.compile().detach()

    def where(values: np.ndarray) -> bool:
        return float(values[0]) > 4.0

    functions = _functions(3)
    for k in (1, 4, 40):
        want = batch_top_k(recompiled, functions, k, where=where)
        got = overlay_batch_top_k(base, overlay, functions, k, where=where)
        for w, g in zip(want, got):
            assert g.ids == w.ids
            assert g.scores == w.scores


# ----------------------------------------------------------------------
# Builder visibility rules
# ----------------------------------------------------------------------
class TestOverlayBuilder:
    @pytest.fixture
    def base(self, rng):
        dataset = Dataset(rng.uniform(0.0, 8.0, (10, 2)).tolist())
        graph = build_dominant_graph(dataset)
        return graph.compile().detach()

    def test_freeze_is_none_until_something_changed(self, base):
        builder = OverlayBuilder(base)
        assert builder.freeze() is None
        assert builder.size == 0 and builder.age == 0.0

    def test_reinsert_of_a_base_record_supersedes_its_row(self, base):
        builder = OverlayBuilder(base)
        builder.delete(4)
        builder.insert(4, np.array([9.0, 9.0]))
        overlay = builder.freeze()
        assert overlay.delta_ids.tolist() == [4]
        # The base row stays masked: the delta entry is the answer.
        assert overlay.deleted_count == 1
        assert 4 in alive_record_ids(base, overlay).tolist()

    def test_delete_of_a_fresh_insert_cancels_it(self, base):
        builder = OverlayBuilder(base)
        builder.insert(77, np.array([1.0, 2.0]))
        builder.delete(77)
        assert builder.freeze() is None or 77 not in (
            builder.freeze().delta_ids.tolist()
        )

    def test_delete_of_an_unknown_record_raises(self, base):
        builder = OverlayBuilder(base)
        with pytest.raises(KeyError, match="neither"):
            builder.delete(999)

    def test_frozen_arrays_reject_mutation(self, base):
        builder = OverlayBuilder(base)
        builder.insert(50, np.array([3.0, 4.0]))
        builder.delete(2)
        overlay = builder.freeze()
        for array in (
            overlay.delta_ids,
            overlay.delta_values,
            overlay.deleted_rows,
        ):
            with pytest.raises((ValueError, RuntimeError)):
                array[0] = 0
        mask = overlay.deleted_mask(base.num_records)
        with pytest.raises((ValueError, RuntimeError)):
            mask[0] = True

    def test_freeze_snapshots_are_independent(self, base):
        """A published overlay must not see the builder's later changes."""
        builder = OverlayBuilder(base)
        builder.insert(50, np.array([3.0, 4.0]))
        first = builder.freeze()
        builder.insert(51, np.array([5.0, 6.0]))
        assert first.delta_ids.tolist() == [50]
        assert builder.freeze().delta_ids.tolist() == [50, 51]


# ----------------------------------------------------------------------
# Kernel exclude contract
# ----------------------------------------------------------------------
class TestKernelExclude:
    def test_exclude_mask_must_be_bool_and_full_width(self, rng):
        dataset = Dataset(rng.uniform(0.0, 8.0, (12, 2)).tolist())
        compiled = build_dominant_graph(dataset).compile().detach()
        functions = _functions(2, count=1)
        with pytest.raises(ValueError, match="exclude"):
            batch_top_k(
                compiled, functions, 3,
                exclude=np.zeros(compiled.num_records, dtype=np.int64),
            )
        with pytest.raises(ValueError, match="exclude"):
            batch_top_k(
                compiled, functions, 3,
                exclude=np.zeros(compiled.num_records + 1, dtype=bool),
            )

    def test_excluded_rows_never_surface_but_answers_stay_exact(self, rng):
        dataset = Dataset(rng.uniform(0.0, 8.0, (20, 2)).tolist())
        graph = build_dominant_graph(dataset)
        compiled = graph.compile().detach()
        function = _functions(2, count=1)[0]
        full = batch_top_k(compiled, [function], 20)[0]
        victim = full.ids[0]  # exclude the winner: hardest case
        dense = {
            int(r): i for i, r in enumerate(compiled.record_ids.tolist())
        }
        mask = np.zeros(compiled.num_records, dtype=bool)
        mask[dense[victim]] = True
        masked = batch_top_k(compiled, [function], 20, exclude=mask)[0]
        assert victim not in masked.ids
        assert masked.ids == tuple(i for i in full.ids if i != victim)


# ----------------------------------------------------------------------
# Serving index: O(changes) publish, compaction, sidecar
# ----------------------------------------------------------------------
@pytest.fixture
def serving_dir(tmp_path, rng):
    dataset = Dataset(rng.uniform(0.0, 100.0, (40, 3)).tolist())
    graph = build_dominant_graph(dataset, record_ids=range(30))
    return str(tmp_path / "overlay-serve"), graph, dataset


class TestServingOverlay:
    def test_delta_publish_reuses_the_base(self, serving_dir):
        directory, graph, _dataset = serving_dir
        with ServingIndex.create(directory, graph, fsync="never") as index:
            base = index.snapshot().compiled
            index.insert(30)
            index.delete(3)
            snap = index.snapshot()
            assert snap.compiled is base  # no recompile happened
            assert snap.overlay is not None
            assert snap.overlay.delta_count == 1
            assert snap.overlay.deleted_count == 1
            health = index.health()
            assert health["overlay"]["delta_publishes"] == 2
            assert health["overlay"]["compactions"]["count"] == 0
            assert health["records"] == 30  # 30 base + 1 delta - 1 deleted

    def test_queries_see_the_overlay_immediately(self, serving_dir):
        directory, graph, dataset = serving_dir
        with ServingIndex.create(directory, graph, fsync="never") as index:
            index.insert(35)
            index.delete(5)
            function = _functions(3, count=1)[0]
            got = index.query(function, k=31)
            assert 35 in got.ids and 5 not in got.ids
            batch = index.query_batch([function], 31)[0]
            assert batch.ids == got.ids and batch.scores == got.scores

    def test_compact_folds_under_the_same_epoch(self, serving_dir):
        directory, graph, _dataset = serving_dir
        with ServingIndex.create(directory, graph, fsync="never") as index:
            index.insert(31)
            index.mark_deleted(7)
            function = _functions(3, count=1)[0]
            before = index.query(function, k=30)
            epoch = index.epoch
            assert index.snapshot().overlay is not None
            assert index.compact() is True
            snap = index.snapshot()
            assert snap.overlay is None
            assert snap.epoch == epoch  # content-identical: no new epoch
            after = index.query(function, k=30)
            assert after.ids == before.ids
            assert after.scores == before.scores
            health = index.health()
            assert health["overlay"]["compactions"]["count"] == 1
            assert health["overlay"]["base_generation"] == 1
            assert index.compact() is False  # nothing left to fold

    def test_overlay_overflow_forces_a_fold(self, serving_dir):
        directory, graph, _dataset = serving_dir
        index = ServingIndex.create(
            directory, graph, fsync="never", overlay_limit=2
        )
        try:
            for rid in (30, 31, 32):
                index.insert(rid)
            health = index.health()
            # The third insert overflowed the cap: recompile, fresh base.
            assert health["overlay"]["compactions"]["forced"] == 1
            snap = index.snapshot()
            assert snap.overlay is None
            assert {30, 31, 32} <= set(snap.alive_ids().tolist())
        finally:
            index.close(checkpoint=False)

    def test_overlay_disabled_publishes_bases_only(self, serving_dir):
        directory, graph, _dataset = serving_dir
        index = ServingIndex.create(
            directory, graph, fsync="never", overlay_limit=0
        )
        try:
            index.insert(30)
            snap = index.snapshot()
            assert snap.overlay is None
            assert 30 in snap.alive_ids().tolist()
            assert index.health()["overlay"]["enabled"] is False
        finally:
            index.close(checkpoint=False)

    def test_background_compactor_folds_when_writes_go_quiet(
        self, serving_dir
    ):
        import time

        directory, graph, _dataset = serving_dir
        index = ServingIndex.create(
            directory,
            graph,
            fsync="never",
            compact_interval=0.01,
            compact_age=0.02,
        )
        try:
            index.insert(33)
            assert index.snapshot().overlay is not None
            deadline = time.monotonic() + 5.0
            while (
                index.snapshot().overlay is not None
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert index.snapshot().overlay is None, (
                "background compactor never folded the overlay"
            )
            stats = index.health()["overlay"]["compactor"]
            assert stats is not None and stats["compactions"] >= 1
        finally:
            index.close(checkpoint=False)

    def test_delta_sidecar_tracks_publish_and_compaction(self, serving_dir):
        directory, graph, _dataset = serving_dir
        with ServingIndex.create(directory, graph, fsync="never") as index:
            sidecar = os.path.join(directory, DELTA_SIDECAR)
            assert not os.path.exists(sidecar)
            index.insert(34)
            assert os.path.exists(sidecar)
            overlay, stamp = load_delta_store(sidecar)
            assert overlay.delta_ids.tolist() == [34]
            assert stamp.kind == "delta"
            assert stamp.applied_seq == 1
            index.compact()
            assert not os.path.exists(sidecar)

    def test_scan_tier_matches_overlay_merge(self, serving_dir):
        directory, graph, _dataset = serving_dir
        with ServingIndex.create(directory, graph, fsync="never") as index:
            index.insert(36)
            index.delete(11)
            snap = index.snapshot()
            function = _functions(3, count=1)[0]
            merged = overlay_top_k(snap.compiled, snap.overlay, function, 30)
            scanned = snapshot_scan(
                snap.compiled, function, 30, overlay=snap.overlay
            )
            assert scanned.ids == merged.ids
            assert scanned.scores == merged.scores


# ----------------------------------------------------------------------
# Sidecar store round-trip
# ----------------------------------------------------------------------
def test_delta_store_round_trip(tmp_path):
    overlay = DeltaOverlay(
        delta_ids=np.array([3, 9], dtype=np.int64),
        delta_values=np.array([[1.0, 2.0], [3.0, 4.0]]),
        deleted_rows=np.array([1], dtype=np.int64),
    )
    path = save_delta_store(
        overlay,
        str(tmp_path / "delta-current.dgs"),
        base_generation=4,
        applied_seq=17,
    )
    loaded, stamp = load_delta_store(path)
    assert loaded.delta_ids.tolist() == [3, 9]
    assert loaded.delta_values.tolist() == [[1.0, 2.0], [3.0, 4.0]]
    assert loaded.deleted_rows.tolist() == [1]
    assert (stamp.kind, stamp.generation, stamp.applied_seq) == (
        "delta", 4, 17,
    )


def test_torn_delta_sidecar_raises_typed_corruption(tmp_path):
    from repro.errors import StoreCorruptionError

    overlay = DeltaOverlay(
        delta_ids=np.array([1], dtype=np.int64),
        delta_values=np.array([[5.0, 6.0]]),
        deleted_rows=np.array([], dtype=np.int64),
    )
    path = save_delta_store(overlay, str(tmp_path / "torn.dgs"))
    size = os.path.getsize(path)
    with open(path, "rb+") as handle:
        handle.truncate(size // 2)
    with pytest.raises(StoreCorruptionError):
        load_delta_store(path)


def test_overlay_application_failure_degrades_to_recompile(
    serving_dir, monkeypatch
):
    """A builder that cannot express an op must cost a recompile, never
    an answer: the op still publishes, overlay accounting records the
    fallback, and the next base carries a fresh builder."""
    directory, graph, _dataset = serving_dir
    with ServingIndex.create(directory, graph, fsync="never") as index:
        def broken(_rid, _vector):
            raise RuntimeError("synthetic overlay fault")

        monkeypatch.setattr(index._overlay_builder, "insert", broken)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            index.insert(37)
        assert any("recompile" in str(w.message) for w in caught)
        snap = index.snapshot()
        assert snap.overlay is None
        assert 37 in snap.alive_ids().tolist()
        health = index.health()
        assert health["overlay"]["fallbacks"] == 1
        # The writer healed: the next mutation rides the overlay again.
        index.insert(38)
        assert index.snapshot().overlay is not None
