"""Unit tests for the skyline algorithm suite.

All seven algorithms must return exactly the maximal set of any block;
each also has algorithm-specific tests for its own machinery.
"""

import numpy as np
import pytest

from repro.core.dominance import dominates, maximal_mask
from repro.data.generators import all_skyline, anticorrelated, correlated, uniform
from repro.data.server import server_dataset
from repro.skyline import ALGORITHMS, as_mask_function
from repro.skyline.bnl import bnl_skyline
from repro.skyline.dnc import dnc_skyline
from repro.skyline.nn import nn_skyline
from repro.skyline.bbs import bbs_skyline
from repro.spatial.rtree import RTree


def brute_skyline(values):
    return sorted(
        i
        for i in range(len(values))
        if not any(dominates(values[j], values[i]) for j in range(len(values)) if j != i)
    )


WORKLOADS = [
    ("uniform-2d", lambda: uniform(120, 2, seed=1).values),
    ("uniform-3d", lambda: uniform(120, 3, seed=2).values),
    ("correlated", lambda: correlated(120, 3, seed=3).values),
    ("anticorrelated", lambda: anticorrelated(80, 3, seed=4).values),
    ("ties", lambda: server_dataset(100, seed=5).values),
    ("antichain", lambda: all_skyline(60, 3, seed=6).values),
]


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
@pytest.mark.parametrize("workload,make", WORKLOADS)
def test_matches_bruteforce(name, workload, make):
    if name == "nn" and workload == "anticorrelated":
        pytest.skip("NN's region recursion is exponential on wide skylines")
    values = make()
    got = sorted(int(i) for i in ALGORITHMS[name](values))
    assert got == brute_skyline(values), f"{name} wrong on {workload}"


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_single_row(name):
    values = np.array([[1.0, 2.0]])
    assert list(ALGORITHMS[name](values)) == [0]


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_all_duplicates(name):
    values = np.ones((6, 2))
    assert sorted(int(i) for i in ALGORITHMS[name](values)) == list(range(6))


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_total_order(name):
    values = np.array([[float(i)] * 3 for i in range(8)])
    assert list(ALGORITHMS[name](values)) == [7]


def test_as_mask_function(rng):
    values = rng.uniform(size=(50, 2))
    mask = as_mask_function(ALGORITHMS["sfs"])(values)
    np.testing.assert_array_equal(mask, maximal_mask(values))


class TestBNLSpecifics:
    def test_small_window_forces_multiple_passes(self, rng):
        values = anticorrelated(80, 2, seed=7).values  # wide skyline
        got = sorted(int(i) for i in bnl_skyline(values, window_size=4))
        assert got == brute_skyline(values)

    def test_window_of_one(self, rng):
        values = rng.uniform(size=(40, 2))
        got = sorted(int(i) for i in bnl_skyline(values, window_size=1))
        assert got == brute_skyline(values)

    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            bnl_skyline(np.ones((2, 2)), window_size=0)


class TestDnCSpecifics:
    def test_small_cutoff_forces_recursion(self, rng):
        values = rng.uniform(size=(100, 3))
        got = sorted(int(i) for i in dnc_skyline(values, cutoff=4))
        assert got == brute_skyline(values)

    def test_degenerate_first_dimension(self):
        # All rows share x1: the split is degenerate and falls back.
        values = np.column_stack([
            np.ones(30),
            np.linspace(0, 1, 30),
            np.linspace(1, 0, 30),
        ])
        got = sorted(int(i) for i in dnc_skyline(values, cutoff=4))
        assert got == brute_skyline(values)


class TestRTreeBacked:
    def test_nn_accepts_prebuilt_tree(self, rng):
        values = rng.uniform(size=(60, 2))
        tree = RTree.bulk_load(values)
        got = sorted(int(i) for i in nn_skyline(values, rtree=tree))
        assert got == brute_skyline(values)

    def test_bbs_accepts_prebuilt_tree(self, rng):
        values = rng.uniform(size=(80, 3))
        tree = RTree.bulk_load(values)
        got = sorted(int(i) for i in bbs_skyline(values, rtree=tree))
        assert got == brute_skyline(values)

    def test_bbs_with_inserted_tree(self, rng):
        values = rng.uniform(size=(70, 2))
        tree = RTree(dims=2, max_entries=5)
        for i, p in enumerate(values):
            tree.insert(i, p)
        got = sorted(int(i) for i in bbs_skyline(values, rtree=tree))
        assert got == brute_skyline(values)

    def test_empty_input(self):
        assert nn_skyline(np.empty((0, 2))).size == 0
        assert bbs_skyline(np.empty((0, 2))).size == 0


class TestLayerPeeling:
    """Any skyline algorithm must be usable for DG layer construction."""

    @pytest.mark.parametrize("name", ["bnl", "dnc", "bitmap", "index", "bbs"])
    def test_layers_agree_with_default(self, name):
        from repro.core.layers import compute_layers

        values = uniform(90, 3, seed=8).values
        default = compute_layers(values)
        custom = compute_layers(values, skyline=as_mask_function(ALGORITHMS[name]))
        assert [set(a.tolist()) for a in default] == [
            set(b.tolist()) for b in custom
        ]
