"""Adversarial maintenance: random op interleavings vs a fresh rebuild.

The maintenance algorithms (Section V) must leave the index answering
exactly like a from-scratch build over the surviving records — through
any interleaving of inserts, deletes, and mark-as-deleted, across
save/load round-trips, and while a query is mid-degradation.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import naive_top_k_subset
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_dominant_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.guard import run_query
from repro.core.io import load_graph, save_graph
from repro.core.maintenance import delete_record, insert_record, mark_deleted
from repro.errors import DegradedResultWarning
from repro.testing.faults import FlakyFunction

F = LinearFunction([0.7, 0.3])
K = 6


def oracle_multiset(dataset, alive, k=K):
    """Tie-insensitive answer signature from a plain scan of ``alive``."""
    return naive_top_k_subset(dataset, sorted(alive), F, k).score_multiset()


def run_interleaving(seed: int, round_trip: bool, tmp_path) -> None:
    """Random insert/delete/mark-deleted schedule, checked continuously."""
    rng = np.random.default_rng(seed)
    dataset = Dataset(rng.random((48, 2)))
    start = list(range(24))
    graph = build_dominant_graph(dataset, record_ids=start)
    alive = set(start)
    pending = list(range(24, 48))

    for step in range(40):
        choice = rng.random()
        if choice < 0.4 and pending:
            rid = pending.pop()
            insert_record(graph, rid)
            alive.add(rid)
        elif choice < 0.7 and alive:
            rid = int(rng.choice(sorted(alive)))
            delete_record(graph, rid)
            alive.discard(rid)
        elif alive:
            rid = int(rng.choice(sorted(alive)))
            mark_deleted(graph, rid)
            alive.discard(rid)
        if not alive:
            continue
        if round_trip and step % 13 == 5:
            path = save_graph(graph, str(tmp_path / f"step{step}"))
            graph = load_graph(path, validate=True)
        got = AdvancedTraveler(graph).top_k(F, K).score_multiset()
        assert got == pytest.approx(oracle_multiset(dataset, alive)), (
            f"seed={seed} step={step}: maintained graph disagrees with scan"
        )

    graph.validate()
    if alive:
        rebuilt = build_dominant_graph(dataset, record_ids=sorted(alive))
        assert AdvancedTraveler(graph).top_k(F, K).score_multiset() == pytest.approx(
            AdvancedTraveler(rebuilt).top_k(F, K).score_multiset()
        )


@pytest.mark.parametrize("seed", range(5))
def test_random_interleavings_match_rebuild(seed, tmp_path):
    run_interleaving(seed, round_trip=False, tmp_path=tmp_path)


@pytest.mark.parametrize("seed", range(5, 8))
def test_interleavings_survive_disk_round_trips(seed, tmp_path):
    run_interleaving(seed, round_trip=True, tmp_path=tmp_path)


def test_delete_mid_degradation(tmp_path):
    """A stale snapshot plus a flaky engine still yields correct answers."""
    rng = np.random.default_rng(99)
    dataset = Dataset(rng.random((40, 2)))
    graph = build_dominant_graph(dataset)
    snapshot = graph.compile()

    victim = run_query(graph, F, 1).ids[0]
    delete_record(graph, victim)
    alive = set(graph.real_ids())
    assert snapshot.stale

    flaky = FlakyFunction(F, times=1)
    with pytest.warns(DegradedResultWarning):
        result = run_query(graph, flaky, K, snapshot=snapshot)
    assert result.tier == "reference"
    assert victim not in result.ids
    assert result.score_multiset() == pytest.approx(oracle_multiset(dataset, alive))


class TestWALReplayEquivalence:
    """Property: checkpoint + WAL replay == sequential maintenance == rebuild.

    Hypothesis drives a random feasible schedule of single and batch
    operations through a live :class:`~repro.serve.index.ServingIndex`
    (with a checkpoint dropped at an arbitrary point, so replay starts
    from a mid-schedule state) while the same schedule runs sequentially
    on a shadow graph.  Crash-recovering the serving directory must then
    answer bit-identically to both the shadow and a from-scratch rebuild
    over the survivors — the triangle the crash-recovery acceptance test
    checks at scripted offsets, here over arbitrary schedules.
    """

    KINDS = ("insert", "delete", "mark", "insert_many", "delete_many")

    @staticmethod
    def _apply_feasible(kind, pick, index, shadow, alive, pending):
        """Mirror one op onto the serving index and the shadow graph.

        Returns False when the drawn op is infeasible in the current
        state (nothing pending to insert, nothing alive to delete).
        """
        if kind == "insert":
            if not pending:
                return False
            rid = pending.pop(pick % len(pending))
            index.insert(rid)
            insert_record(shadow, rid)
            alive.add(rid)
        elif kind == "insert_many":
            if len(pending) < 2:
                return False
            batch = [pending.pop(pick % len(pending)), pending.pop(0)]
            index.insert_many(batch)
            for rid in batch:
                insert_record(shadow, rid)
            alive.update(batch)
        elif kind == "delete":
            if not alive:
                return False
            rid = sorted(alive)[pick % len(alive)]
            index.delete(rid)
            delete_record(shadow, rid)
            alive.discard(rid)
        elif kind == "delete_many":
            if len(alive) < 4:
                return False
            ordered = sorted(alive)
            batch = [ordered[pick % len(ordered)], ordered[0]]
            if len(set(batch)) < 2:
                return False
            index.delete_many(batch)
            for rid in batch:
                delete_record(shadow, rid)
            alive.difference_update(batch)
        else:  # mark
            if len(alive) < 2:
                return False
            rid = sorted(alive)[pick % len(alive)]
            index.mark_deleted(rid)
            mark_deleted(shadow, rid)
            alive.discard(rid)
        return True

    @settings(max_examples=12, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(KINDS), st.integers(0, 10_000)
            ),
            min_size=1,
            max_size=18,
        ),
        checkpoint_after=st.integers(0, 18),
    )
    def test_recovered_index_closes_the_triangle(self, ops, checkpoint_after):
        from repro.core.compiled import CompiledAdvancedTraveler
        from repro.serve import ServingIndex

        rng = np.random.default_rng(7)
        dataset = Dataset(rng.random((48, 2)))
        start = list(range(24))
        shadow = build_dominant_graph(dataset, record_ids=start)
        alive = set(start)
        pending = list(range(24, 48))

        with tempfile.TemporaryDirectory() as tmp:
            index = ServingIndex.create(
                os.path.join(tmp, "serve"),
                build_dominant_graph(dataset, record_ids=start),
                fsync="never",
                checkpoint_interval=None,
            )
            try:
                for step, (kind, pick) in enumerate(ops):
                    self._apply_feasible(
                        kind, pick, index, shadow, alive, pending
                    )
                    if step + 1 == checkpoint_after:
                        index.checkpoint()
                index._wal.sync()

                # Crash-recover (the live index stays un-closed).
                recovered = ServingIndex.open(
                    index._directory, fsync="never"
                )
                try:
                    rebuilt = build_dominant_graph(
                        dataset, record_ids=sorted(alive)
                    )
                    sequential = CompiledAdvancedTraveler(shadow.compile())
                    scratch = CompiledAdvancedTraveler(rebuilt.compile())
                    for k in (1, K):
                        got = recovered.query(F, k)
                        assert got.ids == sequential.top_k(F, k).ids
                        assert got.scores == sequential.top_k(F, k).scores
                        assert got.ids == scratch.top_k(F, k).ids
                        assert got.scores == scratch.top_k(F, k).scores
                finally:
                    recovered.close(checkpoint=False)
            finally:
                index.close(checkpoint=False)


def test_maintenance_on_disk_restored_graph(tmp_path):
    """Mutations applied to a reloaded graph behave like on the original."""
    rng = np.random.default_rng(123)
    dataset = Dataset(rng.random((30, 2)))
    graph = build_dominant_graph(dataset, record_ids=list(range(20)))
    path = save_graph(graph, str(tmp_path / "restored"))
    restored = load_graph(path, validate=True)

    insert_record(restored, 25)
    top = AdvancedTraveler(restored).top_k(F, 1).ids[0]
    mark_deleted(restored, top)
    delete_record(restored, next(iter(restored.real_ids())))
    restored.validate()

    alive = set(restored.real_ids())
    assert 25 in alive and top not in alive
    got = AdvancedTraveler(restored).top_k(F, K).score_multiset()
    assert got == pytest.approx(oracle_multiset(dataset, alive))
