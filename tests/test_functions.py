"""Unit tests for repro.core.functions (Definition 2.1)."""

import numpy as np
import pytest

from repro.core.functions import (
    DecomposableFunction,
    LinearFunction,
    MinFunction,
    ProductFunction,
    WeightedPowerFunction,
    check_monotone,
)


class TestLinearFunction:
    def test_scalar_evaluation(self):
        f = LinearFunction([0.6, 0.4])
        assert f(np.array([10.0, 5.0])) == pytest.approx(8.0)

    def test_score_many_matches_scalar(self, rng):
        f = LinearFunction([0.2, 0.3, 0.5])
        block = rng.uniform(size=(20, 3))
        batch = f.score_many(block)
        for row, score in zip(block, batch):
            assert f(row) == pytest.approx(score)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="non-negative"):
            LinearFunction([0.5, -0.5])

    def test_rejects_empty_weights(self):
        with pytest.raises(ValueError):
            LinearFunction([])

    def test_weights_read_only(self):
        f = LinearFunction([1.0, 2.0])
        with pytest.raises(ValueError):
            f.weights[0] = 3.0

    def test_restrict(self):
        f = LinearFunction([1.0, 2.0, 3.0])
        g = f.restrict([0, 2])
        assert g(np.array([1.0, 1.0])) == pytest.approx(4.0)

    def test_dims(self):
        assert LinearFunction([1.0, 2.0, 3.0]).dims == 3

    def test_is_monotone(self):
        assert check_monotone(LinearFunction([0.3, 0.7]), dims=2)

    def test_zero_weights_allowed(self):
        f = LinearFunction([0.0, 1.0])
        assert f(np.array([100.0, 2.0])) == pytest.approx(2.0)


class TestProductFunction:
    def test_scalar_evaluation(self):
        f = ProductFunction([1.0, 1.0])
        assert f(np.array([3.0, 4.0])) == pytest.approx(12.0)

    def test_weighted_exponents(self):
        f = ProductFunction([2.0, 0.5])
        assert f(np.array([3.0, 16.0])) == pytest.approx(36.0)

    def test_rejects_negative_input(self):
        f = ProductFunction([1.0, 1.0])
        with pytest.raises(ValueError):
            f(np.array([-1.0, 2.0]))

    def test_score_many(self):
        f = ProductFunction([1.0, 1.0])
        np.testing.assert_allclose(
            f.score_many(np.array([[2.0, 3.0], [1.0, 5.0]])), [6.0, 5.0]
        )

    def test_is_monotone(self):
        assert check_monotone(ProductFunction([0.5, 1.5]), dims=2, low=0.1, high=2.0)


class TestMinFunction:
    def test_scalar(self):
        assert MinFunction()(np.array([3.0, 1.0, 2.0])) == 1.0

    def test_score_many(self):
        np.testing.assert_allclose(
            MinFunction().score_many(np.array([[3.0, 1.0], [0.5, 2.0]])),
            [1.0, 0.5],
        )

    def test_is_monotone(self):
        assert check_monotone(MinFunction(), dims=4)


class TestWeightedPowerFunction:
    def test_p1_equals_linear(self, rng):
        weights = [0.2, 0.8]
        power = WeightedPowerFunction(weights, p=1.0)
        linear = LinearFunction(weights)
        v = rng.uniform(size=2)
        assert power(v) == pytest.approx(linear(v))

    def test_rejects_nonpositive_p(self):
        with pytest.raises(ValueError):
            WeightedPowerFunction([1.0], p=0.0)

    def test_score_many_matches_scalar(self, rng):
        f = WeightedPowerFunction([0.5, 0.5], p=3.0)
        block = rng.uniform(size=(10, 2))
        for row, score in zip(block, f.score_many(block)):
            assert f(row) == pytest.approx(score)

    def test_is_monotone(self):
        assert check_monotone(WeightedPowerFunction([0.4, 0.6], p=2.0), dims=2)


class TestDecomposableFunction:
    def test_from_linear_matches_original(self, rng):
        f = LinearFunction([0.1, 0.2, 0.3, 0.4])
        d = DecomposableFunction.from_linear(f, [(0, 1), (2, 3)])
        v = rng.uniform(size=4)
        assert d(v) == pytest.approx(f(v))

    def test_sub_score(self):
        f = LinearFunction([1.0, 2.0, 3.0, 4.0])
        d = DecomposableFunction.from_linear(f, [(0, 1), (2, 3)])
        v = np.array([1.0, 1.0, 1.0, 1.0])
        assert d.sub_score(0, v) == pytest.approx(3.0)
        assert d.sub_score(1, v) == pytest.approx(7.0)

    def test_combine_is_sum_by_default(self):
        f = LinearFunction([1.0, 1.0])
        d = DecomposableFunction.from_linear(f, [(0,), (1,)])
        assert d.combine([2.0, 3.0]) == pytest.approx(5.0)

    def test_rejects_overlapping_sets(self):
        f = LinearFunction([1.0, 1.0])
        with pytest.raises(ValueError, match="disjoint"):
            DecomposableFunction.from_linear(f, [(0, 1), (1,)])

    def test_rejects_mismatched_counts(self):
        with pytest.raises(ValueError):
            DecomposableFunction([(0,)], [])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DecomposableFunction([], [])

    def test_score_many_matches_scalar(self, rng):
        f = LinearFunction([0.3, 0.3, 0.4])
        d = DecomposableFunction.from_linear(f, [(0,), (1, 2)])
        block = rng.uniform(size=(8, 3))
        np.testing.assert_allclose(d.score_many(block), f.score_many(block))

    def test_custom_combiner(self):
        d = DecomposableFunction(
            [(0,), (1,)],
            [LinearFunction([1.0]), LinearFunction([1.0])],
            combiner=lambda parts: float(np.min(parts)),
        )
        assert d(np.array([4.0, 2.0])) == pytest.approx(2.0)

    def test_n_ways(self):
        f = LinearFunction([1.0] * 6)
        d = DecomposableFunction.from_linear(f, [(0, 1), (2, 3), (4, 5)])
        assert d.n_ways == 3


class TestCheckMonotone:
    def test_detects_non_monotone(self):
        class Bad:
            def __call__(self, v):
                return -float(np.sum(v))

            def score_many(self, block):
                return -np.sum(block, axis=1)

        assert not check_monotone(Bad(), dims=2)
