"""Chaos suite: every injected fault is repaired, degraded, or typed.

The resilience contract under test, for each fault family:

- **storage faults** (bit flips, truncation, forged versions, tampered
  arrays) must surface as :class:`IndexCorruptionError` — or load
  cleanly with bit-identical answers when the damage was harmless;
- **engine faults** (scoring functions that throw mid-traversal) must
  degrade to a simpler serving tier with identical answers and a
  :class:`DegradedResultWarning`;
- **budget violations** must raise :class:`QueryBudgetExceeded`, never
  return a truncated answer;
- **dirty data** (NaN/inf rows and weights) must be rejected or
  quarantined before it can perturb a top-k answer.

Never, under any fault, a silent wrong answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_extended_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction, WeightedPowerFunction
from repro.core.guard import run_query
from repro.core.io import load_graph, repair_graph, save_graph
from repro.core.maintenance import mark_deleted
from repro.errors import (
    DegradedResultWarning,
    IndexCorruptionError,
    QueryBudgetExceeded,
)
from repro.testing.faults import (
    FlakyFunction,
    flip_bits,
    set_format_version,
    tamper_array,
    truncate_file,
)

F = LinearFunction([0.6, 0.4])
K = 5


@pytest.fixture
def graph():
    rng = np.random.default_rng(42)
    return build_extended_graph(Dataset(rng.random((60, 2))))


@pytest.fixture
def saved(graph, tmp_path):
    return save_graph(graph, str(tmp_path / "index"))


def answers(graph, function=F, k=K):
    return AdvancedTraveler(graph).top_k(function, k).score_multiset()


class TestStorageFaults:
    """Damaged archives: detected and attributed, or provably harmless."""

    @pytest.mark.parametrize("seed", range(8))
    def test_bitflips_never_silently_change_answers(self, graph, saved, seed):
        oracle = answers(graph)
        flip_bits(saved, n=3, seed=seed)
        try:
            reloaded = load_graph(saved)
        except IndexCorruptionError:
            return  # detected: contract satisfied
        assert answers(reloaded) == pytest.approx(oracle)

    @pytest.mark.parametrize("fraction", [0.0, 0.3, 0.9])
    def test_truncation_is_detected(self, saved, fraction):
        truncate_file(saved, fraction=fraction)
        with pytest.raises(IndexCorruptionError):
            load_graph(saved)

    def test_unknown_format_version_is_refused(self, saved):
        set_format_version(saved, 99)
        with pytest.raises(IndexCorruptionError, match="version"):
            load_graph(saved)

    def test_tamper_without_resigning_trips_checksum(self, saved):
        tamper_array(saved, "layer_of", lambda a: a + 1)
        with pytest.raises(IndexCorruptionError, match="checksum"):
            load_graph(saved)

    def test_resigned_tamper_trips_structural_validation(self, saved):
        tamper_array(saved, "layer_of", lambda a: a + 1, fix_manifest=True)
        with pytest.raises(IndexCorruptionError):
            load_graph(saved)

    def test_nan_values_in_archive_are_refused(self, saved):
        def poison(values):
            values = values.copy()
            values[0, 0] = np.nan
            return values

        tamper_array(saved, "values", poison, fix_manifest=True)
        with pytest.raises(IndexCorruptionError, match="finite"):
            load_graph(saved)

    def test_duplicate_edges_are_refused(self, saved):
        tamper_array(
            saved, "edges", lambda e: np.vstack([e, e[:1]]), fix_manifest=True
        )
        with pytest.raises(IndexCorruptionError, match="duplicate"):
            load_graph(saved)


class TestRepair:
    """Corruption + repair: the rebuilt index answers like the original."""

    def test_repair_restores_answers(self, graph, saved):
        oracle = answers(graph)
        tamper_array(saved, "edges", lambda e: e[::-1])
        with pytest.raises(IndexCorruptionError):
            load_graph(saved)
        repaired, notes = repair_graph(saved)
        assert answers(repaired) == pytest.approx(oracle)
        assert any("re-indexed" in note for note in notes)

    def test_load_with_repair_flag_warns_and_answers(self, graph, saved):
        oracle = answers(graph)
        tamper_array(saved, "edges", lambda e: e[::-1])
        with pytest.warns(DegradedResultWarning):
            repaired = load_graph(saved, repair=True)
        assert answers(repaired) == pytest.approx(oracle)

    def test_repair_never_resurrects_mark_deleted(self, graph, tmp_path):
        victim = AdvancedTraveler(graph).top_k(F, 1).ids[0]
        mark_deleted(graph, victim)
        oracle = answers(graph)
        path = save_graph(graph, str(tmp_path / "deleted"))
        tamper_array(path, "edges", lambda e: e[::-1])
        repaired, _notes = repair_graph(path)
        assert victim not in AdvancedTraveler(repaired).top_k(F, K).ids
        assert answers(repaired) == pytest.approx(oracle)

    def test_lost_values_is_unrepairable(self, saved):
        tamper_array(saved, "values", np.asarray([1.0]))
        with pytest.raises(IndexCorruptionError, match="unrepairable"):
            repair_graph(saved)


class TestEngineFaults:
    """Flaky engines: degrade with a warning, same answers, right tier."""

    def test_compiled_fault_degrades_to_reference(self, graph):
        oracle = answers(graph)
        flaky = FlakyFunction(F, times=1)
        with pytest.warns(DegradedResultWarning, match="compiled"):
            result = run_query(graph, flaky, K, engine="auto")
        assert result.tier == "reference"
        assert result.score_multiset() == pytest.approx(oracle)

    def test_mid_traversal_fault_degrades(self, graph):
        oracle = answers(graph)
        flaky = FlakyFunction(F, times=1, after=3)
        with pytest.warns(DegradedResultWarning):
            result = run_query(graph, flaky, K, engine="reference")
        assert result.tier == "naive"
        assert result.score_multiset() == pytest.approx(oracle)

    def test_double_fault_lands_on_naive(self, graph):
        oracle = answers(graph)
        flaky = FlakyFunction(F, times=2)
        with pytest.warns(DegradedResultWarning):
            result = run_query(graph, flaky, K, engine="auto")
        assert result.tier == "naive"
        assert result.score_multiset() == pytest.approx(oracle)

    def test_no_fallback_propagates_the_fault(self, graph):
        flaky = FlakyFunction(F, times=1)
        with pytest.raises(RuntimeError, match="injected"):
            run_query(graph, flaky, K, engine="auto", fallback=False)

    def test_fault_in_every_tier_propagates(self, graph):
        flaky = FlakyFunction(F, times=10)
        with pytest.raises(RuntimeError, match="injected"):
            with pytest.warns(DegradedResultWarning):
                run_query(graph, flaky, K, engine="auto")


class TestBudgets:
    """Budget violations are typed errors, never truncated answers."""

    def test_record_budget_raises_not_truncates(self, graph):
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            run_query(graph, F, K, budget_records=3)
        assert excinfo.value.kind == "records"
        assert excinfo.value.spent > excinfo.value.limit

    def test_time_budget_raises(self, graph):
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            run_query(graph, F, K, budget_ms=0.0)
        assert excinfo.value.kind == "time"

    def test_generous_budget_changes_nothing(self, graph):
        free = run_query(graph, F, K)
        budgeted = run_query(graph, F, K, budget_records=10_000, budget_ms=60_000)
        assert budgeted.ids == free.ids
        assert budgeted.scores == free.scores
        assert budgeted.tier == free.tier == "compiled"


class TestDirtyData:
    """NaN/inf can never slip into an index or perturb an answer."""

    def test_dataset_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            Dataset([[1.0, np.nan]])

    def test_dataset_clean_quarantines_and_preserves_answers(self):
        rng = np.random.default_rng(3)
        good = rng.random((30, 2))
        dirty = np.vstack([good, [[np.inf, 1.0], [np.nan, np.nan]]])
        dataset, quarantined = Dataset.clean(dirty)
        assert quarantined == [30, 31]
        graph = build_extended_graph(dataset)
        oracle = answers(build_extended_graph(Dataset(good)))
        assert answers(graph) == pytest.approx(oracle)

    def test_clean_with_no_finite_rows_raises(self):
        with pytest.raises(ValueError, match="quarantine"):
            Dataset.clean([[np.nan, np.nan]])

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_functions_reject_nonfinite_weights(self, bad):
        with pytest.raises(ValueError, match="finite"):
            LinearFunction([0.5, bad])
        with pytest.raises(ValueError, match="finite"):
            WeightedPowerFunction([0.5, bad])

    def test_pseudo_vectors_reject_nonfinite(self, graph):
        with pytest.raises(ValueError, match="finite"):
            graph.add_pseudo_record(np.array([np.nan, 1.0]))
