"""Integration tests: every algorithm against every workload, end to end.

The agreement matrix is the repository's strongest correctness statement:
nine top-k implementations with completely different machinery (graph
traversal, sorted lists, hull layers, min-rank layers, views, LP bounds,
grid blocks, full scan) must produce identical score multisets on every
workload family the paper evaluates.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import (
    AppRIIndex,
    CombinedAlgorithm,
    LPTAIndex,
    NoRandomAccess,
    OnionIndex,
    PreferIndex,
    RankCubeIndex,
    ThresholdAlgorithm,
    naive_top_k,
)
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.functions import LinearFunction
from repro.core.nway import NWayTraveler
from repro.core.traveler import BasicTraveler
from repro.data.generators import all_skyline, correlated, gaussian, uniform
from repro.data.server import server_dataset

WORKLOADS = {
    "U3": lambda: uniform(250, 3, seed=101),
    "G3": lambda: gaussian(250, 3, seed=102),
    "R3": lambda: correlated(250, 3, seed=103),
    "server": lambda: server_dataset(250, seed=104),
    "worst": lambda: all_skyline(150, 3, seed=105),
}


def all_algorithms(dataset):
    yield "basic-dg", BasicTraveler(build_dominant_graph(dataset)).top_k
    yield "advanced-dg", AdvancedTraveler(
        build_extended_graph(dataset, theta=8)
    ).top_k
    yield "nway", NWayTraveler(
        dataset, NWayTraveler.even_split(dataset.dims, 2), theta=8
    ).top_k
    yield "ta", ThresholdAlgorithm(dataset).top_k
    yield "ca", CombinedAlgorithm(dataset).top_k
    yield "nra", NoRandomAccess(dataset).top_k
    yield "onion", OnionIndex(dataset).top_k
    yield "appri", AppRIIndex(dataset).top_k
    yield "prefer", PreferIndex(dataset).top_k
    yield "lpta", LPTAIndex(dataset).top_k
    yield "rankcube", RankCubeIndex(dataset).top_k


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("k", [1, 10, 50])
def test_agreement_matrix(workload, k):
    dataset = WORKLOADS[workload]()
    f = LinearFunction(np.arange(dataset.dims, 0, -1) / np.arange(
        dataset.dims, 0, -1
    ).sum())
    reference = naive_top_k(dataset, f, k).score_multiset()
    for name, top_k in all_algorithms(dataset):
        result = top_k(f, k)
        np.testing.assert_allclose(
            result.score_multiset(), reference, atol=1e-9,
            err_msg=f"{name} disagrees on {workload} k={k}",
        )


def test_one_index_many_queries():
    # The DG is query-agnostic: one offline build serves arbitrary
    # monotone preference functions (the paper's core selling point).
    dataset = uniform(300, 4, seed=106)
    graph = build_extended_graph(dataset, theta=8)
    traveler = AdvancedTraveler(graph)
    rng = np.random.default_rng(107)
    for _ in range(10):
        weights = rng.dirichlet(np.ones(4))
        f = LinearFunction(weights)
        expected = sorted(f.score_many(dataset.values), reverse=True)[:10]
        result = traveler.top_k(f, 10)
        np.testing.assert_allclose(sorted(result.scores, reverse=True), expected)


def test_index_survives_churn_and_queries():
    from repro.core.maintenance import delete_record, insert_record

    dataset = uniform(300, 3, seed=108)
    graph = build_extended_graph(dataset, theta=8, record_ids=range(200))
    traveler = AdvancedTraveler(graph)
    f = LinearFunction([0.5, 0.3, 0.2])
    live = set(range(200))
    rng = np.random.default_rng(109)
    for step in range(100):
        if step % 2 == 0 and len(live) < 300:
            new = next(i for i in range(300) if i not in live and i >= 200) \
                if any(i not in live for i in range(200, 300)) else None
            if new is not None:
                insert_record(graph, new)
                live.add(new)
        else:
            victim = int(rng.choice(sorted(live)))
            delete_record(graph, victim)
            live.discard(victim)
        if step % 25 == 24:
            expected = sorted(
                f.score_many(dataset.values[sorted(live)]), reverse=True
            )[:5]
            result = traveler.top_k(f, 5)
            np.testing.assert_allclose(sorted(result.scores, reverse=True), expected)


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize("script", ["quickstart.py"])
def test_examples_run(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert "Top-2" in completed.stdout


def test_public_api_importable():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"
