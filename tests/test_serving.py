"""ServingIndex: lifecycle, durability, recovery, admission, probes."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph
from repro.core.compiled import CompiledAdvancedTraveler
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.verify import verify_graph
from repro.errors import (
    DegradedResultWarning,
    IndexCorruptionError,
    QueryBudgetExceeded,
    ServiceOverloaded,
    ServiceUnavailable,
    WALCorruptionError,
)
from repro.serve import ServingIndex, scan_wal
from repro.serve.index import CURRENT_NAME, WAL_NAME
from repro.testing import FlakyFunction

from tests.conftest import assert_correct_topk


@pytest.fixture
def dataset(rng) -> Dataset:
    return Dataset(rng.random((40, 3)))


@pytest.fixture
def serving(tmp_path, dataset) -> ServingIndex:
    index = ServingIndex.create(
        str(tmp_path / "serve"), dataset, fsync="batch"
    )
    yield index
    index.close(checkpoint=False)


def weights3() -> LinearFunction:
    return LinearFunction([0.5, 0.3, 0.2])


class TraversalOnlyFault:
    """Scoring function that dies in the batch kernel but survives the scan.

    The batch kernel scores read-only slice views of the frozen snapshot's
    value matrix, while :func:`repro.serve.index.snapshot_scan` extracts
    the real records with a boolean mask — a fresh, writeable copy.
    Failing every read-only block exercises "every compiled-tier attempt
    fails, the degraded scan succeeds" regardless of chunk geometry (small
    datasets fit in one chunk, so batch *size* no longer distinguishes the
    two paths).
    """

    def __init__(self, inner, full_count: int) -> None:
        self.inner = inner
        self.full_count = full_count

    def __call__(self, vector: np.ndarray) -> float:
        raise RuntimeError("injected scoring fault")

    def score_many(self, block: np.ndarray) -> np.ndarray:
        if not block.flags.writeable:
            raise RuntimeError("injected scoring fault")
        return self.inner.score_many(block)


class TestLifecycle:
    def test_create_then_query(self, serving, dataset):
        result = serving.query(weights3(), k=5)
        assert_correct_topk(result, dataset, weights3(), 5)
        assert result.epoch == 0
        assert result.tier == "compiled"

    def test_create_refuses_existing_directory(self, tmp_path, dataset):
        directory = str(tmp_path / "serve")
        ServingIndex.create(directory, dataset).close()
        with pytest.raises(FileExistsError, match="ServingIndex.open"):
            ServingIndex.create(directory, dataset)

    def test_create_accepts_prebuilt_graph(self, tmp_path, dataset):
        graph = build_dominant_graph(dataset)
        with ServingIndex.create(str(tmp_path / "serve"), graph) as index:
            assert index.snapshot().compiled.num_records == len(dataset)

    def test_create_rejects_other_sources(self, tmp_path):
        with pytest.raises(TypeError, match="DominantGraph or Dataset"):
            ServingIndex.create(str(tmp_path / "serve"), [[1.0, 2.0]])

    def test_close_is_idempotent_and_refuses_new_work(self, serving):
        assert serving.close() is True
        assert serving.close() is True
        with pytest.raises(ServiceUnavailable, match="closed"):
            serving.query(weights3(), k=1)
        with pytest.raises(ServiceUnavailable, match="closed"):
            serving.insert(20)

    def test_mutations_advance_the_epoch(self, partial):
        index, _dataset = partial
        assert index.epoch == 0
        index.insert(20)
        index.delete(3)
        assert index.epoch == 2


def _indexed(index: ServingIndex) -> set:
    compiled = index.snapshot().compiled
    return {
        int(r) for r in compiled.record_ids[~compiled.pseudo_mask].tolist()
    }


@pytest.fixture
def partial(tmp_path, rng):
    """Serving index over half of a dataset, the rest pending insert."""
    dataset = Dataset(rng.random((40, 3)))
    graph = build_dominant_graph(dataset, record_ids=range(20))
    index = ServingIndex.create(
        str(tmp_path / "partial"), graph, fsync="batch"
    )
    yield index, dataset
    index.close(checkpoint=False)


class TestDurability:
    def test_reopen_without_close_replays_the_wal(self, tmp_path, partial):
        index, dataset = partial
        index.insert(25)
        index.insert_many([30, 31, 32])
        index.delete(3)
        index.mark_deleted(7)
        index._wal.sync()
        live = index.query(weights3(), k=10)

        # No close(): recovery sees checkpoint-0 plus five WAL records.
        recovered = ServingIndex.open(index._directory + "")
        try:
            assert not verify_graph(recovered._graph)
            again = recovered.query(weights3(), k=10)
            assert again.ids == live.ids
            assert again.scores == live.scores
        finally:
            recovered.close(checkpoint=False)

    def test_recovery_equals_rebuild_bit_for_bit(self, tmp_path, partial):
        index, dataset = partial
        index.insert_many(list(range(20, 30)))
        index.delete_many([1, 4])
        index._wal.sync()

        recovered = ServingIndex.open(index._directory)
        try:
            survivors = sorted(_indexed(recovered))
            rebuilt = CompiledAdvancedTraveler(
                build_dominant_graph(dataset, record_ids=survivors).compile()
            )
            for seed in range(3):
                fn = LinearFunction(
                    np.random.default_rng(seed).random(3) + 0.05
                )
                for k in (1, 5, 20):
                    want = rebuilt.top_k(fn, k)
                    got = recovered.query(fn, k)
                    assert got.ids == want.ids
                    assert got.scores == want.scores
        finally:
            recovered.close(checkpoint=False)

    def test_checkpoint_truncates_wal_and_survives_reopen(self, partial):
        index, _dataset = partial
        index.insert(22)
        index.insert(23)
        name = index.checkpoint()
        assert name.endswith(".dgs")
        scan = scan_wal(os.path.join(index._directory, WAL_NAME))
        assert scan.records == []
        assert scan.base_seq == 2
        index.insert(24)  # post-checkpoint op lands in the fresh WAL

        recovered = ServingIndex.open(index._directory)
        try:
            assert _indexed(recovered) >= {22, 23, 24}
        finally:
            recovered.close(checkpoint=False)

    def test_checkpoint_with_nothing_new_is_a_noop(self, partial):
        index, _dataset = partial
        first = index.checkpoint()
        before = os.path.getmtime(os.path.join(index._directory, first))
        assert index.checkpoint() == first
        after = os.path.getmtime(os.path.join(index._directory, first))
        assert before == after

    def test_auto_checkpoint_interval(self, tmp_path, rng):
        dataset = Dataset(rng.random((30, 2)))
        graph = build_dominant_graph(dataset, record_ids=range(20))
        index = ServingIndex.create(
            str(tmp_path / "auto"),
            graph,
            fsync="never",
            checkpoint_interval=3,
        )
        try:
            for rid in (20, 21, 22):
                index.insert(rid)
            scan = scan_wal(os.path.join(index._directory, WAL_NAME))
            assert scan.base_seq == 3 and scan.records == []
        finally:
            index.close(checkpoint=False)

    def test_orphan_checkpoints_are_collected(self, partial):
        index, _dataset = partial
        index.insert(21)
        index.checkpoint()
        index.insert(22)
        index.checkpoint()
        names = [
            n for n in os.listdir(index._directory)
            if n.startswith("checkpoint-")
        ]
        assert len(names) == 1

    def test_missing_wal_recovers_from_checkpoint_with_warning(
        self, partial
    ):
        index, _dataset = partial
        index.insert(21)
        index.checkpoint()
        index.close(checkpoint=False)
        os.unlink(os.path.join(index._directory, WAL_NAME))
        with pytest.warns(DegradedResultWarning, match="log missing"):
            recovered = ServingIndex.open(index._directory)
        try:
            assert 21 in _indexed(recovered)
        finally:
            recovered.close(checkpoint=False)

    def test_wal_from_the_future_is_corruption(self, partial):
        index, _dataset = partial
        index.insert(21)
        name = index.checkpoint()  # WAL base_seq is now 1
        index.close(checkpoint=False)
        # Forge a CURRENT claiming the checkpoint applied nothing: the
        # WAL now starts *after* operations the checkpoint lacks.
        from repro.serve.index import _write_current

        _write_current(index._directory, name, 0)
        with pytest.raises(IndexCorruptionError, match="missing between"):
            ServingIndex.open(index._directory)

    def test_unreplayable_record_is_corruption(self, partial):
        index, _dataset = partial
        index.insert(21)
        index._wal.sync()
        index.close(checkpoint=False)
        # Re-point CURRENT at the original checkpoint but doctor the WAL
        # to insert a record id that is already indexed there.
        from repro.serve.wal import WriteAheadLog

        with WriteAheadLog(
            os.path.join(index._directory, WAL_NAME), fsync="never"
        ) as wal:
            wal.append({"op": "insert", "rid": 0})  # 0 already indexed
        with pytest.raises(WALCorruptionError, match="no longer applies"):
            ServingIndex.open(index._directory)

    def test_missing_current_pointer_raises(self, tmp_path):
        os.makedirs(tmp_path / "empty", exist_ok=True)
        with pytest.raises(FileNotFoundError):
            ServingIndex.open(str(tmp_path / "empty"))


class TestQueries:
    def test_queries_carry_the_snapshot_epoch(self, partial):
        index, dataset = partial
        assert index.query(weights3(), k=3).epoch == 0
        index.insert(20)
        assert index.query(weights3(), k=3).epoch == 1

    def test_where_filter_applies(self, serving, dataset):
        threshold = float(np.median(dataset.values[:, 0]))
        result = serving.query(
            weights3(), k=30, where=lambda v: v[0] <= threshold
        )
        assert all(
            dataset.values[rid, 0] <= threshold for rid in result.ids
        )

    def test_budget_violation_raises_and_is_not_degraded(self, serving):
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            serving.query(weights3(), k=10, budget_records=1)
        assert excinfo.value.tier == "compiled"

    def test_transient_fault_retries_then_succeeds(self, serving, dataset):
        flaky = FlakyFunction(weights3(), times=1)
        result = serving.query(flaky, k=5)
        assert result.tier == "compiled"
        assert_correct_topk(result, dataset, weights3(), 5)

    def test_persistent_fault_degrades_to_snapshot_scan(
        self, serving, dataset
    ):
        faulty = TraversalOnlyFault(weights3(), len(dataset))
        with pytest.warns(DegradedResultWarning, match="degrading"):
            result = serving.query(faulty, k=5)
        assert result.tier == "naive"
        assert result.algorithm == "snapshot-scan"
        assert_correct_topk(result, dataset, weights3(), 5)

    def test_fallback_false_propagates_the_fault(self, serving, dataset):
        faulty = TraversalOnlyFault(weights3(), len(dataset))
        with pytest.raises(RuntimeError, match="injected"):
            serving.query(faulty, k=5, fallback=False)

    def test_degraded_scan_matches_traversal_exactly(self, serving, dataset):
        clean = serving.query(weights3(), k=8)
        faulty = TraversalOnlyFault(weights3(), len(dataset))
        with pytest.warns(DegradedResultWarning):
            degraded = serving.query(faulty, k=8)
        assert degraded.ids == clean.ids
        assert degraded.scores == clean.scores
        assert degraded.epoch == clean.epoch


class TestWriterPoisoning:
    def test_validation_failure_does_not_poison(self, partial):
        index, _dataset = partial
        with pytest.raises(ValueError):
            index.insert(0)  # already indexed: caught by validation
        assert index.readiness()["ready"]
        index.insert(20)  # writer still healthy

    def test_apply_failure_poisons_writes_not_reads(
        self, partial, monkeypatch
    ):
        index, _dataset = partial
        epoch_before = index.epoch
        result_before = index.query(weights3(), k=5)

        import repro.serve.index as serve_index

        def boom(graph, rid):
            raise RuntimeError("injected apply fault")

        monkeypatch.setattr(serve_index, "insert_record", boom)
        with pytest.raises(RuntimeError, match="injected apply"):
            index.insert(20)

        # Reads keep answering from the last published snapshot ...
        after = index.query(weights3(), k=5)
        assert after.ids == result_before.ids
        assert after.epoch == epoch_before
        # ... writes refuse with the poisoned detail ...
        monkeypatch.undo()
        with pytest.raises(ServiceUnavailable, match="poisoned"):
            index.insert(21)
        with pytest.raises(ServiceUnavailable, match="poisoned"):
            index.checkpoint()
        assert index.health()["status"] == "degraded"
        # ... and nothing poisoned was logged: restart recovery is clean.
        recovered = ServingIndex.open(index._directory)
        try:
            assert not verify_graph(recovered._graph)
            assert 20 not in _indexed(recovered)
        finally:
            recovered.close(checkpoint=False)


class TestAdmission:
    def test_overload_sheds_with_typed_error(self, tmp_path, rng):
        from repro.serve import AdmissionController

        admission = AdmissionController(
            max_concurrent=1, max_waiting=0, wait_timeout=0.01
        )
        with admission.admit():
            with pytest.raises(ServiceOverloaded) as excinfo:
                with admission.admit():
                    pass
        assert excinfo.value.reason == "overloaded"
        assert admission.snapshot()["shed"] == 1
        # The slot freed: the next admit succeeds.
        with admission.admit():
            pass

    def test_wait_timeout_sheds(self):
        from repro.serve import AdmissionController

        admission = AdmissionController(
            max_concurrent=1, max_waiting=4, wait_timeout=0.02
        )
        with admission.admit():
            with pytest.raises(ServiceOverloaded):
                with admission.admit():
                    pass

    def test_retry_backoff_schedule_is_deterministic(self):
        from repro.serve import retry_with_backoff

        sleeps = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "ok"

        assert (
            retry_with_backoff(
                flaky, attempts=3, base_delay=0.01, sleep=sleeps.append
            )
            == "ok"
        )
        assert sleeps == [0.01, 0.02]

    def test_retry_never_retries_budget_violations(self):
        from repro.serve import retry_with_backoff

        calls = []

        def tripped():
            calls.append(1)
            raise QueryBudgetExceeded("records", limit=1, spent=2)

        with pytest.raises(QueryBudgetExceeded):
            retry_with_backoff(tripped, attempts=5, sleep=lambda _s: None)
        assert len(calls) == 1


class TestProbes:
    def test_health_reports_the_serving_state(self, partial):
        index, _dataset = partial
        index.insert(20)
        health = index.health()
        assert health["status"] == "ok"
        assert health["epoch"] == 1
        assert health["records"] == 21
        assert health["wal"]["last_seq"] == 1
        assert health["admission"]["admitted"] == 0

    def test_readiness_flips_through_the_lifecycle(self, partial):
        index, _dataset = partial
        assert index.readiness() == {"ready": True, "reasons": []}
        index.close()
        ready = index.readiness()
        assert not ready["ready"]
        assert "closed" in ready["reasons"]

    def test_health_after_close(self, partial):
        index, _dataset = partial
        index.close()
        assert index.health()["status"] == "closed"
