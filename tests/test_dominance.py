"""Unit tests for repro.core.dominance (Definition 2.2)."""

import numpy as np
import pytest

from repro.core.dominance import (
    dominance_matrix,
    dominated_by,
    dominates,
    dominators_of,
    maximal_mask,
    strictly_dominates,
)


class TestDominates:
    def test_strict_everywhere(self):
        assert dominates(np.array([3.0, 3.0]), np.array([1.0, 1.0]))

    def test_weak_with_one_strict(self):
        assert dominates(np.array([3.0, 1.0]), np.array([1.0, 1.0]))

    def test_equal_vectors_do_not_dominate(self):
        v = np.array([2.0, 2.0])
        assert not dominates(v, v.copy())

    def test_incomparable(self):
        assert not dominates(np.array([3.0, 1.0]), np.array([1.0, 3.0]))
        assert not dominates(np.array([1.0, 3.0]), np.array([3.0, 1.0]))

    def test_antisymmetric(self, rng):
        for _ in range(50):
            a, b = rng.uniform(size=2), rng.uniform(size=2)
            assert not (dominates(a, b) and dominates(b, a))

    def test_transitive(self):
        a, b, c = np.array([3.0, 3.0]), np.array([2.0, 2.0]), np.array([1.0, 1.0])
        assert dominates(a, b) and dominates(b, c) and dominates(a, c)

    def test_one_dimension(self):
        assert dominates(np.array([2.0]), np.array([1.0]))
        assert not dominates(np.array([1.0]), np.array([1.0]))


class TestStrictlyDominates:
    def test_requires_all_strict(self):
        assert strictly_dominates(np.array([2.0, 2.0]), np.array([1.0, 1.0]))
        assert not strictly_dominates(np.array([2.0, 1.0]), np.array([1.0, 1.0]))


class TestVectorizedForms:
    def test_dominators_of_matches_scalar(self, rng):
        block = rng.uniform(size=(40, 3))
        point = rng.uniform(size=3)
        mask = dominators_of(point, block)
        for i in range(40):
            assert mask[i] == dominates(block[i], point)

    def test_dominated_by_matches_scalar(self, rng):
        block = rng.uniform(size=(40, 3))
        point = rng.uniform(size=3)
        mask = dominated_by(point, block)
        for i in range(40):
            assert mask[i] == dominates(point, block[i])

    def test_dominance_matrix_matches_scalar(self, rng):
        upper = rng.uniform(size=(10, 2))
        lower = rng.uniform(size=(12, 2))
        matrix = dominance_matrix(upper, lower)
        for i in range(10):
            for j in range(12):
                assert matrix[i, j] == dominates(upper[i], lower[j])

    def test_empty_blocks(self):
        point = np.array([1.0, 2.0])
        assert dominators_of(point, np.empty((0, 2))).shape == (0,)
        assert dominated_by(point, np.empty((0, 2))).shape == (0,)

    def test_dominance_matrix_empty_upper(self):
        matrix = dominance_matrix(np.empty((0, 2)), np.ones((3, 2)))
        assert matrix.shape == (0, 3)

    def test_dominance_matrix_chunking_identical(self, rng):
        """Chunked broadcast == one-shot broadcast on a >10M-element pair.

        ``dominance_matrix`` blocks over ``upper`` rows to bound peak
        memory (a 600 x 700 layer pair in 24-d would otherwise build two
        ~10M-element temporaries per comparison); the output must not
        depend on the block size.
        """
        a, b, m = 600, 700, 24
        assert a * b * m > 10_000_000
        upper = rng.uniform(size=(a, m))
        lower = rng.uniform(size=(b, m))
        # Sprinkle exact ties so the >= / > split is exercised.
        lower[:a // 2] = upper[: a // 2]
        one_shot = np.logical_and(
            (upper[:, None, :] >= lower[None, :, :]).all(axis=2),
            (upper[:, None, :] > lower[None, :, :]).any(axis=2),
        )
        for block_rows in (1, 7, 256, 599, 600, 10_000):
            np.testing.assert_array_equal(
                dominance_matrix(upper, lower, block_rows=block_rows),
                one_shot,
            )


class TestMaximalMask:
    def test_known_example(self):
        block = np.array([[2.0, 2.0], [1.0, 1.0], [3.0, 0.0], [0.0, 3.0]])
        np.testing.assert_array_equal(
            maximal_mask(block), [True, False, True, True]
        )

    def test_matches_bruteforce(self, rng):
        block = rng.uniform(size=(60, 3))
        mask = maximal_mask(block)
        for i in range(60):
            brute = not any(
                dominates(block[j], block[i]) for j in range(60) if j != i
            )
            assert mask[i] == brute

    def test_duplicates_all_maximal(self):
        block = np.array([[1.0, 1.0], [1.0, 1.0], [0.0, 0.0]])
        np.testing.assert_array_equal(maximal_mask(block), [True, True, False])

    def test_single_row(self):
        assert maximal_mask(np.array([[5.0, 5.0]])).tolist() == [True]

    def test_empty(self):
        assert maximal_mask(np.empty((0, 2))).shape == (0,)

    def test_total_order_chain(self):
        block = np.array([[float(i)] * 2 for i in range(5)])
        mask = maximal_mask(block)
        assert mask.tolist() == [False, False, False, False, True]

    def test_antichain_all_maximal(self):
        # Constant coordinate sum => no dominance at all.
        block = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        assert maximal_mask(block).all()


class TestDominanceWithTies:
    def test_weakly_greater_but_equal_sum_cannot_happen(self, rng):
        # If a dominates b then sum(a) > sum(b): the SFS sort order is a
        # topological order of dominance, which maximal_mask relies on.
        for _ in range(100):
            a, b = rng.uniform(size=3), rng.uniform(size=3)
            if dominates(a, b):
                assert a.sum() > b.sum()
