"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import load_dataset, main, save_dataset
from repro.data.generators import uniform


@pytest.fixture
def data_path(tmp_path):
    return save_dataset(uniform(120, 3, seed=1), str(tmp_path / "data"))


@pytest.fixture
def index_path(tmp_path, data_path):
    out = str(tmp_path / "index.npz")
    assert main(["build", "--data", data_path, "--out", out, "--theta", "16"]) == 0
    return out


class TestDatasetIO:
    def test_roundtrip(self, tmp_path):
        dataset = uniform(40, 2, seed=2)
        path = save_dataset(dataset, str(tmp_path / "d"))
        loaded = load_dataset(path)
        assert loaded == dataset
        assert loaded.attribute_names == dataset.attribute_names


class TestCommands:
    def test_generate(self, tmp_path, capsys):
        out = str(tmp_path / "gen.npz")
        code = main(["generate", "--kind", "G", "--n", "50", "--dims", "4",
                     "--out", out])
        assert code == 0
        assert load_dataset(out).dims == 4
        assert "50" in capsys.readouterr().out

    def test_generate_server(self, tmp_path):
        out = str(tmp_path / "srv.npz")
        assert main(["generate", "--kind", "server", "--n", "60",
                     "--out", out]) == 0
        assert load_dataset(out).attribute_names[0] == "count"

    def test_build_plain(self, tmp_path, data_path, capsys):
        out = str(tmp_path / "plain.npz")
        assert main(["build", "--data", data_path, "--out", out, "--plain"]) == 0
        assert "0 pseudo" in capsys.readouterr().out

    def test_query(self, index_path, capsys):
        code = main(["query", "--index", index_path,
                     "--weights", "0.5,0.3,0.2", "--k", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "top-5" in out
        assert out.count("record ") == 5

    def test_query_compiled_engine_matches_reference(self, index_path, capsys):
        argv = ["query", "--index", index_path,
                "--weights", "0.5,0.3,0.2", "--k", "5"]
        assert main(argv) == 0
        reference = capsys.readouterr().out
        assert main(argv + ["--engine", "compiled"]) == 0
        compiled = capsys.readouterr().out
        # Same ranked records and scores; only the timing line may differ.
        assert reference.splitlines()[1:] == compiled.splitlines()[1:]

    def test_query_weight_dim_mismatch(self, index_path):
        with pytest.raises(SystemExit):
            main(["query", "--index", index_path, "--weights", "0.5,0.5"])

    def test_query_bad_weights(self, index_path):
        with pytest.raises(SystemExit):
            main(["query", "--index", index_path, "--weights", "a,b,c"])

    def test_inspect(self, index_path, capsys):
        assert main(["inspect", "--index", index_path, "--validate"]) == 0
        out = capsys.readouterr().out
        assert "layers:" in out and "index OK" in out

    def test_query_reports_serving_tier(self, index_path, capsys):
        assert main(["query", "--index", index_path,
                     "--weights", "0.5,0.3,0.2", "--k", "3",
                     "--engine", "naive"]) == 0
        assert "naive tier" in capsys.readouterr().out

    def test_query_budget_exceeded_exits_3(self, index_path, capsys):
        code = main(["query", "--index", index_path,
                     "--weights", "0.5,0.3,0.2", "--k", "5",
                     "--budget-records", "2"])
        assert code == 3
        assert "budget exceeded" in capsys.readouterr().err

    def test_query_generous_budget_unchanged(self, index_path, capsys):
        argv = ["query", "--index", index_path,
                "--weights", "0.5,0.3,0.2", "--k", "5"]
        assert main(argv) == 0
        free = capsys.readouterr().out
        assert main(argv + ["--budget-records", "100000",
                            "--budget-ms", "60000", "--no-fallback"]) == 0
        budgeted = capsys.readouterr().out
        assert free.splitlines()[1:] == budgeted.splitlines()[1:]

    def test_doctor_healthy(self, index_path, capsys):
        assert main(["doctor", "--index", index_path]) == 0
        out = capsys.readouterr().out
        assert "index OK" in out

    def test_doctor_detects_and_repairs(self, index_path, tmp_path, capsys):
        from repro.testing.faults import tamper_array

        tamper_array(index_path, "edges", lambda e: e[::-1])
        assert main(["doctor", "--index", index_path]) == 2
        assert "CORRUPT" in capsys.readouterr().out
        out_path = str(tmp_path / "fixed.npz")
        assert main(["doctor", "--index", index_path,
                     "--repair", "--out", out_path]) == 0
        out = capsys.readouterr().out
        assert "repaired index written" in out and "index OK" in out
        assert main(["query", "--index", out_path,
                     "--weights", "0.5,0.3,0.2", "--k", "3"]) == 0

    def test_doctor_missing_file(self, tmp_path, capsys):
        assert main(["doctor", "--index", str(tmp_path / "nope.npz")]) == 2
        assert "cannot read index" in capsys.readouterr().out

    def test_insert_and_delete(self, tmp_path, capsys):
        data = save_dataset(uniform(50, 2, seed=3), str(tmp_path / "d2"))
        index = str(tmp_path / "i2.npz")
        assert main(["build", "--data", data, "--out", index]) == 0
        assert main(["delete", "--index", index, "--record-id", "0"]) == 0
        assert main(["insert", "--index", index]) == 0
        capsys.readouterr()
        assert main(["inspect", "--index", index, "--validate"]) == 0
        assert "indexed: 50" in capsys.readouterr().out

    def test_insert_nothing_pending(self, index_path, capsys):
        assert main(["insert", "--index", index_path]) == 0
        assert "nothing to insert" in capsys.readouterr().out

    def test_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        assert main(["experiment", "--name", "cost-model"]) == 0
        assert "Theorem 3.2" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_serve_init_probe_smoke(self, tmp_path, data_path, capsys):
        serve_dir = str(tmp_path / "serving")
        assert main(["serve", "--dir", serve_dir, "--init",
                     "--data", data_path, "--fsync", "batch"]) == 0
        assert "initialized" in capsys.readouterr().out

        assert main(["serve", "--dir", serve_dir, "--probe"]) == 0
        import json

        probe = json.loads(capsys.readouterr().out)
        assert probe["readiness"] == {"ready": True, "reasons": []}
        assert probe["health"]["status"] == "ok"
        assert probe["health"]["records"] == 120

        assert main(["serve", "--dir", serve_dir, "--smoke", "10",
                     "--fsync", "batch"]) == 0
        out = capsys.readouterr().out
        assert "10 mutations" in out
        assert "concurrent reads" in out

    def test_serve_init_requires_data(self, tmp_path):
        with pytest.raises(SystemExit, match="requires --data"):
            main(["serve", "--dir", str(tmp_path / "s"), "--init"])

    def test_serve_init_refuses_existing_directory(
        self, tmp_path, data_path
    ):
        serve_dir = str(tmp_path / "serving")
        assert main(["serve", "--dir", serve_dir, "--init",
                     "--data", data_path]) == 0
        with pytest.raises(FileExistsError):
            main(["serve", "--dir", serve_dir, "--init",
                  "--data", data_path])

    def test_serve_probe_unready_exits_1(self, tmp_path, data_path,
                                         monkeypatch, capsys):
        serve_dir = str(tmp_path / "serving")
        assert main(["serve", "--dir", serve_dir, "--init",
                     "--data", data_path]) == 0
        from repro.serve.index import ServingIndex

        real_readiness = ServingIndex.readiness

        def unready(self):
            doc = real_readiness(self)
            return {"ready": False, "reasons": doc["reasons"] + ["test"]}

        monkeypatch.setattr(ServingIndex, "readiness", unready)
        assert main(["serve", "--dir", serve_dir, "--probe"]) == 1

    def test_module_entry_point(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0
        assert "Dominant Graph" in completed.stdout
