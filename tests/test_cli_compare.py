"""CLI tests for the compare subcommand and error paths."""

import pytest

from repro.cli import main, save_dataset
from repro.data.generators import uniform


class TestCompareCommand:
    def test_compare_runs_and_reports(self, tmp_path, capsys, monkeypatch):
        data = save_dataset(uniform(200, 3, seed=1), str(tmp_path / "d"))
        code = main(["compare", "--data", data, "--k", "5", "--queries", "3"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("DG", "TA", "ONION", "AppRI", "PREFER", "RankCube"):
            assert name in out
        assert "correct" in out

    def test_compare_alpha_flag(self, tmp_path, capsys):
        data = save_dataset(uniform(150, 2, seed=2), str(tmp_path / "d2"))
        code = main(["compare", "--data", data, "--k", "3",
                     "--queries", "2", "--alpha", "0.3"])
        assert code == 0
        assert "top-3" in capsys.readouterr().out


class TestErrorPaths:
    def test_query_missing_index(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["query", "--index", str(tmp_path / "nope.npz"),
                  "--weights", "1.0"])

    def test_build_missing_data(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["build", "--data", str(tmp_path / "nope.npz"),
                  "--out", str(tmp_path / "o.npz")])

    def test_experiment_unknown_name(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--name", "fig99"])
