"""Unit tests for repro.core.graph (Definition 2.4 structure + invariants)."""

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.dataset import Dataset
from repro.core.graph import DominantGraph


@pytest.fixture
def graph(small_dataset):
    return build_dominant_graph(small_dataset)


class TestStructure:
    def test_layer_sizes(self, graph):
        assert graph.layer_sizes() == [3, 2, 1]

    def test_layer_contents(self, graph):
        assert graph.layer(0) == frozenset({0, 1, 4})
        assert graph.layer(1) == frozenset({2, 5})
        assert graph.layer(2) == frozenset({3})

    def test_layer_of(self, graph):
        assert graph.layer_of(0) == 0
        assert graph.layer_of(2) == 1
        assert graph.layer_of(3) == 2

    def test_contains(self, graph):
        assert 0 in graph
        assert 99 not in graph

    def test_len_counts_indexed(self, graph):
        assert len(graph) == 6

    def test_parents_are_previous_layer_dominators(self, graph, small_dataset):
        # record 2 = (2,2): dominated by 4=(3,3) in layer 1; 0=(4,1) and
        # 1=(1,4) do not dominate it.
        assert graph.parents_of(2) == frozenset({4})
        # record 5 = (0.5,3.5): dominated by 1=(1,4) only.
        assert graph.parents_of(5) == frozenset({1})

    def test_children_inverse_of_parents(self, graph):
        for rid in graph.iter_records():
            for child in graph.children_of(rid):
                assert rid in graph.parents_of(child)

    def test_edges_span_consecutive_layers(self, graph):
        for rid in graph.iter_records():
            for child in graph.children_of(rid):
                assert graph.layer_of(child) == graph.layer_of(rid) + 1

    def test_edge_count(self, graph):
        # 4->2, 1->5, 2->3, 5 does not dominate 3? (0.5,3.5) vs (0.5,0.5):
        # >= in both and > in one => dominates. So 5->3 too.
        assert graph.edge_count() == 4

    def test_top_layer_has_no_parents(self, graph):
        for rid in graph.layer(0):
            assert graph.parents_of(rid) == frozenset()

    def test_iter_records_in_layer_order(self, graph):
        order = list(graph.iter_records())
        layers = [graph.layer_of(r) for r in order]
        assert layers == sorted(layers)

    def test_validate_passes(self, graph):
        graph.validate()

    def test_repr(self, graph):
        text = repr(graph)
        assert "records=6" in text and "layers=3" in text


class TestMutation:
    def test_place_record_rejects_duplicate(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        with pytest.raises(ValueError, match="already indexed"):
            graph.place_record(0, 0)

    def test_move_record_drops_edges(self, graph):
        graph.move_record(2, 2)
        assert graph.parents_of(2) == frozenset()
        assert graph.children_of(2) == frozenset()
        assert graph.layer_of(2) == 2

    def test_move_record_same_layer_noop(self, graph):
        parents = graph.parents_of(2)
        graph.move_record(2, graph.layer_of(2))
        assert graph.parents_of(2) == parents

    def test_remove_record(self, graph):
        graph.remove_record(3)
        assert 3 not in graph
        assert graph.children_of(2) == frozenset()

    def test_remove_then_prune(self, graph):
        graph.remove_record(3)
        graph.prune_empty_layers()
        assert graph.num_layers == 2
        graph.validate()

    def test_add_remove_edge(self, graph):
        graph.remove_edge(4, 2)
        assert 2 not in graph.children_of(4)
        graph.add_edge(4, 2)
        assert 2 in graph.children_of(4)

    def test_add_children_bulk_equals_per_edge(self):
        # parent 0 = (5,5) dominates both layer-2 records (1,2) and (2,1).
        graph = build_dominant_graph(Dataset([[5.0, 5.0], [1.0, 2.0], [2.0, 1.0]]))
        assert graph.children_of(0) == frozenset({1, 2})
        graph.drop_edges(0)
        graph.add_children(0, [1, 2])
        assert graph.children_of(0) == frozenset({1, 2})
        assert graph.parents_of(1) == frozenset({0})
        assert graph.parents_of(2) == frozenset({0})
        graph.validate()

    def test_version_bumps_on_mutation(self, graph):
        before = graph.version
        graph.remove_edge(4, 2)
        assert graph.version > before
        mid = graph.version
        graph.add_edge(4, 2)
        assert graph.version > mid

    def test_drop_edges_symmetric(self, graph):
        graph.drop_edges(4)
        assert graph.children_of(4) == frozenset()
        assert 4 not in graph.parents_of(2)

    def test_ensure_layers_grows(self, graph):
        graph.ensure_layers(10)
        assert graph.num_layers == 10

    def test_prune_compacts_indices(self, graph):
        graph.ensure_layers(10)
        graph.prune_empty_layers()
        assert graph.num_layers == 3
        assert graph.layer_of(3) == 2


class TestPseudoRecords:
    def test_add_pseudo_record_gets_fresh_id(self, small_dataset):
        graph = DominantGraph(small_dataset)
        pid = graph.add_pseudo_record(np.array([9.0, 9.0]))
        assert pid == len(small_dataset)
        assert graph.is_pseudo(pid)
        np.testing.assert_array_equal(graph.vector(pid), [9.0, 9.0])

    def test_pseudo_vector_shape_checked(self, small_dataset):
        graph = DominantGraph(small_dataset)
        with pytest.raises(ValueError):
            graph.add_pseudo_record(np.array([1.0, 2.0, 3.0]))

    def test_real_vector_comes_from_dataset(self, graph, small_dataset):
        np.testing.assert_array_equal(graph.vector(2), small_dataset.vector(2))

    def test_convert_to_pseudo(self, graph):
        graph.convert_to_pseudo(3)
        assert graph.is_pseudo(3)
        assert 3 in graph  # still indexed

    def test_convert_to_pseudo_idempotent(self, graph):
        graph.convert_to_pseudo(3)
        graph.convert_to_pseudo(3)
        assert graph.is_pseudo(3)

    def test_real_ids_excludes_pseudo(self, small_dataset):
        graph = build_extended_graph(small_dataset, theta=2)
        reals = graph.real_ids()
        assert sorted(reals) == list(range(len(small_dataset)))

    def test_update_pseudo_vector_raises_only(self, small_dataset):
        graph = DominantGraph(small_dataset)
        pid = graph.add_pseudo_record(np.array([5.0, 5.0]))
        graph.update_pseudo_vector(pid, np.array([6.0, 5.0]))
        with pytest.raises(ValueError, match="raised"):
            graph.update_pseudo_vector(pid, np.array([1.0, 1.0]))

    def test_update_pseudo_vector_rejects_real(self, graph):
        with pytest.raises(ValueError, match="not a pseudo"):
            graph.update_pseudo_vector(0, np.array([9.0, 9.0]))

    def test_prepend_layer_shifts_indices(self, graph, small_dataset):
        pid = graph.add_pseudo_record(np.array([99.0, 99.0]))
        graph.prepend_layer([pid])
        assert graph.layer_of(pid) == 0
        assert graph.layer_of(0) == 1
        assert graph.layer_of(3) == 3


class TestValidationFailures:
    def test_detects_bad_edge_layer_span(self, graph):
        graph.add_edge(0, 3)  # layer 0 -> layer 2: not consecutive
        with pytest.raises(AssertionError, match="consecutive"):
            graph.validate()

    def test_detects_edge_without_dominance(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        # 0=(4,1) does not dominate 5=(0.5,3.5) but is in the layer above.
        graph.add_edge(0, 5)
        with pytest.raises(AssertionError):
            graph.validate()

    def test_detects_orphan_record(self, graph):
        graph.remove_edge(2, 3)
        graph.remove_edge(5, 3)
        with pytest.raises(AssertionError, match="no parent"):
            graph.validate(check_layer_minimality=False)

    def test_detects_missing_dominator_edge(self, graph):
        graph.remove_edge(5, 3)
        with pytest.raises(AssertionError, match="stored parents"):
            graph.validate()

    def test_minimality_check_optional(self, graph):
        graph.remove_edge(5, 3)
        graph.validate(check_layer_minimality=False)  # soundness still OK
