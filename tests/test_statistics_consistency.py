"""Graph statistics consistency through build, maintenance, and reload."""

import random

import pytest

from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.io import load_graph, save_graph
from repro.core.maintenance import delete_record, insert_record
from repro.data.generators import all_skyline, uniform


def assert_statistics_coherent(graph):
    stats = graph.statistics()
    assert stats["records"] == stats["real_records"] + stats["pseudo_records"]
    assert stats["layers"] == len(graph.layer_sizes())
    assert sum(graph.layer_sizes()) == stats["records"]
    assert stats["max_layer_width"] >= stats["mean_layer_width"] > 0
    assert stats["max_parents"] >= stats["mean_parents"] >= (
        1.0 if stats["layers"] > 1 else 0.0
    )
    return stats


class TestStatisticsLifecycle:
    def test_plain_build(self):
        graph = build_dominant_graph(uniform(150, 3, seed=1))
        stats = assert_statistics_coherent(graph)
        assert stats["pseudo_levels"] == 0

    def test_extended_build(self):
        graph = build_extended_graph(all_skyline(100, 3, seed=2), theta=8)
        stats = assert_statistics_coherent(graph)
        assert stats["pseudo_levels"] >= 1
        assert stats["pseudo_records"] > 0

    def test_through_churn(self):
        dataset = uniform(200, 3, seed=3)
        graph = build_dominant_graph(dataset, record_ids=range(150))
        rng = random.Random(3)
        live = set(range(150))
        for rid in range(150, 200):
            insert_record(graph, rid)
            live.add(rid)
        for rid in rng.sample(sorted(live), 60):
            delete_record(graph, rid)
            live.remove(rid)
        stats = assert_statistics_coherent(graph)
        assert stats["real_records"] == len(live)

    def test_preserved_across_reload(self, tmp_path):
        graph = build_extended_graph(all_skyline(80, 3, seed=4), theta=8)
        before = graph.statistics()
        loaded = load_graph(save_graph(graph, str(tmp_path / "s.npz")))
        assert loaded.statistics() == before

    def test_edges_match_parent_sum(self):
        graph = build_dominant_graph(uniform(120, 2, seed=5))
        total_parents = sum(
            len(graph.parents_of(rid)) for rid in graph.iter_records()
        )
        assert graph.statistics()["edges"] == total_parents
