"""Additional tests for the bench reporting layer and result artifacts."""

import os

import pytest

from repro.bench.harness import ExperimentResult, Series
from repro.bench.report import _fmt, format_table, save_result


class TestFmt:
    def test_integral_float_shown_as_int(self):
        assert _fmt(42.0) == "42"

    def test_large_float_one_decimal(self):
        assert _fmt(12345.678) == "12345.7"

    def test_small_float_sig_figs(self):
        assert _fmt(0.00012345) == "0.0001234"

    def test_string_passthrough(self):
        assert _fmt("abc") == "abc"

    def test_int_passthrough(self):
        assert _fmt(7) == "7"

    def test_negative(self):
        assert _fmt(-3.5) == "-3.5"


class TestTableLayout:
    def test_columns_aligned(self):
        result = ExperimentResult(
            "T", "k", [1, 100],
            [Series("alpha", [1.0, 2.0]), Series("beta-very-long", [3.0, 4.0])],
        )
        lines = format_table(result).splitlines()
        data_lines = lines[2:]
        widths = {len(line) for line in data_lines}
        assert len(widths) == 1  # every row padded to the same width

    def test_empty_x(self):
        result = ExperimentResult("T", "k", [], [Series("a", [])])
        text = format_table(result)
        assert "T" in text

    def test_save_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "deeper"
        result = ExperimentResult("T", "k", [1], [Series("a", [2.0])])
        path = save_result(result, str(target), "artifact")
        assert os.path.exists(path)

    def test_save_overwrites(self, tmp_path):
        result1 = ExperimentResult("T", "k", [1], [Series("a", [2.0])])
        result2 = ExperimentResult("T", "k", [1], [Series("a", [9.0])])
        save_result(result1, str(tmp_path), "same")
        path = save_result(result2, str(tmp_path), "same")
        assert "9" in open(path).read()


class TestSeriesAccess:
    def test_runner_exceptions_propagate(self):
        from repro.bench.harness import sweep

        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            sweep("t", "k", [1], {"a": boom})

    def test_sweep_coerces_to_float(self):
        from repro.bench.harness import sweep

        result = sweep("t", "k", [1, 2], {"a": lambda x: x * 10})
        assert result.series_by_label("a").y == [10.0, 20.0]
        assert all(isinstance(v, float) for v in result.series_by_label("a").y)
