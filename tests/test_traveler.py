"""Unit tests for the Basic Traveler (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction, MinFunction, ProductFunction
from repro.core.traveler import BasicTraveler, _CandidateList
from repro.data.generators import correlated, gaussian, uniform
from tests.conftest import assert_correct_topk


class TestCandidateList:
    def test_orders_by_score_then_id(self):
        cl = _CandidateList()
        cl.insert(1.0, 5)
        cl.insert(2.0, 9)
        cl.insert(2.0, 3)
        assert cl.entries() == [(2.0, 3), (2.0, 9), (1.0, 5)]

    def test_pop_best(self):
        cl = _CandidateList()
        cl.insert(1.0, 1)
        cl.insert(3.0, 2)
        assert cl.pop_best() == (3.0, 2)
        assert len(cl) == 1

    def test_truncate(self):
        cl = _CandidateList()
        for i in range(5):
            cl.insert(float(i), i)
        cl.truncate(2)
        assert [rid for _, rid in cl.entries()] == [4, 3]

    def test_truncate_to_zero(self):
        cl = _CandidateList()
        cl.insert(1.0, 1)
        cl.truncate(0)
        assert len(cl) == 0


class TestBasicTraveler:
    def test_rejects_extended_graph(self):
        dataset = uniform(200, 5, seed=2)
        graph = build_extended_graph(dataset, theta=8)
        with pytest.raises(ValueError, match="pseudo"):
            BasicTraveler(graph)

    def test_rejects_nonpositive_k(self, small_dataset):
        traveler = BasicTraveler(build_dominant_graph(small_dataset))
        with pytest.raises(ValueError):
            traveler.top_k(LinearFunction([0.5, 0.5]), 0)

    def test_top1_is_global_max(self, small_dataset):
        traveler = BasicTraveler(build_dominant_graph(small_dataset))
        f = LinearFunction([0.5, 0.5])
        result = traveler.top_k(f, 1)
        assert result.ids == (4,)  # (3,3) -> 3.0, the max

    def test_k_larger_than_dataset(self, small_dataset):
        traveler = BasicTraveler(build_dominant_graph(small_dataset))
        result = traveler.top_k(LinearFunction([1.0, 0.0]), 100)
        assert len(result) == len(small_dataset)

    @pytest.mark.parametrize("maker", [uniform, gaussian, correlated])
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_matches_bruteforce(self, maker, k):
        dataset = maker(200, 3, seed=11)
        traveler = BasicTraveler(build_dominant_graph(dataset))
        f = LinearFunction([0.5, 0.3, 0.2])
        assert_correct_topk(traveler.top_k(f, k), dataset, f, k)

    def test_scores_non_increasing(self):
        dataset = uniform(100, 2, seed=4)
        result = BasicTraveler(build_dominant_graph(dataset)).top_k(
            LinearFunction([0.7, 0.3]), 20
        )
        assert list(result.scores) == sorted(result.scores, reverse=True)

    def test_nonlinear_monotone_functions(self):
        # DG's distinguishing feature vs ONION/PREFER/AppRI.
        dataset = uniform(150, 3, seed=6)
        traveler = BasicTraveler(build_dominant_graph(dataset))
        for f in (MinFunction(), ProductFunction([1.0, 1.0, 1.0])):
            assert_correct_topk(traveler.top_k(f, 10), dataset, f, 10)

    def test_search_space_less_than_full_scan(self):
        dataset = uniform(500, 3, seed=8)
        result = BasicTraveler(build_dominant_graph(dataset)).top_k(
            LinearFunction([0.4, 0.4, 0.2]), 10
        )
        assert result.stats.computed < len(dataset) / 2

    def test_only_first_layer_computed_for_k1(self):
        dataset = uniform(200, 2, seed=9)
        graph = build_dominant_graph(dataset)
        result = BasicTraveler(graph).top_k(LinearFunction([0.5, 0.5]), 1)
        assert result.stats.computed == len(graph.layer(0))

    def test_computed_ids_tracked(self, small_dataset):
        traveler = BasicTraveler(build_dominant_graph(small_dataset))
        result = traveler.top_k(LinearFunction([0.5, 0.5]), 2)
        assert result.ids[0] in result.stats.computed_ids

    def test_child_computed_only_after_all_parents_answered(self):
        # Record (1,1) has parents (2,1.5) and (1.5,2); with a query that
        # ranks (2,1.5) first but (1.5,2) below (3,0), the child must not
        # be scored at step 1.
        dataset = Dataset([
            [2.0, 1.5],   # 0
            [1.5, 2.0],   # 1
            [3.0, 0.0],   # 2
            [1.0, 1.0],   # 3: child of 0 and 1
        ])
        graph = build_dominant_graph(dataset)
        assert graph.parents_of(3) == frozenset({0, 1})
        f = LinearFunction([0.9, 0.1])
        result = BasicTraveler(graph).top_k(f, 2)
        # top-2 = 2 (2.7), 0 (1.95); child 3 (1.0) never needed.
        assert 3 not in result.stats.computed_ids

    def test_deterministic_tie_break_by_id(self):
        dataset = Dataset([[1.0, 1.0], [1.0, 1.0], [0.5, 0.5]])
        result = BasicTraveler(build_dominant_graph(dataset)).top_k(
            LinearFunction([0.5, 0.5]), 1
        )
        assert result.ids == (0,)

    def test_graph_property(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        assert BasicTraveler(graph).graph is graph

    def test_repeated_queries_are_independent(self):
        dataset = uniform(100, 3, seed=13)
        traveler = BasicTraveler(build_dominant_graph(dataset))
        f = LinearFunction([0.5, 0.25, 0.25])
        first = traveler.top_k(f, 5)
        second = traveler.top_k(f, 5)
        assert first.ids == second.ids
        assert first.stats.computed == second.stats.computed
