"""Smoke tests running every example script end to end.

Examples are the deliverable users copy from; each must run cleanly and
print the landmark lines its scenario promises.  The heavier scripts get
generous but bounded timeouts.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["Dominant Graph layers", "Top-2", "records scored"]),
    ("job_search.py", ["Applicant A", "Applicant C", "postings"]),
    ("network_monitoring.py", ["top-5 suspicious", "scores agree"]),
    ("high_dimensional.py", ["2-way", "TA", "agree on the top-10: True"]),
    ("dynamic_inventory.py", ["validated vs rebuild", "mark_deleted"]),
    ("paged_storage.py", ["page I/Os", "layer-clustered"]),
]


@pytest.mark.parametrize("script,landmarks", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, landmarks):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=540,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for landmark in landmarks:
        assert landmark in completed.stdout, (script, landmark)
