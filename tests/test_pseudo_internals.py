"""Tests for pseudo-record construction internals (Section IV-A machinery)."""

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph
from repro.core.dominance import dominates
from repro.core.pseudo import (
    _merge_dominated,
    count_pseudo_levels,
    extend_with_pseudo_levels,
    pseudo_parent_vector,
)
from repro.data.generators import all_skyline


class TestMergeDominated:
    def test_no_dominance_keeps_all(self):
        vectors = np.array([[3.0, 0.0], [0.0, 3.0], [2.0, 2.0]])
        kept, owner = _merge_dominated(vectors)
        assert kept.tolist() == [0, 1, 2]
        assert owner.tolist() == [0, 1, 2]

    def test_dominated_vector_mapped_to_dominator(self):
        vectors = np.array([[3.0, 3.0], [1.0, 1.0]])
        kept, owner = _merge_dominated(vectors)
        assert kept.tolist() == [0]
        assert owner[1] == 0

    def test_duplicates_collapse(self):
        vectors = np.array([[2.0, 2.0], [2.0, 2.0], [2.0, 2.0]])
        kept, owner = _merge_dominated(vectors)
        assert len(kept) == 1
        survivor = kept[0]
        assert all(owner[i] == survivor for i in range(3))

    def test_transitive_chain_maps_to_top(self):
        vectors = np.array([[3.0, 3.0], [2.0, 2.0], [1.0, 1.0]])
        kept, owner = _merge_dominated(vectors)
        assert kept.tolist() == [0]
        assert owner.tolist() == [0, 0, 0]

    def test_owner_always_kept(self, rng):
        vectors = rng.integers(0, 4, size=(30, 3)).astype(float)
        kept, owner = _merge_dominated(vectors)
        kept_set = set(kept.tolist())
        for i in range(30):
            assert int(owner[i]) in kept_set

    def test_owner_covers_victim(self, rng):
        vectors = rng.integers(0, 4, size=(30, 3)).astype(float)
        kept, owner = _merge_dominated(vectors)
        for i in range(30):
            j = int(owner[i])
            if i == j:
                continue
            # Owner dominates or duplicates the victim.
            assert dominates(vectors[j], vectors[i]) or np.array_equal(
                vectors[j], vectors[i]
            )


class TestPseudoParentVector:
    def test_single_member(self):
        parent = pseudo_parent_vector(np.array([[1.0, 2.0]]))
        assert np.all(parent > [1.0, 2.0])
        np.testing.assert_allclose(parent, [1.0, 2.0], rtol=1e-6)

    def test_negative_values(self):
        parent = pseudo_parent_vector(np.array([[-5.0, -2.0], [-3.0, -9.0]]))
        assert np.all(parent > [-3.0, -2.0])


class TestLevelStacking:
    def test_levels_shrink_geometrically(self):
        dataset = all_skyline(256, 3, seed=1)
        graph = build_dominant_graph(dataset)
        extend_with_pseudo_levels(graph, theta=4)
        sizes = graph.layer_sizes()
        levels = count_pseudo_levels(graph)
        assert levels >= 2
        for i in range(levels - 1):
            assert sizes[i] < sizes[i + 1]

    def test_max_levels_cap(self):
        dataset = all_skyline(64, 3, seed=2)
        graph = build_dominant_graph(dataset)
        added = extend_with_pseudo_levels(graph, theta=2, max_levels=1)
        assert added == 1

    def test_idempotent_when_top_fits(self):
        dataset = all_skyline(50, 3, seed=3)
        graph = build_dominant_graph(dataset)
        extend_with_pseudo_levels(graph, theta=8)
        before = graph.layer_sizes()
        assert extend_with_pseudo_levels(graph, theta=8) == 0
        assert graph.layer_sizes() == before

    def test_each_real_record_has_one_cluster_parent_initially(self):
        # Cluster wiring: most layer-1 records keep exactly one pseudo
        # parent (merges can add more via inheritance, never less).
        dataset = all_skyline(120, 3, seed=4)
        graph = build_dominant_graph(dataset)
        extend_with_pseudo_levels(graph, theta=8)
        levels = count_pseudo_levels(graph)
        first_real = levels
        parent_counts = [
            len(graph.parents_of(rid)) for rid in graph.layer(first_real)
        ]
        assert min(parent_counts) >= 1
        assert np.mean(parent_counts) < 3.0  # sparse, not all-dominators
