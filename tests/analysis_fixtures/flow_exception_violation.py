"""Fixture: ``flow-exception-escape`` — an untyped error leaves the API.

``serve_query`` is public and lets ``RuntimeError`` escape; the error
contract allows only ``repro.errors`` types and conventional builtins.
Exactly one violation, on the marked line.
"""


def serve_query(records):
    """Public API whose failure mode is an untyped RuntimeError."""
    if not records:
        raise RuntimeError("no records loaded")  # VIOLATION
    return records[0]
