"""Fixture: writable mapping and mutated mapped views (mmap-discipline)."""

import mmap

import numpy as np

from repro.store.mapped import attach_store, open_store


def writable_mapping(fd):
    return mmap.mmap(fd, 0, access=mmap.ACCESS_WRITE)  # VIOLATION


def scribble(path, handle):
    store = open_store(path)
    values = store.section("values")
    values.setflags(write=True)  # VIOLATION
    values[0] = np.float64(0.0)  # VIOLATION
    snapshot = attach_store(handle)
    snapshot.compiled.record_ids[0] = -1  # VIOLATION
    return store
