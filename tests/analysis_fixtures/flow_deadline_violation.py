"""Fixture: ``flow-deadline-propagation`` — a hole on the query path.

Linted as ``serve/index.py`` so the class below *is* the serving entry
point.  ``_wait_for_slot`` sits between ``query()`` and a sleep but has
no deadline-shaped parameter — nothing can thread the budget through
it.  Exactly one violation, on the marked line.
"""

import time


class ServingIndex:
    """Mini serving index whose wait helper cannot carry the deadline."""

    def query(self, function, k, deadline=None):
        """Entry point: accepts the request deadline."""
        if deadline is not None:
            deadline.check(stage="serve")
        return self._wait_for_slot(k)

    def _wait_for_slot(self, k):  # VIOLATION
        """Poll for capacity with no way to receive the budget."""
        time.sleep(0.01)
        return k
