"""Fixture: appending to the WAL outside the writer path (writer-discipline)."""


class SneakyIndex:
    def record_note(self, note):
        self._wal.append({"op": "note", "text": note})  # VIOLATION
