"""Fixture: mutated published overlay, unclamped fold (overlay-discipline)."""

import numpy as np

from repro.core.overlay import DeltaOverlay
from repro.store.deltastore import load_delta_store


def tamper_with_published(builder, base):
    overlay = builder.freeze()
    overlay.delta_ids[0] = -1  # VIOLATION
    overlay.deleted_ids = np.empty(0, dtype=np.intp)  # VIOLATION
    overlay.delta_values.setflags(write=True)  # VIOLATION
    return overlay


def tamper_with_loaded(path):
    loaded = load_delta_store(path)
    loaded.delta_values[0] = 0.0  # VIOLATION
    return loaded


def tamper_with_constructed(ids, values):
    fresh = DeltaOverlay(
        delta_ids=ids,
        delta_values=values,
        deleted_ids=np.empty(0, dtype=np.intp),
    )
    fresh.delta_ids += 1  # VIOLATION
    return fresh


class SloppyCompactor:
    def __init__(self, owner):
        self._owner = owner
        self.lock_timeout = 1.0

    def _run(self):
        while True:
            self._owner.compact()  # VIOLATION

    def compact_once(self):
        return self._owner._timed_compact()  # VIOLATION
