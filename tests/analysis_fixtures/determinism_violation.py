"""Fixture: iterating a layer set in hash order (determinism)."""


def first_layer_ids(graph):
    out = []
    for rid in graph.layer(0):  # VIOLATION
        out.append(rid)
    return out
