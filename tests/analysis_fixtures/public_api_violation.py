"""Fixture: a public function with no docstring (public-api)."""


def exposed(x: int) -> int:  # VIOLATION
    return x + 1
