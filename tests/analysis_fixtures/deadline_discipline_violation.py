"""Fixture: accepted-then-dropped deadlines (deadline-discipline)."""


def admit(request, deadline=None):  # VIOLATION
    if deadline is not None:
        pass  # a bare test never spends, enforces, or forwards the budget
    return request


def dispatch(task, *, deadline_ms=None):  # VIOLATION
    queue = [task]
    while queue:
        queue.pop()


def honoured(task, deadline=None):
    if deadline is not None:
        deadline.check(stage="fixture")
    return run(task, deadline=deadline)


def run(task, deadline):
    return task, deadline
