"""Fixture: scoring records without charging a counter (guard-coverage)."""


def score_all(function, vectors):
    return [function(v) for v in vectors]  # VIOLATION
