"""Fixture: a blanket except swallowing every failure (typed-errors)."""


def read_or_none(path):
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except Exception:  # VIOLATION
        return None
