"""Fixture: a query entry point that drops the caller's counter (stats-threading)."""


def top_k(graph, function, k):  # VIOLATION
    return sorted(function(graph.vector(rid)) for rid in graph.real_ids())[:k]
