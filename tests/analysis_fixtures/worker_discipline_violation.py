"""Fixture: global RNG and shared-snapshot mutation in a worker (worker-discipline)."""

import numpy as np

from repro.parallel.shm import attach_snapshot

_RNG = np.random.default_rng(0)  # VIOLATION


def corrupt(handle):
    snapshot = attach_snapshot(handle)
    snapshot.compiled.values.setflags(write=True)  # VIOLATION
    snapshot.compiled.values[0, 0] = _RNG.standard_normal()  # VIOLATION
    return snapshot
