"""Callee side of the call-graph fixture: a function and a class."""


def score(x):
    """Score one value."""
    return x * 2.0


class Meter:
    """Counts how often it is bumped."""

    def __init__(self):
        """Start at zero."""
        self.total = 0

    def bump(self, amount):
        """Charge ``amount`` to the meter."""
        self.total += amount
        return self.total
