"""Caller side of the call-graph fixture: every import shape once."""

from . import alpha as core
from .alpha import Meter
from .alpha import score as rank


def use_from_import(x):
    """Call through an aliased from-import (``score as rank``)."""
    return rank(x)


def use_module_alias(x):
    """Call through a module alias (``from . import alpha as core``)."""
    return core.score(x)


def use_method(x):
    """Call a method on a constructed local (typed receiver)."""
    meter = Meter()
    return meter.bump(x)


def use_dynamic(chooser):
    """A computed callable no static resolver can pin down."""
    picked = chooser()
    return picked(1)
