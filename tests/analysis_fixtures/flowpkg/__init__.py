"""Mini-package fixture for the call-graph builder tests.

Loaded with the flowpkg directory as the package root, so ``alpha.py``
indexes as ``repro.alpha`` and ``beta.py`` as ``repro.beta`` — small
enough to assert individual edges, rich enough to exercise from-imports,
aliased imports, module aliases, method resolution through a constructed
local, and an honestly-unresolvable dynamic call.
"""
