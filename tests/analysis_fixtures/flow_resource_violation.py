"""Fixture: ``flow-resource-lifecycle`` — an acquired handle is dropped.

``leak_segment`` acquires a shared-memory handle and neither releases
it, returns it, nor hands it to an owner on any path.  Exactly one
violation, on the marked line.
"""


def export_snapshot(payload):
    """Stand-in acquirer (the real one lives in ``repro.parallel.shm``)."""
    return object()


def leak_segment(payload):
    """Acquire a segment, then forget it on every path."""
    handle = export_snapshot(payload)  # VIOLATION
    return payload
