"""Fixture: a numpy constructor with platform-dependent dtype (dtype-discipline)."""

import numpy as np


def blank_block(n):
    return np.zeros((n, 4))  # VIOLATION
