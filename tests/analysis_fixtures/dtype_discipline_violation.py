"""Fixture: inferred dtypes and stray float32 (dtype-discipline)."""

import numpy as np


def blank_block(n):
    return np.zeros((n, 4))  # VIOLATION


def promote_for_speed(block):
    return block.astype(np.float32)  # VIOLATION


def _f32_shrink(block):
    # Containment control: float32 inside a designated fast-lane
    # function is the sanctioned pattern and must NOT be flagged.
    return np.asarray(block, dtype=np.float32)
