"""Fixture: writes into a compiled snapshot's arrays (snapshot-immutability)."""


def poke(graph):
    snapshot = graph.compile()
    snapshot.values[0] = 99.0  # VIOLATION
    return snapshot
