"""Unit tests for the synthetic Server dataset (KDD Cup '99 stand-in)."""

import numpy as np
import pytest

from repro.data.server import ATTRIBUTE_NAMES, PAPER_CARDINALITIES, server_dataset


class TestServerDataset:
    def test_shape_and_names(self):
        ds = server_dataset(500, seed=1)
        assert len(ds) == 500
        assert ds.dims == 3
        assert ds.attribute_names == ATTRIBUTE_NAMES

    def test_cardinalities_match_paper_at_scale(self):
        # With n well above each attribute cardinality, the distinct
        # counts must equal the paper's 569 / 1855 / 256.
        ds = server_dataset(4000, seed=2)
        for d, cardinality in enumerate(PAPER_CARDINALITIES):
            distinct = len(np.unique(ds.values[:, d]))
            assert distinct == min(cardinality, 4000), (d, distinct)

    def test_cardinalities_clipped_at_small_n(self):
        ds = server_dataset(100, seed=3)
        for d in range(3):
            assert len(np.unique(ds.values[:, d])) <= 100

    def test_values_are_nonnegative_integers(self):
        ds = server_dataset(300, seed=4)
        assert np.all(ds.values >= 0)
        np.testing.assert_array_equal(ds.values, np.rint(ds.values))

    def test_positive_cross_correlation(self):
        ds = server_dataset(3000, seed=5)
        count, srv, dest = ds.values.T
        assert np.corrcoef(count, srv)[0, 1] > 0.5
        assert np.corrcoef(count, dest)[0, 1] > 0.3

    def test_heavy_per_column_duplication(self):
        # The property that stresses dominance indexes: each attribute
        # takes far fewer values than there are records, so ties abound.
        n = 2000
        ds = server_dataset(n, seed=6)
        for d, cardinality in enumerate(PAPER_CARDINALITIES):
            distinct = len(np.unique(ds.values[:, d]))
            assert distinct <= cardinality < n

    def test_deterministic_by_seed(self):
        a = server_dataset(200, seed=7).values
        b = server_dataset(200, seed=7).values
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            server_dataset(0)

    def test_quantization_preserves_order(self):
        # Dominance induced by the quantized columns must be consistent:
        # quantization is rank-binning, so it never inverts an order.
        from repro.data.server import _quantize_to_cardinality

        rng = np.random.default_rng(8)
        column = rng.lognormal(size=500)
        quantized = _quantize_to_cardinality(column, 50)
        order = np.argsort(column)
        assert np.all(np.diff(quantized[order]) >= 0)

    def test_quantization_merges_equal_values(self):
        from repro.data.server import _quantize_to_cardinality

        column = np.array([1.0, 1.0, 1.0, 2.0, 2.0, 3.0])
        quantized = _quantize_to_cardinality(column, 6)
        assert quantized[0] == quantized[1] == quantized[2]
        assert quantized[3] == quantized[4]
        assert quantized[5] > quantized[3] > quantized[0]
