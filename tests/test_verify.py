"""Unit tests for the structured index verifier."""

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.dataset import Dataset
from repro.core.maintenance import delete_record, insert_record, mark_deleted
from repro.core.verify import Issue, format_issues, verify_graph
from repro.data.generators import all_skyline, uniform


class TestCleanGraphs:
    def test_plain_graph_clean(self):
        graph = build_dominant_graph(uniform(100, 3, seed=1))
        assert verify_graph(graph) == []

    def test_extended_graph_clean(self):
        graph = build_extended_graph(all_skyline(80, 3, seed=2), theta=8)
        assert verify_graph(graph) == []

    def test_after_maintenance_clean(self):
        dataset = uniform(120, 3, seed=3)
        graph = build_dominant_graph(dataset, record_ids=range(100))
        for rid in range(100, 120):
            insert_record(graph, rid)
        for rid in range(0, 20):
            delete_record(graph, rid)
        assert verify_graph(graph) == []

    def test_mark_deleted_records_allowed(self):
        graph = build_dominant_graph(uniform(50, 2, seed=4))
        mark_deleted(graph, 0)
        assert verify_graph(graph) == []

    def test_format_ok(self):
        assert "index OK" in format_issues([])


class TestDetection:
    def test_detects_bad_edge_span(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        graph.add_edge(0, 3)  # layer 0 -> layer 2
        codes = {issue.code for issue in verify_graph(graph)}
        assert "edge-span" in codes

    def test_detects_missing_dominator_edge(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        graph.remove_edge(5, 3)
        codes = {issue.code for issue in verify_graph(graph)}
        assert "incomplete-parents" in codes

    def test_detects_orphan(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        graph.remove_edge(5, 3)
        graph.remove_edge(2, 3)
        codes = {issue.code for issue in verify_graph(graph)}
        assert "orphan" in codes

    def test_detects_dangling_child_edge(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        graph.add_edge(0, 9999)  # endpoint placed in no layer
        issues = verify_graph(graph)
        codes = {issue.code for issue in issues}
        assert "dangling-edge" in codes
        assert any(issue.record_id == 9999 for issue in issues)

    def test_detects_dangling_parent_edge(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        graph.add_edge(7777, 3)
        codes = {issue.code for issue in verify_graph(graph)}
        assert "dangling-edge" in codes

    def test_edge_endpoints_enumerates_both_maps(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        graph.add_edge(0, 9999)
        assert 9999 in graph.edge_endpoints()
        assert 0 in graph.edge_endpoints()

    def test_detects_intra_layer_dominance(self):
        dataset = Dataset([[2.0, 2.0], [1.0, 1.0]])
        graph = build_dominant_graph(dataset)
        graph.move_record(1, 0)
        codes = {issue.code for issue in verify_graph(graph)}
        assert "intra-layer" in codes

    def test_detects_empty_layer(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        graph.ensure_layers(10)
        codes = {issue.code for issue in verify_graph(graph)}
        assert "empty-layer" in codes

    def test_max_issues_caps_output(self):
        dataset = uniform(60, 2, seed=5)
        graph = build_dominant_graph(dataset)
        # Break many parent sets at once.
        for rid in list(graph.iter_records()):
            for child in list(graph.children_of(rid)):
                graph.remove_edge(rid, child)
        issues = verify_graph(graph, max_issues=5)
        assert len(issues) == 5

    def test_issue_str(self):
        issue = Issue(code="orphan", message="no parent", record_id=7)
        assert "orphan" in str(issue) and "record 7" in str(issue)

    def test_format_lists_each_issue(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        graph.remove_edge(5, 3)
        text = format_issues(verify_graph(graph))
        assert "issue(s) found" in text
