"""Moderate-scale soak tests: bigger inputs, end-to-end consistency.

Larger than the unit suites (a few thousand records) but still seconds,
these catch problems that only appear with depth: long layer chains, wide
tie groups, deep maintenance cascades, and long query sequences against
one index.
"""

import random

import numpy as np
import pytest

from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_extended_graph
from repro.core.functions import LinearFunction
from repro.core.maintenance import delete_record, insert_record
from repro.data.generators import correlated, uniform
from repro.data.queries import random_queries
from repro.data.server import server_dataset


class TestScaleQueries:
    def test_5000_records_many_queries(self):
        dataset = uniform(5000, 3, seed=1)
        graph = build_extended_graph(dataset, theta=32)
        traveler = AdvancedTraveler(graph)
        for query in random_queries(3, 10, seed=2):
            k = 25
            result = traveler.top_k(query, k)
            expected = np.sort(query.score_many(dataset.values))[::-1][:k]
            np.testing.assert_allclose(
                sorted(result.scores, reverse=True), expected
            )
            assert result.stats.computed < len(dataset) / 4

    def test_deep_correlated_chains(self):
        # Correlated data produces very deep graphs (hundreds of layers).
        dataset = correlated(3000, 3, seed=3)
        graph = build_extended_graph(dataset, theta=32)
        assert graph.num_layers > 50
        traveler = AdvancedTraveler(graph)
        f = LinearFunction([0.5, 0.3, 0.2])
        result = traveler.top_k(f, 200)
        expected = np.sort(f.score_many(dataset.values))[::-1][:200]
        np.testing.assert_allclose(sorted(result.scores, reverse=True), expected)

    def test_wide_tie_groups(self):
        dataset = server_dataset(4000, seed=4)
        graph = build_extended_graph(dataset, theta=32)
        traveler = AdvancedTraveler(graph)
        f = LinearFunction([0.4, 0.3, 0.3])
        result = traveler.top_k(f, 50)
        expected = np.sort(f.score_many(dataset.values))[::-1][:50]
        np.testing.assert_allclose(sorted(result.scores, reverse=True), expected)


class TestScaleMaintenance:
    def test_long_churn_session(self):
        dataset = uniform(1500, 3, seed=5)
        graph = build_extended_graph(dataset, theta=32, record_ids=range(1000))
        rng = random.Random(5)
        live = set(range(1000))
        pending = list(range(1000, 1500))
        for step in range(600):
            if pending and (step % 2 == 0 or len(live) < 500):
                rid = pending.pop()
                insert_record(graph, rid)
                live.add(rid)
            else:
                victim = rng.choice(sorted(live))
                delete_record(graph, victim)
                live.remove(victim)
        graph.validate()
        assert sorted(graph.real_ids()) == sorted(live)
        f = LinearFunction([0.5, 0.3, 0.2])
        result = AdvancedTraveler(graph).top_k(f, 20)
        ids = sorted(live)
        expected = np.sort(f.score_many(dataset.values[ids]))[::-1][:20]
        np.testing.assert_allclose(sorted(result.scores, reverse=True), expected)
