"""Unit tests for the MBR substrate."""

import numpy as np
import pytest

from repro.spatial.mbr import MBR


class TestConstruction:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            MBR(np.array([2.0, 0.0]), np.array([1.0, 1.0]))

    def test_from_point_degenerate(self):
        box = MBR.from_point(np.array([1.0, 2.0]))
        assert box.area() == 0.0
        assert box.contains_point(np.array([1.0, 2.0]))

    def test_from_points(self):
        box = MBR.from_points(np.array([[0.0, 5.0], [3.0, 1.0]]))
        np.testing.assert_array_equal(box.lower, [0.0, 1.0])
        np.testing.assert_array_equal(box.upper, [3.0, 5.0])

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            MBR.from_points(np.empty((0, 2)))


class TestGeometry:
    def test_area(self):
        assert MBR(np.zeros(2), np.array([2.0, 3.0])).area() == 6.0

    def test_margin(self):
        assert MBR(np.zeros(2), np.array([2.0, 3.0])).margin() == 5.0

    def test_union(self):
        a = MBR(np.zeros(2), np.ones(2))
        b = MBR(np.array([2.0, -1.0]), np.array([3.0, 0.5]))
        u = a.union(b)
        np.testing.assert_array_equal(u.lower, [0.0, -1.0])
        np.testing.assert_array_equal(u.upper, [3.0, 1.0])

    def test_enlargement_zero_for_contained(self):
        big = MBR(np.zeros(2), np.array([10.0, 10.0]))
        small = MBR(np.ones(2), np.array([2.0, 2.0]))
        assert big.enlargement(small) == 0.0

    def test_enlargement_positive_outside(self):
        a = MBR(np.zeros(2), np.ones(2))
        b = MBR.from_point(np.array([2.0, 2.0]))
        assert a.enlargement(b) > 0.0

    def test_intersects(self):
        a = MBR(np.zeros(2), np.array([2.0, 2.0]))
        b = MBR(np.ones(2), np.array([3.0, 3.0]))
        c = MBR(np.array([5.0, 5.0]), np.array([6.0, 6.0]))
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c)

    def test_intersects_boundary_touch(self):
        a = MBR(np.zeros(2), np.ones(2))
        b = MBR(np.ones(2), np.array([2.0, 2.0]))
        assert a.intersects(b)

    def test_contains_point_boundary(self):
        box = MBR(np.zeros(2), np.ones(2))
        assert box.contains_point(np.array([1.0, 0.0]))
        assert not box.contains_point(np.array([1.1, 0.5]))

    def test_min_distance_sq_inside_is_zero(self):
        box = MBR(np.zeros(2), np.ones(2))
        assert box.min_distance_sq(np.array([0.5, 0.5])) == 0.0

    def test_min_distance_sq_outside(self):
        box = MBR(np.zeros(2), np.ones(2))
        assert box.min_distance_sq(np.array([2.0, 0.5])) == pytest.approx(1.0)
        assert box.min_distance_sq(np.array([2.0, 2.0])) == pytest.approx(2.0)

    def test_l1_to_reference(self):
        box = MBR(np.zeros(2), np.array([3.0, 4.0]))
        ref = np.array([5.0, 5.0])
        assert box.min_l1_to_origin_after_shift(ref) == pytest.approx(3.0)
