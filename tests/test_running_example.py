"""Paper trace tests: the running example of Section II (Figs. 1-3).

The OCR of the paper garbles Fig. 1a's value table, so this file builds a
dataset engineered to satisfy every structural fact the text states about
the running example, then checks the Basic Traveler reproduces the
narrated trace exactly:

- records 3, 4 and 11 form the first DG layer;
- record 4 is a parent of records 6 and 10; record 10 also has parent 11;
- under F = 0.6x + 0.4y: F(4) > F(3) > F(11), the top-1 is record 4;
- record 6 is computed after 4 is answered; record 10 is *not* computed
  because its parent 11 is not in RS;
- top-2 = (4, 6) after accessing only 3, 4, 11 and 6.
"""

import pytest

from repro.core.builder import build_dominant_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.traveler import BasicTraveler

# Index i holds TID i+1; values engineered to the constraints above.
ROWS = {
    3: (430.0, 100.0),   # TID 3: layer 1
    4: (400.0, 300.0),   # TID 4: layer 1, top-1 under F
    11: (100.0, 500.0),  # TID 11: layer 1
    6: (380.0, 250.0),   # TID 6: child of 4 only; second best overall
    10: (90.0, 280.0),   # TID 10: child of 4 and 11
    1: (300.0, 100.0),   # dominated by 3 -> layer 2, child of 3 only
    2: (380.0, 90.0),    # dominated by 6 -> layer 3 (not a child of 4)
    5: (200.0, 200.0),   # dominated by 6 -> layer 3
    7: (80.0, 400.0),    # dominated by 11 -> layer 2
    8: (60.0, 240.0),    # dominated by 10 (90,280) -> layer 3
    9: (150.0, 90.0),    # deep record
    12: (50.0, 50.0),    # deep record
    13: (20.0, 30.0),    # deepest
}
F = LinearFunction([0.6, 0.4])


@pytest.fixture
def example():
    values = [ROWS[i + 1] for i in range(13)]
    return Dataset(values, labels=[i + 1 for i in range(13)])


def tid(dataset, record_id):
    return dataset.label(record_id)


def rid_of(dataset, tid_wanted):
    return tid_wanted - 1


class TestStructure:
    def test_first_layer_is_3_4_11(self, example):
        graph = build_dominant_graph(example)
        first = {tid(example, r) for r in graph.layer(0)}
        assert first == {3, 4, 11}

    def test_4_is_parent_of_6_and_10(self, example):
        graph = build_dominant_graph(example)
        children = {tid(example, c) for c in graph.children_of(rid_of(example, 4))}
        assert {6, 10} <= children

    def test_10_has_parents_4_and_11(self, example):
        graph = build_dominant_graph(example)
        parents = {tid(example, p) for p in graph.parents_of(rid_of(example, 10))}
        assert parents == {4, 11}

    def test_graph_validates(self, example):
        build_dominant_graph(example).validate()


class TestQueryTrace:
    def test_first_layer_score_order(self, example):
        scores = {t: F(example.vector(rid_of(example, t))) for t in (3, 4, 11)}
        assert scores[4] > scores[3] > scores[11]

    def test_top2_is_4_then_6(self, example):
        graph = build_dominant_graph(example)
        result = BasicTraveler(graph).top_k(F, 2)
        assert [tid(example, r) for r in result.ids] == [4, 6]

    def test_access_trace_matches_paper(self, example):
        # "we obtain the top-2 answers only accessing records 3, 4, 11
        # (layer 1) and 6" — 10 is skipped because parent 11 is not in RS.
        graph = build_dominant_graph(example)
        result = BasicTraveler(graph).top_k(F, 2)
        accessed = {tid(example, r) for r in result.stats.computed_ids}
        assert accessed == {3, 4, 11, 6}
        assert result.stats.computed == 4

    def test_record_10_not_computed(self, example):
        graph = build_dominant_graph(example)
        result = BasicTraveler(graph).top_k(F, 2)
        assert rid_of(example, 10) not in result.stats.computed_ids

    def test_lemma_2_1_holds(self, example):
        # Every parent of a top-k record is in the top-(k-1).
        graph = build_dominant_graph(example)
        for k in range(2, 8):
            result = BasicTraveler(graph).top_k(F, k)
            answer = set(result.ids)
            for rank, rid in enumerate(result.ids):
                top_before = set(result.ids[:rank])
                for parent in graph.parents_of(rid):
                    assert parent in top_before, (
                        f"parent {parent} of rank-{rank + 1} answer missing"
                    )
            assert len(answer) == k
