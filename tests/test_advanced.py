"""Unit tests for the Advanced Traveler (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.functions import LinearFunction, MinFunction
from repro.data.generators import all_skyline, correlated, gaussian, uniform
from tests.conftest import assert_correct_topk


class TestAdvancedTraveler:
    def test_rejects_nonpositive_k(self, small_dataset):
        traveler = AdvancedTraveler(build_extended_graph(small_dataset, theta=4))
        with pytest.raises(ValueError):
            traveler.top_k(LinearFunction([0.5, 0.5]), -1)

    def test_works_on_plain_graph(self, small_dataset):
        # On a DG without pseudo records, Advanced == Basic.
        traveler = AdvancedTraveler(build_dominant_graph(small_dataset))
        f = LinearFunction([0.6, 0.4])
        result = traveler.top_k(f, 3)
        assert_correct_topk(result, small_dataset, f, 3)

    @pytest.mark.parametrize("maker", [uniform, gaussian, correlated])
    @pytest.mark.parametrize("k", [1, 10, 60])
    def test_matches_bruteforce(self, maker, k):
        dataset = maker(250, 4, seed=21)
        traveler = AdvancedTraveler(build_extended_graph(dataset, theta=8))
        f = LinearFunction([0.4, 0.3, 0.2, 0.1])
        assert_correct_topk(traveler.top_k(f, k), dataset, f, k)

    def test_never_reports_pseudo_records(self):
        dataset = all_skyline(150, 3, seed=1)
        graph = build_extended_graph(dataset, theta=8)
        result = AdvancedTraveler(graph).top_k(LinearFunction([0.5, 0.3, 0.2]), 20)
        assert all(not graph.is_pseudo(rid) for rid in result.ids)
        assert all(rid < len(dataset) for rid in result.ids)

    def test_k_larger_than_dataset(self):
        dataset = all_skyline(30, 3, seed=2)
        graph = build_extended_graph(dataset, theta=4)
        result = AdvancedTraveler(graph).top_k(LinearFunction([0.5, 0.3, 0.2]), 99)
        assert len(result) == 30

    def test_worst_case_all_skyline(self):
        dataset = all_skyline(300, 5, seed=3)
        graph = build_extended_graph(dataset, theta=8)
        f = LinearFunction(np.arange(5, 0, -1) / 15.0)
        assert_correct_topk(AdvancedTraveler(graph).top_k(f, 10), dataset, f, 10)

    def test_nonlinear_function(self):
        dataset = uniform(200, 3, seed=4)
        graph = build_extended_graph(dataset, theta=8)
        f = MinFunction()
        assert_correct_topk(AdvancedTraveler(graph).top_k(f, 8), dataset, f, 8)

    def test_mark_deleted_record_not_reported(self):
        from repro.core.maintenance import mark_deleted

        dataset = uniform(100, 2, seed=5)
        graph = build_dominant_graph(dataset)
        f = LinearFunction([0.5, 0.5])
        traveler = AdvancedTraveler(graph)
        best = traveler.top_k(f, 1).ids[0]
        mark_deleted(graph, best)
        result = traveler.top_k(f, 5)
        assert best not in result.ids
        # remaining answers match brute force over the surviving records
        survivors = [i for i in range(len(dataset)) if i != best]
        expected = sorted(
            f.score_many(dataset.values[survivors]), reverse=True
        )[:5]
        np.testing.assert_allclose(sorted(result.scores, reverse=True), expected)

    def test_access_counts_include_pseudo(self):
        dataset = all_skyline(120, 3, seed=6)
        graph = build_extended_graph(dataset, theta=8)
        result = AdvancedTraveler(graph).top_k(LinearFunction([0.5, 0.3, 0.2]), 5)
        assert result.stats.computed > len(result)
        assert result.stats.pseudo_computed >= 1

    def test_stats_fresh_per_query(self):
        dataset = uniform(150, 3, seed=7)
        traveler = AdvancedTraveler(build_extended_graph(dataset, theta=8))
        f = LinearFunction([0.5, 0.3, 0.2])
        a = traveler.top_k(f, 5)
        b = traveler.top_k(f, 5)
        assert a.stats is not b.stats
        assert a.stats.computed == b.stats.computed

    def test_deep_k_traverses_layers(self):
        dataset = uniform(300, 2, seed=8)
        graph = build_extended_graph(dataset, theta=8)
        f = LinearFunction([0.8, 0.2])
        result = AdvancedTraveler(graph).top_k(f, 150)
        assert_correct_topk(result, dataset, f, 150)
