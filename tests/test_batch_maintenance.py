"""Unit tests for batch maintenance helpers (insert_many / delete_many)."""

import random

from repro.core.builder import build_dominant_graph
from repro.core.maintenance import delete_many, insert_many
from repro.data.generators import uniform


class TestInsertMany:
    def test_equals_rebuild(self):
        dataset = uniform(200, 3, seed=81)
        graph = build_dominant_graph(dataset, record_ids=range(150))
        layers = insert_many(graph, range(150, 200))
        assert len(layers) == 50
        assert graph.layers() == build_dominant_graph(dataset).layers()

    def test_returns_layers(self):
        dataset = uniform(60, 2, seed=82)
        graph = build_dominant_graph(dataset, record_ids=range(50))
        layers = insert_many(graph, range(50, 60))
        # Returned layers are the insertion-time positions; later inserts
        # may bump earlier ones, so the final layer can only be deeper.
        for rid, layer in zip(range(50, 60), layers):
            assert graph.layer_of(rid) >= layer
        graph.validate()

    def test_empty_batch(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        assert insert_many(graph, []) == []


class TestDeleteMany:
    def test_equals_rebuild(self):
        dataset = uniform(200, 3, seed=83)
        graph = build_dominant_graph(dataset)
        rng = random.Random(83)
        victims = rng.sample(range(200), 70)
        delete_many(graph, victims)
        survivors = sorted(graph.real_ids())
        rebuilt = build_dominant_graph(dataset, record_ids=survivors)
        assert graph.layers() == rebuilt.layers()

    def test_empty_batch(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        delete_many(graph, [])
        assert len(graph) == len(small_dataset)
