"""Unit tests for batch maintenance helpers (insert_many / delete_many)."""

import random

import pytest

from repro.core.builder import build_dominant_graph
from repro.core.maintenance import (
    delete_many,
    insert_many,
    validate_delete_batch,
    validate_insert_batch,
)
from repro.data.generators import uniform


class TestInsertMany:
    def test_equals_rebuild(self):
        dataset = uniform(200, 3, seed=81)
        graph = build_dominant_graph(dataset, record_ids=range(150))
        layers = insert_many(graph, range(150, 200))
        assert len(layers) == 50
        assert graph.layers() == build_dominant_graph(dataset).layers()

    def test_returns_layers(self):
        dataset = uniform(60, 2, seed=82)
        graph = build_dominant_graph(dataset, record_ids=range(50))
        layers = insert_many(graph, range(50, 60))
        # Returned layers are the insertion-time positions; later inserts
        # may bump earlier ones, so the final layer can only be deeper.
        for rid, layer in zip(range(50, 60), layers):
            assert graph.layer_of(rid) >= layer
        graph.validate()

    def test_empty_batch(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        assert insert_many(graph, []) == []


class TestAllOrNothing:
    """A rejected batch leaves the index untouched — even its valid prefix.

    Validation runs over the whole batch before any mutation (the
    contract the WAL-backed ServingIndex logs batches under), so a batch
    with one bad id at the *end* must not index the good ids before it.
    """

    @pytest.fixture
    def graph(self):
        dataset = uniform(40, 2, seed=84)
        return build_dominant_graph(dataset, record_ids=range(30))

    @staticmethod
    def fingerprint(graph):
        return (sorted(graph.real_ids()), graph.layers())

    def test_duplicate_in_insert_batch_rejects_whole_batch(self, graph):
        before = self.fingerprint(graph)
        with pytest.raises(ValueError, match="twice"):
            insert_many(graph, [30, 31, 30])
        assert self.fingerprint(graph) == before
        assert 31 not in graph  # the valid prefix was not applied

    def test_already_indexed_id_rejects_whole_batch(self, graph):
        before = self.fingerprint(graph)
        with pytest.raises(ValueError, match="already indexed"):
            insert_many(graph, [30, 31, 5])
        assert self.fingerprint(graph) == before
        assert 30 not in graph and 31 not in graph

    def test_out_of_range_id_rejects_whole_batch(self, graph):
        before = self.fingerprint(graph)
        with pytest.raises(IndexError, match="not a dataset row"):
            insert_many(graph, [30, 99])
        assert self.fingerprint(graph) == before
        assert 30 not in graph

    def test_unindexed_id_rejects_whole_delete_batch(self, graph):
        before = self.fingerprint(graph)
        with pytest.raises(KeyError, match="not indexed"):
            delete_many(graph, [1, 2, 35])
        assert self.fingerprint(graph) == before
        assert 1 in graph and 2 in graph

    def test_duplicate_rejects_whole_delete_batch(self, graph):
        before = self.fingerprint(graph)
        with pytest.raises(ValueError, match="twice"):
            delete_many(graph, [4, 5, 4])
        assert self.fingerprint(graph) == before

    def test_validators_normalize_to_ints(self, graph):
        import numpy as np

        rids = validate_insert_batch(graph, np.array([30, 31]))
        assert rids == [30, 31]
        assert all(type(r) is int for r in rids)
        rids = validate_delete_batch(graph, np.array([3, 4]))
        assert rids == [3, 4]
        assert all(type(r) is int for r in rids)


class TestDeleteMany:
    def test_equals_rebuild(self):
        dataset = uniform(200, 3, seed=83)
        graph = build_dominant_graph(dataset)
        rng = random.Random(83)
        victims = rng.sample(range(200), 70)
        delete_many(graph, victims)
        survivors = sorted(graph.real_ids())
        rebuilt = build_dominant_graph(dataset, record_ids=survivors)
        assert graph.layers() == rebuilt.layers()

    def test_empty_batch(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        delete_many(graph, [])
        assert len(graph) == len(small_dataset)
