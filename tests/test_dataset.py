"""Unit tests for repro.core.dataset."""

import numpy as np
import pytest

from repro.core.dataset import Dataset


class TestConstruction:
    def test_basic_shape(self):
        ds = Dataset([[1.0, 2.0], [3.0, 4.0]])
        assert len(ds) == 2
        assert ds.dims == 2

    def test_values_are_copied(self):
        source = np.array([[1.0, 2.0]])
        ds = Dataset(source)
        source[0, 0] = 99.0
        assert ds.vector(0)[0] == 1.0

    def test_values_are_read_only(self):
        ds = Dataset([[1.0, 2.0]])
        with pytest.raises(ValueError):
            ds.values[0, 0] = 5.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d"):
            Dataset([1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one record"):
            Dataset(np.empty((0, 3)))

    def test_rejects_zero_attributes(self):
        with pytest.raises(ValueError, match="at least one attribute"):
            Dataset(np.empty((3, 0)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            Dataset([[1.0, float("nan")]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            Dataset([[1.0, float("inf")]])

    def test_default_attribute_names(self):
        assert Dataset([[1.0, 2.0, 3.0]]).attribute_names == ("x1", "x2", "x3")

    def test_custom_attribute_names(self):
        ds = Dataset([[1.0, 2.0]], attribute_names=["a", "b"])
        assert ds.attribute_names == ("a", "b")

    def test_attribute_name_count_mismatch(self):
        with pytest.raises(ValueError, match="attribute names"):
            Dataset([[1.0, 2.0]], attribute_names=["only-one"])

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            Dataset([[1.0, 2.0]], labels=["a", "b"])

    def test_integer_input_coerced_to_float(self):
        ds = Dataset([[1, 2], [3, 4]])
        assert ds.values.dtype == np.float64


class TestAccessors:
    def test_vector(self, small_dataset):
        np.testing.assert_array_equal(small_dataset.vector(2), [2.0, 2.0])

    def test_take_preserves_order(self, small_dataset):
        block = small_dataset.take([4, 0])
        np.testing.assert_array_equal(block, [[3.0, 3.0], [4.0, 1.0]])

    def test_label_defaults_to_id(self, small_dataset):
        assert small_dataset.label(3) == 3

    def test_label_custom(self):
        ds = Dataset([[1.0]], labels=["first"])
        assert ds.label(0) == "first"

    def test_iteration_yields_rows(self, small_dataset):
        rows = list(small_dataset)
        assert len(rows) == len(small_dataset)
        np.testing.assert_array_equal(rows[0], [4.0, 1.0])

    def test_equality_by_content(self):
        a = Dataset([[1.0, 2.0]])
        b = Dataset([[1.0, 2.0]])
        c = Dataset([[1.0, 3.0]])
        assert a == b
        assert a != c

    def test_hash_consistent_with_equality(self):
        a = Dataset([[1.0, 2.0]])
        b = Dataset([[1.0, 2.0]])
        assert hash(a) == hash(b)

    def test_repr_mentions_shape(self, small_dataset):
        assert "n=6" in repr(small_dataset)
        assert "m=2" in repr(small_dataset)


class TestProject:
    def test_project_selects_columns(self, small_dataset):
        projected = small_dataset.project([1])
        assert projected.dims == 1
        np.testing.assert_array_equal(projected.values[:, 0],
                                      small_dataset.values[:, 1])

    def test_project_preserves_record_ids(self, small_dataset):
        projected = small_dataset.project([1, 0])
        np.testing.assert_array_equal(projected.vector(2), [2.0, 2.0])
        np.testing.assert_array_equal(projected.vector(0), [1.0, 4.0])

    def test_project_rejects_empty(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.project([])

    def test_project_rejects_out_of_range(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.project([5])

    def test_project_names(self):
        ds = Dataset([[1.0, 2.0]], attribute_names=["a", "b"])
        assert ds.project([1]).attribute_names == ("b",)


class TestAppend:
    def test_with_appended_extends(self, small_dataset):
        grown = small_dataset.with_appended(np.array([[9.0, 9.0]]))
        assert len(grown) == len(small_dataset) + 1
        np.testing.assert_array_equal(grown.vector(len(small_dataset)), [9.0, 9.0])

    def test_with_appended_single_row(self, small_dataset):
        grown = small_dataset.with_appended(np.array([7.0, 8.0]))
        assert len(grown) == len(small_dataset) + 1

    def test_with_appended_dim_mismatch(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.with_appended(np.array([[1.0, 2.0, 3.0]]))

    def test_with_appended_does_not_mutate_original(self, small_dataset):
        before = len(small_dataset)
        small_dataset.with_appended(np.array([[1.0, 1.0]]))
        assert len(small_dataset) == before
