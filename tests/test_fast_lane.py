"""Adversarial coverage for the float32 fast lane's boundary re-check.

The fast lane (:mod:`repro.core.compiled`) scores in float32 and
re-checks every candidate within a proven margin of the k-th score in
exact float64.  Its failure mode, if the margin or the threshold
rounding were wrong, is precisely *near-ties*: records whose exact
scores differ by less than float32 can resolve, or that tie exactly and
straddle the k-th rank.  Every test here builds such data on purpose
and requires bit-identical ``(-score, id)`` answers against the
reference traveler and against the float64 lane (toggled via
``REPRO_FAST_LANE=0``).

The native-kernel flag (``REPRO_NATIVE=1``) is covered at the end: with
numba installed it must be bit-identical too (the margin bound holds for
any summation order); without it the engine must warn once and fall
back to the numpy lane.  CI runs the whole suite under the flag.
"""

import os
import warnings
from unittest import mock

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import native
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.compiled import (
    FAST_LANE_ENV,
    CompiledAdvancedTraveler,
    CompiledBasicTraveler,
    _f32_margin,
    _f32_round_down,
    fast_lane_enabled,
)
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction, MinFunction
from repro.core.maintenance import mark_deleted
from repro.core.traveler import BasicTraveler
from repro.data.generators import uniform

#: A score gap far below float32 resolution at magnitude ~1: the float32
#: lane cannot distinguish records this close, only the exact re-check can.
SUB_F32_GAP = 1e-12


def fast_lane_result(traveler, function, k, **kwargs):
    """Query with the fast lane explicitly enabled."""
    with mock.patch.dict(os.environ, {FAST_LANE_ENV: "1"}):
        assert fast_lane_enabled()
        return traveler.top_k(function, k, **kwargs)


def f64_lane_result(traveler, function, k, **kwargs):
    """Query with the fast lane disabled (pure float64 oracle)."""
    with mock.patch.dict(os.environ, {FAST_LANE_ENV: "0"}):
        assert not fast_lane_enabled()
        return traveler.top_k(function, k, **kwargs)


def assert_bit_identical(reference, result):
    assert reference.ids == result.ids
    assert reference.scores == result.scores


def assert_canonical_tie_order(result):
    """Equal scores must appear in ascending record-id order."""
    for (s_a, i_a), (s_b, i_b) in zip(
        zip(result.scores, result.ids), zip(result.scores[1:], result.ids[1:])
    ):
        assert s_a > s_b or (s_a == s_b and i_a < i_b)


class TestNearTies:
    def make_near_tie_dataset(self):
        """Clusters of records whose exact scores differ by ~1e-12.

        Each cluster shares a base row; members perturb one coordinate
        by ``SUB_F32_GAP``-sized steps.  In float32 every cluster
        collapses to one score, so ranking inside and across the k-th
        boundary is decided entirely by the exact float64 re-check.
        """
        rng = np.random.default_rng(42)
        base = rng.uniform(0.2, 1.0, size=(12, 3))
        rows = []
        for row in base:
            for step in range(5):
                bumped = row.copy()
                bumped[step % 3] += step * SUB_F32_GAP
                rows.append(bumped)
        return Dataset(np.asarray(rows, dtype=np.float64))

    @pytest.mark.parametrize("k", [1, 5, 17, 30, 60])
    def test_sub_float32_gaps_resolved_exactly(self, k):
        graph = build_dominant_graph(self.make_near_tie_dataset())
        snapshot = graph.compile()
        function = LinearFunction([0.4, 0.35, 0.25])
        reference = BasicTraveler(graph).top_k(function, k)
        fast = fast_lane_result(CompiledBasicTraveler(snapshot), function, k)
        oracle = f64_lane_result(CompiledBasicTraveler(snapshot), function, k)
        assert_bit_identical(reference, fast)
        assert_bit_identical(reference, oracle)

    @pytest.mark.parametrize("k", [1, 3, 8, 12, 24])
    def test_duplicate_scores_straddling_kth_rank(self, k):
        """Permuted coordinates give *exactly* equal unit-weight sums.

        With blocks of identical scores wider than 1, most k values cut
        straight through a tie class; the answer set and order must then
        come from ascending record id, in both lanes.
        """
        rng = np.random.default_rng(7)
        base = rng.integers(1, 5, size=(9, 3)).astype(np.float64)
        rows = [np.roll(row, shift) for row in base for shift in range(3)]
        graph = build_dominant_graph(Dataset(np.asarray(rows)))
        snapshot = graph.compile()
        function = LinearFunction([1.0, 1.0, 1.0])
        reference = BasicTraveler(graph).top_k(function, k)
        fast = fast_lane_result(CompiledBasicTraveler(snapshot), function, k)
        assert_bit_identical(reference, fast)
        assert_bit_identical(
            reference, f64_lane_result(CompiledBasicTraveler(snapshot), function, k)
        )
        assert_canonical_tie_order(fast)

    def test_overflow_scale_falls_back_to_f64_lane(self):
        """Data near float32 max must bypass the fast lane, not wrap it."""
        rng = np.random.default_rng(3)
        values = rng.uniform(0.5, 1.0, size=(50, 3)) * 1.0e38
        graph = build_dominant_graph(Dataset(values))
        snapshot = graph.compile()
        function = LinearFunction([0.5, 0.3, 0.2])
        reference = BasicTraveler(graph).top_k(function, 10)
        fast = fast_lane_result(CompiledBasicTraveler(snapshot), function, 10)
        assert_bit_identical(reference, fast)


class TestAcceptanceSweep:
    """plain/pseudo/mark-deleted/where x dims 2-5 x k in {1, 10, 50}."""

    KS = (1, 10, 50)

    def check(self, graph, k, where=None):
        snapshot = graph.compile()
        dims = int(snapshot.values.shape[1])
        rng = np.random.default_rng(dims * 1000 + k)
        for function in (
            LinearFunction(rng.dirichlet(np.ones(dims))),
            MinFunction(),
        ):
            reference = AdvancedTraveler(graph).top_k(function, k, where=where)
            compiled = CompiledAdvancedTraveler(snapshot)
            fast = fast_lane_result(compiled, function, k, where=where)
            oracle = f64_lane_result(compiled, function, k, where=where)
            assert_bit_identical(reference, fast)
            assert_bit_identical(reference, oracle)

    @pytest.mark.parametrize("dims", [2, 3, 4, 5])
    @pytest.mark.parametrize("k", KS)
    def test_plain(self, dims, k):
        self.check(build_dominant_graph(uniform(160, dims, seed=dims)), k)

    @pytest.mark.parametrize("dims", [2, 3, 4, 5])
    @pytest.mark.parametrize("k", KS)
    def test_pseudo_levels(self, dims, k):
        self.check(build_extended_graph(uniform(160, dims, seed=dims), theta=3), k)

    @pytest.mark.parametrize("dims", [2, 3, 4, 5])
    @pytest.mark.parametrize("k", KS)
    def test_mark_deleted(self, dims, k):
        graph = build_extended_graph(uniform(160, dims, seed=dims), theta=4)
        for rid in range(0, 160, 9):
            mark_deleted(graph, rid)
        self.check(graph, k)

    @pytest.mark.parametrize("dims", [2, 3, 4, 5])
    @pytest.mark.parametrize("k", KS)
    def test_where_filtered(self, dims, k):
        graph = build_extended_graph(uniform(160, dims, seed=dims), theta=3)
        self.check(graph, k, where=lambda vector: vector[0] > 400.0)


# Hypothesis sweep: small integer-grid blocks (ties and duplicates are
# frequent) with occasional sub-float32 perturbations.
tie_heavy_blocks = st.integers(min_value=2, max_value=4).flatmap(
    lambda dims: arrays(
        np.float64,
        st.tuples(st.integers(min_value=1, max_value=36), st.just(dims)),
        elements=st.sampled_from(
            [0.0, 1.0, 2.0, 3.0, 1.0 + SUB_F32_GAP, 2.0 - SUB_F32_GAP]
        ),
    )
)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    block=tie_heavy_blocks,
    k=st.integers(min_value=1, max_value=12),
    weight_seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_fast_lane_matches_reference(block, k, weight_seed):
    graph = build_dominant_graph(Dataset(block))
    snapshot = graph.compile()
    dims = block.shape[1]
    weights = np.random.default_rng(weight_seed).dirichlet(np.ones(dims))
    for function in (LinearFunction(weights), MinFunction()):
        reference = BasicTraveler(graph).top_k(function, k)
        compiled = CompiledBasicTraveler(snapshot)
        fast = fast_lane_result(compiled, function, k)
        assert_bit_identical(reference, fast)
        assert_bit_identical(reference, f64_lane_result(compiled, function, k))
        assert_canonical_tie_order(fast)


class TestMargin:
    def test_margin_covers_observed_float32_error(self):
        """The proven bound must dominate the measured error, with room."""
        rng = np.random.default_rng(11)
        values = rng.uniform(0.0, 1000.0, size=(4096, 5))
        weights = rng.dirichlet(np.ones(5), size=8)
        exact = values @ weights.T
        approx = (
            values.astype(np.float32) @ weights.T.astype(np.float32)
        ).astype(np.float64)
        margin = _f32_margin(
            5, np.abs(weights).sum(axis=1), float(np.abs(values).max())
        )
        assert np.all(np.abs(exact - approx) <= margin[None, :])

    def test_margin_grows_with_dims_and_scale(self):
        sums = np.asarray([1.0])
        assert _f32_margin(8, sums, 1.0) > _f32_margin(2, sums, 1.0)
        assert _f32_margin(2, sums, 100.0) > _f32_margin(2, sums, 1.0)

    def test_round_down_never_rounds_up(self):
        for value in (0.1, 1.0 + 1e-9, -0.3, 1e-40, 7.25, np.pi):
            rounded = _f32_round_down(value)
            assert float(rounded) <= value
            assert float(np.nextafter(rounded, np.float32(np.inf))) > value


class TestNativeFlag:
    @pytest.fixture(autouse=True)
    def fresh_kernel_state(self):
        native.reset()
        yield
        native.reset()

    def test_flag_off_means_no_kernel(self):
        with mock.patch.dict(os.environ, {native.NATIVE_ENV: ""}):
            assert not native.requested()
            assert native.kernel() is None

    def test_requested_kernel_is_exact_or_warns_and_falls_back(self):
        """Both sides of the [native] extra, decided by the environment.

        With numba importable the kernel must activate and stay
        bit-identical to the reference; without it the first query warns
        (once) and the numpy lane answers, still bit-identically.
        """
        graph = build_dominant_graph(uniform(200, 3, seed=1))
        snapshot = graph.compile()
        function = LinearFunction([0.5, 0.3, 0.2])
        reference = BasicTraveler(graph).top_k(function, 10)
        with mock.patch.dict(os.environ, {native.NATIVE_ENV: "1"}):
            assert native.requested()
            if native.available():
                result = CompiledBasicTraveler(snapshot).top_k(function, 10)
                assert native.status()["active"]
            else:
                with pytest.warns(RuntimeWarning, match="falling back"):
                    result = CompiledBasicTraveler(snapshot).top_k(function, 10)
                assert not native.status()["active"]
                # The unavailability latch must make later queries silent.
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    again = CompiledBasicTraveler(snapshot).top_k(function, 10)
                assert_bit_identical(reference, again)
        assert_bit_identical(reference, result)

    def test_status_reports_all_three_signals(self):
        with mock.patch.dict(os.environ, {native.NATIVE_ENV: ""}):
            status = native.status()
        assert set(status) == {"requested", "importable", "active"}
        assert status["requested"] is False
        assert status["active"] is False
