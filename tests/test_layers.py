"""Unit tests for repro.core.layers (Definition 2.3)."""

import numpy as np
import pytest

from repro.core.layers import (
    compute_layers,
    layer_indices_by_chains,
    layers_from_indices,
    validate_layers,
)
from repro.data.generators import all_skyline, correlated, gaussian, uniform


class TestComputeLayers:
    def test_small_dataset(self, small_dataset):
        layers = compute_layers(small_dataset.values)
        as_sets = [set(layer.tolist()) for layer in layers]
        assert as_sets == [{0, 1, 4}, {2, 5}, {3}]

    def test_partitions_all_records(self, rng):
        values = rng.uniform(size=(80, 3))
        layers = compute_layers(values)
        ids = sorted(int(i) for layer in layers for i in layer)
        assert ids == list(range(80))

    def test_validates(self, rng):
        values = rng.uniform(size=(60, 2))
        validate_layers(values, compute_layers(values))

    def test_total_order_gives_singleton_layers(self):
        values = np.array([[float(i), float(i)] for i in range(6)])
        layers = compute_layers(values)
        assert [len(l) for l in layers] == [1] * 6
        assert layers[0].tolist() == [5]

    def test_antichain_gives_single_layer(self):
        values = all_skyline(40, 3, seed=1).values
        layers = compute_layers(values)
        assert len(layers) == 1
        assert len(layers[0]) == 40

    def test_single_record(self):
        layers = compute_layers(np.array([[1.0, 2.0]]))
        assert len(layers) == 1 and layers[0].tolist() == [0]

    def test_duplicates_share_a_layer(self):
        values = np.array([[2.0, 2.0], [2.0, 2.0], [1.0, 1.0], [1.0, 1.0]])
        layers = compute_layers(values)
        assert set(layers[0].tolist()) == {0, 1}
        assert set(layers[1].tolist()) == {2, 3}

    def test_custom_skyline_function(self, rng):
        from repro.skyline import as_mask_function, bnl_skyline

        values = rng.uniform(size=(50, 3))
        default = compute_layers(values)
        custom = compute_layers(values, skyline=as_mask_function(bnl_skyline))
        assert [set(a.tolist()) for a in default] == [
            set(b.tolist()) for b in custom
        ]

    def test_broken_skyline_function_raises(self, rng):
        values = rng.uniform(size=(10, 2))
        with pytest.raises(RuntimeError, match="empty maximal set"):
            compute_layers(values, skyline=lambda block: np.zeros(len(block), bool))


class TestChainFormula:
    @pytest.mark.parametrize("maker,dims", [
        (uniform, 2), (uniform, 4), (gaussian, 3), (correlated, 3),
    ])
    def test_agrees_with_peeling(self, maker, dims):
        values = maker(120, dims, seed=3).values
        peeled = compute_layers(values)
        chains = layer_indices_by_chains(values)
        for layer_index, layer in enumerate(peeled, start=1):
            assert all(chains[i] == layer_index for i in layer)

    def test_layers_from_indices_roundtrip(self, rng):
        values = rng.uniform(size=(70, 3))
        chains = layer_indices_by_chains(values)
        grouped = layers_from_indices(chains)
        peeled = compute_layers(values)
        assert [set(a.tolist()) for a in grouped] == [
            set(b.tolist()) for b in peeled
        ]

    def test_empty_indices(self):
        assert layers_from_indices(np.array([], dtype=np.intp)) == []


class TestValidateLayers:
    def test_rejects_missing_record(self, rng):
        values = rng.uniform(size=(10, 2))
        layers = compute_layers(values)
        with pytest.raises(AssertionError, match="cover"):
            validate_layers(values, layers[:-1] if len(layers) > 1 else [])

    def test_rejects_in_layer_dominance(self):
        values = np.array([[2.0, 2.0], [1.0, 1.0]])
        with pytest.raises(AssertionError, match="dominated within"):
            validate_layers(values, [np.array([0, 1])])

    def test_rejects_layer_without_upstream_dominator(self):
        values = np.array([[2.0, 2.0], [3.0, 1.0]])
        # Record 1 is incomparable with record 0, so placing it in layer 2
        # violates the maximal-layer property.
        with pytest.raises(AssertionError, match="no dominator"):
            validate_layers(values, [np.array([0]), np.array([1])])
