"""Unit tests for the K-Means substrate."""

import numpy as np
import pytest

from repro.cluster.kmeans import kmeans


class TestKMeans:
    def test_separates_obvious_clusters(self):
        points = np.array([
            [0.0, 0.0], [0.1, 0.1], [0.2, 0.0],
            [10.0, 10.0], [10.1, 9.9], [9.9, 10.2],
        ])
        result = kmeans(points, 2)
        groups = {tuple(sorted(result.members(c))) for c in range(2)}
        assert groups == {(0, 1, 2), (3, 4, 5)}

    def test_every_point_assigned(self, rng):
        points = rng.uniform(size=(50, 3))
        result = kmeans(points, 5)
        assert result.assignments.shape == (50,)
        assert set(result.assignments) <= set(range(5))

    def test_no_empty_clusters(self, rng):
        points = rng.uniform(size=(40, 2))
        result = kmeans(points, 8)
        for c in range(result.n_clusters):
            assert len(result.members(c)) > 0

    def test_clusters_clipped_to_point_count(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = kmeans(points, 10)
        assert result.n_clusters == 2

    def test_single_cluster(self, rng):
        points = rng.uniform(size=(20, 2))
        result = kmeans(points, 1)
        np.testing.assert_allclose(result.centers[0], points.mean(axis=0))

    def test_deterministic_for_seed(self, rng):
        points = rng.uniform(size=(60, 3))
        a = kmeans(points, 4, seed=7)
        b = kmeans(points, 4, seed=7)
        np.testing.assert_array_equal(a.assignments, b.assignments)

    def test_identical_points(self):
        points = np.ones((10, 2))
        result = kmeans(points, 3)
        assert result.inertia == pytest.approx(0.0)

    def test_inertia_decreases_with_more_clusters(self, rng):
        points = rng.uniform(size=(100, 2))
        few = kmeans(points, 2).inertia
        many = kmeans(points, 10).inertia
        assert many <= few

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            kmeans(np.array([1.0, 2.0]), 2)

    def test_inertia_matches_assignments(self, rng):
        points = rng.uniform(size=(30, 2))
        result = kmeans(points, 3)
        manual = sum(
            float(np.sum((points[i] - result.centers[result.assignments[i]]) ** 2))
            for i in range(30)
        )
        assert result.inertia == pytest.approx(manual, rel=1e-6)

    def test_iterations_positive_and_bounded(self, rng):
        points = rng.uniform(size=(50, 2))
        result = kmeans(points, 4, max_iter=7)
        assert 1 <= result.iterations <= 7
