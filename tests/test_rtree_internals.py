"""Deeper R-tree tests: split mechanics, STR structure, stress shapes."""

import numpy as np
import pytest

from repro.spatial.mbr import MBR
from repro.spatial.rtree import RTree, RTreeEntry, RTreeNode


class TestEntry:
    def test_requires_exactly_one_payload(self):
        box = MBR.from_point(np.zeros(2))
        with pytest.raises(ValueError):
            RTreeEntry(box)
        with pytest.raises(ValueError):
            RTreeEntry(box, child=RTreeNode(leaf=True), record_id=1)

    def test_leaf_flag(self):
        box = MBR.from_point(np.zeros(2))
        assert RTreeEntry(box, record_id=1).is_leaf_entry
        assert not RTreeEntry(box, child=RTreeNode(leaf=True)).is_leaf_entry


class TestQuadraticSplit:
    def test_split_respects_min_entries(self, rng):
        tree = RTree(dims=2, max_entries=4, min_entries=2)
        for i in range(50):
            tree.insert(i, rng.uniform(size=2))
        tree.validate()

        def check(node):
            if not node.leaf:
                for entry in node.entries:
                    assert len(entry.child.entries) >= 1
                    check(entry.child)

        check(tree.root)

    def test_separated_clusters_split_cleanly(self):
        # Two far-apart clusters should end up in different subtrees.
        tree = RTree(dims=2, max_entries=4)
        points = []
        for i in range(10):
            points.append((i, np.array([0.0 + i * 0.01, 0.0])))
            points.append((100 + i, np.array([100.0 + i * 0.01, 100.0])))
        for rid, p in points:
            tree.insert(rid, p)
        tree.validate()
        low = tree.search_box(MBR(np.array([-1.0, -1.0]), np.array([1.0, 1.0])))
        assert sorted(low) == list(range(10))

    def test_degenerate_identical_points_split(self):
        tree = RTree(dims=2, max_entries=4)
        for i in range(30):
            tree.insert(i, np.array([5.0, 5.0]))
        tree.validate()
        found = tree.search_box(MBR.from_point(np.array([5.0, 5.0])))
        assert sorted(found) == list(range(30))


class TestSTRStructure:
    def test_leaf_fill_factor(self, rng):
        points = rng.uniform(size=(256, 2))
        tree = RTree.bulk_load(points, max_entries=16)
        leaves = []

        def collect(node):
            if node.leaf:
                leaves.append(node)
            else:
                for entry in node.entries:
                    collect(entry.child)

        collect(tree.root)
        # STR packs leaves full except possibly the last per tile.
        sizes = sorted(len(leaf.entries) for leaf in leaves)
        assert sizes[-1] == 16
        assert sum(sizes) == 256

    def test_height_logarithmic(self, rng):
        points = rng.uniform(size=(1000, 2))
        tree = RTree.bulk_load(points, max_entries=16)
        assert tree.height() <= 4

    def test_three_dims(self, rng):
        points = rng.uniform(size=(300, 3))
        tree = RTree.bulk_load(points)
        tree.validate()
        q = rng.uniform(size=3)
        expected = int(np.argmin(np.sum((points - q) ** 2, axis=1)))
        got = tree.nearest(q)
        assert np.sum((points[got] - q) ** 2) == pytest.approx(
            float(np.sum((points[expected] - q) ** 2))
        )


class TestMixedWorkload:
    def test_bulk_then_insert(self, rng):
        points = rng.uniform(size=(100, 2))
        tree = RTree.bulk_load(points[:60])
        for i in range(60, 100):
            tree.insert(i, points[i])
        tree.validate()
        box = MBR(np.array([0.25, 0.25]), np.array([0.75, 0.75]))
        expected = sorted(
            i for i in range(100) if box.contains_point(points[i])
        )
        assert sorted(tree.search_box(box)) == expected

    def test_nearest_iter_partial_consumption(self, rng):
        points = rng.uniform(size=(40, 2))
        tree = RTree.bulk_load(points)
        iterator = tree.nearest_iter(np.array([0.5, 0.5]))
        first_five = [next(iterator) for _ in range(5)]
        distances = [d for _, d in first_five]
        assert distances == sorted(distances)

    def test_skewed_line_data(self):
        # All points on a line: MBRs degenerate to segments.
        points = np.column_stack([np.linspace(0, 1, 60), np.zeros(60)])
        tree = RTree(dims=2, max_entries=4)
        for i, p in enumerate(points):
            tree.insert(i, p)
        tree.validate()
        assert tree.nearest(np.array([0.0, 0.0])) == 0
        assert tree.nearest(np.array([1.0, 0.0])) == 59
