"""Unit tests for the paged-storage substrate (buffer pool, layouts,
PagedDataset) and the page-I/O behaviour of queries over it."""

import numpy as np
import pytest

from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_extended_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.data.generators import uniform
from repro.storage import (
    BufferPool,
    PagedDataset,
    layer_clustered_layout,
    records_per_page,
    row_order_layout,
)


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(capacity=2)
        assert pool.access(7) is False
        assert pool.access(7) is True
        assert pool.stats.hits == 1 and pool.stats.misses == 1

    def test_lru_eviction_order(self):
        pool = BufferPool(capacity=2)
        pool.access(1)
        pool.access(2)
        pool.access(1)  # 2 is now LRU
        pool.access(3)  # evicts 2
        assert pool.resident_pages() == [1, 3]
        assert pool.stats.evictions == 1
        assert pool.access(2) is False  # 2 was evicted

    def test_capacity_one(self):
        pool = BufferPool(capacity=1)
        pool.access(1)
        pool.access(2)
        pool.access(1)
        assert pool.stats.misses == 3

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(capacity=0)

    def test_clear_keeps_stats(self):
        pool = BufferPool(capacity=4)
        pool.access(1)
        pool.clear()
        assert pool.resident_pages() == []
        assert pool.stats.misses == 1

    def test_io_count_is_misses(self):
        pool = BufferPool(capacity=4)
        pool.access(1)
        pool.access(1)
        pool.access(2)
        assert pool.stats.io_count == 2
        assert pool.stats.accesses == 3


class TestLayouts:
    def test_row_order(self):
        layout = row_order_layout(range(5), per_page=2)
        assert layout == {0: 0, 1: 0, 2: 1, 3: 1, 4: 2}

    def test_row_order_rejects_bad_per_page(self):
        with pytest.raises(ValueError):
            row_order_layout(range(3), per_page=0)

    def test_layer_clustered_orders_layers_first(self):
        dataset = Dataset([
            [1.0, 1.0],   # deep
            [3.0, 3.0],   # layer 0
            [2.0, 2.0],   # layer 1
        ])
        graph = build_extended_graph(dataset, theta=16)
        layout = layer_clustered_layout(graph, per_page=1)
        assert layout[1] == 0  # top layer on page 0
        assert layout[2] == 1
        assert layout[0] == 2

    def test_layer_clustered_covers_unindexed_rows(self):
        dataset = uniform(40, 2, seed=1)
        graph = build_extended_graph(dataset, theta=16, record_ids=range(30))
        layout = layer_clustered_layout(graph, per_page=8)
        assert set(layout) == set(range(40))

    def test_layer_clustered_skips_pseudo(self):
        from repro.data.generators import all_skyline

        dataset = all_skyline(60, 3, seed=2)
        graph = build_extended_graph(dataset, theta=8)
        assert graph.num_pseudo > 0
        layout = layer_clustered_layout(graph, per_page=8)
        assert set(layout) == set(range(60))


class TestRecordsPerPage:
    def test_matches_theta_formula(self):
        from repro.core.pseudo import default_theta

        for dims in (2, 3, 5, 10):
            assert records_per_page(dims) == default_theta(dims)

    def test_floor_of_one(self):
        assert records_per_page(10_000) == 1


class TestPagedDataset:
    def test_is_a_dataset(self):
        base = uniform(30, 2, seed=3)
        paged = PagedDataset(base)
        assert isinstance(paged, Dataset)
        np.testing.assert_array_equal(paged.values, base.values)

    def test_vector_charges_page(self):
        base = Dataset([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        paged = PagedDataset(base, layout={0: 0, 1: 0, 2: 1}, pool_pages=4)
        paged.vector(0)
        paged.vector(1)
        paged.vector(2)
        assert paged.io_stats.misses == 2
        assert paged.io_stats.hits == 1

    def test_rejects_incomplete_layout(self):
        base = uniform(10, 2, seed=4)
        with pytest.raises(ValueError, match="missing"):
            PagedDataset(base, layout={0: 0})

    def test_reset_io(self):
        base = uniform(10, 2, seed=5)
        paged = PagedDataset(base, pool_pages=2)
        paged.vector(0)
        paged.reset_io()
        assert paged.io_stats.accesses == 0

    def test_num_pages(self):
        base = uniform(10, 2, seed=6)
        paged = PagedDataset(base, layout=row_order_layout(range(10), 3))
        assert paged.num_pages == 4


class TestQueryIO:
    def test_traveler_runs_on_paged_dataset(self):
        base = uniform(200, 3, seed=7)
        paged = PagedDataset(base, pool_pages=4)
        graph = build_extended_graph(paged, theta=16)
        f = LinearFunction([0.5, 0.3, 0.2])
        paged.reset_io()
        result = AdvancedTraveler(graph).top_k(f, 10)
        expected = sorted(f.score_many(base.values), reverse=True)[:10]
        np.testing.assert_allclose(sorted(result.scores, reverse=True), expected)
        assert paged.io_stats.accesses > 0

    def test_layer_clustering_reduces_page_io(self):
        # The storage payoff of the DG: traversal order matches layer
        # order, so layer-clustered pages need fewer I/Os than a heap
        # file shuffled against it.
        rng = np.random.default_rng(8)
        base = uniform(600, 3, seed=8)
        graph0 = build_extended_graph(base, theta=16)
        per_page = 16
        f = LinearFunction([0.5, 0.3, 0.2])

        shuffled = list(range(600))
        rng.shuffle(shuffled)
        random_layout = {rid: i // per_page for i, rid in enumerate(shuffled)}

        ios = {}
        for name, layout in (
            ("clustered", layer_clustered_layout(graph0, per_page)),
            ("random", random_layout),
        ):
            paged = PagedDataset(base, layout=layout, pool_pages=4)
            graph = build_extended_graph(paged, theta=16)
            paged.reset_io()
            AdvancedTraveler(graph).top_k(f, 20)
            ios[name] = paged.io_stats.io_count
        assert ios["clustered"] < ios["random"], ios
