"""Unit tests for DG maintenance (paper Section V, Algorithms 4 and 5).

The gold standard throughout: after any sequence of inserts/deletes, the
graph must be *identical* (same layers; for plain DGs also same edges via
validate) to a from-scratch rebuild over the surviving records.
"""

import random

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.advanced import AdvancedTraveler
from repro.core.maintenance import delete_record, insert_record, mark_deleted
from repro.data.generators import all_skyline, correlated, gaussian, uniform
from repro.data.server import server_dataset


def assert_equal_to_rebuild(graph, dataset):
    graph.validate()
    rebuilt = build_dominant_graph(dataset, record_ids=sorted(graph.real_ids()))
    assert graph.layers() == rebuilt.layers()


class TestInsert:
    def test_insert_into_empty_layers(self):
        dataset = Dataset([[1.0, 1.0], [2.0, 2.0]])
        graph = build_dominant_graph(dataset, record_ids=[0])
        layer = insert_record(graph, 1)
        assert layer == 0  # dominates record 0, so takes the top layer
        assert_equal_to_rebuild(graph, dataset)

    def test_insert_dominated_record(self):
        dataset = Dataset([[2.0, 2.0], [1.0, 1.0]])
        graph = build_dominant_graph(dataset, record_ids=[0])
        assert insert_record(graph, 1) == 1
        assert graph.parents_of(1) == frozenset({0})

    def test_insert_incomparable_record(self):
        dataset = Dataset([[2.0, 1.0], [1.0, 2.0]])
        graph = build_dominant_graph(dataset, record_ids=[0])
        assert insert_record(graph, 1) == 0
        assert graph.layer_sizes() == [2]

    def test_insert_rejects_duplicate(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        with pytest.raises(ValueError, match="already"):
            insert_record(graph, 0)

    def test_insert_rejects_missing_row(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        with pytest.raises(IndexError):
            insert_record(graph, 99)

    def test_insert_cascades_bumps(self):
        # Inserting a new global maximum bumps the whole chain.
        dataset = Dataset([[3.0, 3.0], [2.0, 2.0], [1.0, 1.0], [4.0, 4.0]])
        graph = build_dominant_graph(dataset, record_ids=[0, 1, 2])
        assert graph.layer_sizes() == [1, 1, 1]
        insert_record(graph, 3)
        assert graph.layer_sizes() == [1, 1, 1, 1]
        assert graph.layer_of(3) == 0
        assert graph.layer_of(0) == 1
        assert_equal_to_rebuild(graph, dataset)

    def test_insert_does_not_bump_independent_chains(self):
        # Record 3 is dominated by the new record but sits two layers
        # deeper via an independent chain, so it must NOT move (both our
        # cascade and the paper's Algorithm 4 — whose S is empty here —
        # get this right; see tests/test_paper_variants.py).
        dataset = Dataset([
            [10.0, 1.0],   # 0: layer 0
            [9.0, 0.9],    # 1: layer 1 (under 0)
            [8.0, 0.8],    # 2: layer 2 (under 1)
            [0.5, 0.5],    # 3: layer 3 (under 2)
            [1.0, 0.85],   # 4: dominated by 0 and 1, not by 2 -> layer 2
        ])
        graph = build_dominant_graph(dataset, record_ids=[0, 1, 2, 3])
        assert graph.layer_of(3) == 3
        insert_record(graph, 4)
        assert graph.layer_of(4) == 2  # dominated by 0 and 1, not by 2
        assert graph.layer_of(3) == 3  # chain through 2 unchanged
        assert_equal_to_rebuild(graph, dataset)

    @pytest.mark.parametrize("maker", [uniform, gaussian, correlated])
    def test_random_inserts_match_rebuild(self, maker):
        dataset = maker(200, 3, seed=31)
        graph = build_dominant_graph(dataset, record_ids=range(150))
        for rid in range(150, 200):
            insert_record(graph, rid)
        assert_equal_to_rebuild(graph, dataset)

    def test_insert_duplicates_of_existing(self):
        values = np.array([[1.0, 2.0], [2.0, 1.0], [1.0, 2.0], [2.0, 1.0]])
        dataset = Dataset(values)
        graph = build_dominant_graph(dataset, record_ids=[0, 1])
        insert_record(graph, 2)
        insert_record(graph, 3)
        assert_equal_to_rebuild(graph, dataset)
        assert graph.layer_sizes() == [4]

    def test_returned_layer_matches_graph(self, rng):
        dataset = Dataset(rng.uniform(size=(60, 3)))
        graph = build_dominant_graph(dataset, record_ids=range(50))
        for rid in range(50, 60):
            assert insert_record(graph, rid) == graph.layer_of(rid)


class TestDelete:
    def test_delete_leaf(self):
        dataset = Dataset([[2.0, 2.0], [1.0, 1.0]])
        graph = build_dominant_graph(dataset)
        delete_record(graph, 1)
        assert 1 not in graph
        assert graph.layer_sizes() == [1]

    def test_delete_promotes_single_parent_child(self):
        dataset = Dataset([[3.0, 3.0], [2.0, 2.0], [1.0, 1.0]])
        graph = build_dominant_graph(dataset)
        delete_record(graph, 0)
        assert graph.layer_of(1) == 0
        assert graph.layer_of(2) == 1
        assert_equal_to_rebuild(graph, dataset)

    def test_delete_keeps_child_with_other_parent(self):
        dataset = Dataset([
            [3.0, 1.0],   # 0: layer 0
            [1.0, 3.0],   # 1: layer 0
            [0.9, 0.9],   # 2: layer 1 (under both)
        ])
        graph = build_dominant_graph(dataset)
        delete_record(graph, 0)
        assert graph.layer_of(2) == 1  # parent 1 remains
        assert_equal_to_rebuild(graph, dataset)

    def test_delete_missing_record_raises(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        with pytest.raises(KeyError):
            delete_record(graph, 42)

    def test_delete_chain_reaction(self):
        # Deleting the top of a pure chain promotes every level.
        values = [[float(10 - i)] * 2 for i in range(5)]
        dataset = Dataset(values)
        graph = build_dominant_graph(dataset)
        delete_record(graph, 0)
        assert graph.layer_sizes() == [1] * 4
        assert graph.layer_of(1) == 0

    @pytest.mark.parametrize("maker", [uniform, gaussian, correlated])
    def test_random_deletes_match_rebuild(self, maker):
        dataset = maker(200, 3, seed=41)
        graph = build_dominant_graph(dataset)
        rng = random.Random(41)
        for rid in rng.sample(range(200), 80):
            delete_record(graph, rid)
        assert_equal_to_rebuild(graph, dataset)

    def test_delete_everything(self):
        dataset = uniform(30, 2, seed=1)
        graph = build_dominant_graph(dataset)
        for rid in range(30):
            delete_record(graph, rid)
        assert len(graph) == 0
        assert graph.num_layers == 0

    def test_mixed_churn_matches_rebuild(self):
        dataset = uniform(240, 3, seed=51)
        graph = build_dominant_graph(dataset, record_ids=range(160))
        rng = random.Random(51)
        live = set(range(160))
        next_new = 160
        for step in range(120):
            if step % 2 == 0 and next_new < 240:
                insert_record(graph, next_new)
                live.add(next_new)
                next_new += 1
            else:
                victim = rng.choice(sorted(live))
                delete_record(graph, victim)
                live.remove(victim)
        assert sorted(graph.real_ids()) == sorted(live)
        assert_equal_to_rebuild(graph, dataset)


class TestExtendedGraphMaintenance:
    def test_insert_into_extended_graph(self):
        dataset = all_skyline(150, 3, seed=2)
        graph = build_extended_graph(dataset, theta=8, record_ids=range(120))
        for rid in range(120, 150):
            insert_record(graph, rid)
        graph.validate()
        assert sorted(graph.real_ids()) == list(range(150))

    def test_insert_new_global_best_gets_pseudo_cover(self):
        dataset = Dataset(
            np.vstack([all_skyline(100, 3, seed=3).values,
                       [[2000.0, 2000.0, 2000.0]]])
        )
        graph = build_extended_graph(dataset, theta=8, record_ids=range(100))
        assert graph.num_pseudo > 0
        insert_record(graph, 100)
        graph.validate()
        assert graph.parents_of(100), "new record must have a pseudo parent"
        # And the queries still work:
        f = LinearFunction([0.4, 0.3, 0.3])
        result = AdvancedTraveler(graph).top_k(f, 1)
        assert result.ids == (100,)

    def test_delete_from_extended_graph(self):
        dataset = all_skyline(150, 3, seed=4)
        graph = build_extended_graph(dataset, theta=8)
        rng = random.Random(4)
        for rid in rng.sample(range(150), 60):
            delete_record(graph, rid)
        graph.validate()
        f = LinearFunction([0.5, 0.3, 0.2])
        result = AdvancedTraveler(graph).top_k(f, 10)
        survivors = sorted(graph.real_ids())
        expected = sorted(
            f.score_many(dataset.values[survivors]), reverse=True
        )[:10]
        np.testing.assert_allclose(sorted(result.scores, reverse=True), expected)

    def test_childless_pseudo_garbage_collected(self):
        dataset = all_skyline(60, 3, seed=5)
        graph = build_extended_graph(dataset, theta=8)
        assert graph.num_pseudo > 0
        for rid in range(60):
            delete_record(graph, rid)
        assert graph.num_pseudo == 0
        assert len(graph) == 0

    def test_queries_correct_during_churn(self):
        dataset = uniform(260, 4, seed=6)
        graph = build_extended_graph(dataset, theta=8, record_ids=range(200))
        traveler = AdvancedTraveler(graph)
        f = LinearFunction([0.4, 0.3, 0.2, 0.1])
        rng = random.Random(6)
        live = set(range(200))
        next_new = 200
        for step in range(90):
            if step % 3 != 2 and next_new < 260:
                insert_record(graph, next_new)
                live.add(next_new)
                next_new += 1
            else:
                victim = rng.choice(sorted(live))
                delete_record(graph, victim)
                live.remove(victim)
            if step % 30 == 29:
                graph.validate()
                result = traveler.top_k(f, 10)
                ids = sorted(live)
                expected = sorted(
                    f.score_many(dataset.values[ids]), reverse=True
                )[:10]
                np.testing.assert_allclose(
                    sorted(result.scores, reverse=True), expected
                )


class TestServerWorkload:
    def test_tie_heavy_inserts_match_rebuild(self):
        dataset = server_dataset(300, seed=9)
        graph = build_dominant_graph(dataset, record_ids=range(240))
        for rid in range(240, 300):
            insert_record(graph, rid)
        assert_equal_to_rebuild(graph, dataset)

    def test_tie_heavy_deletes_match_rebuild(self):
        dataset = server_dataset(300, seed=10)
        graph = build_dominant_graph(dataset)
        rng = random.Random(10)
        for rid in rng.sample(range(300), 120):
            delete_record(graph, rid)
        assert_equal_to_rebuild(graph, dataset)


class TestMarkDeleted:
    def test_marks_as_pseudo(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        mark_deleted(graph, 4)
        assert graph.is_pseudo(4)
        assert 4 in graph

    def test_missing_record_raises(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        with pytest.raises(KeyError):
            mark_deleted(graph, 77)

    def test_structure_unchanged(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        layers_before = graph.layers()
        mark_deleted(graph, 4)
        assert graph.layers() == layers_before
