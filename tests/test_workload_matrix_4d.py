"""4-dimensional agreement matrix: the integration net at another m.

The main agreement matrix runs at m=3 (the paper's primary setting);
this one re-checks every algorithm at m=4 where layer structure, hull
peeling, grid cells, and ranked-list depths all behave differently.
"""

import numpy as np
import pytest

from repro.baselines import (
    AppRIIndex,
    CombinedAlgorithm,
    LPTAIndex,
    NoRandomAccess,
    OnionIndex,
    PreferIndex,
    RankCubeIndex,
    ThresholdAlgorithm,
    naive_top_k,
)
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_extended_graph
from repro.core.functions import LinearFunction
from repro.core.nway import NWayTraveler
from repro.data.generators import anticorrelated, gaussian, uniform

WORKLOADS_4D = {
    "U4": lambda: uniform(180, 4, seed=201),
    "G4": lambda: gaussian(180, 4, seed=202),
    "A4": lambda: anticorrelated(120, 4, seed=203),
}

QUERY = LinearFunction([0.4, 0.3, 0.2, 0.1])


def algorithms_4d(dataset):
    yield "dg", AdvancedTraveler(build_extended_graph(dataset, theta=8)).top_k
    yield "nway", NWayTraveler(dataset, [(0, 1), (2, 3)], theta=8).top_k
    yield "ta", ThresholdAlgorithm(dataset).top_k
    yield "ca", CombinedAlgorithm(dataset).top_k
    yield "nra", NoRandomAccess(dataset).top_k
    yield "onion", OnionIndex(dataset).top_k
    yield "appri", AppRIIndex(dataset).top_k
    yield "prefer", PreferIndex(dataset).top_k
    yield "lpta", LPTAIndex(dataset).top_k
    yield "rankcube", RankCubeIndex(dataset).top_k


@pytest.mark.parametrize("workload", sorted(WORKLOADS_4D))
@pytest.mark.parametrize("k", [1, 15])
def test_agreement_matrix_4d(workload, k):
    dataset = WORKLOADS_4D[workload]()
    reference = naive_top_k(dataset, QUERY, k).score_multiset()
    for name, top_k in algorithms_4d(dataset):
        result = top_k(QUERY, k)
        np.testing.assert_allclose(
            result.score_multiset(), reference, atol=1e-9,
            err_msg=f"{name} disagrees on {workload} k={k}",
        )
