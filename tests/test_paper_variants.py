"""Executable analysis of the paper's literal Algorithm 4.

Reading the pseudocode, "all descendant records of C_i are degraded into
the next layer" *sounds* like it over-degrades records whose longest
chain avoids the insertion point.  It does not: S is rooted at the
records of the insertion layer that R dominates, and every member of S
has an S-parent landing exactly one layer above it, which forces the
move — while records R dominates in *deeper* layers already satisfy the
layer constraint and correctly stay put.  These tests make that argument
executable: the literal transcription must agree with a from-scratch
rebuild on arbitrary workloads, exactly like the optimized
implementation in repro.core.maintenance.
"""

import random

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph
from repro.core.dataset import Dataset
from repro.core.maintenance import insert_record
from repro.core.paper_variants import layers_are_maximal, paper_insert_record
from repro.data.generators import correlated, gaussian, uniform


class TestLayersAreMaximal:
    def test_fresh_build_is_maximal(self):
        dataset = uniform(80, 3, seed=1)
        assert layers_are_maximal(build_dominant_graph(dataset))

    def test_detects_broken_layers(self):
        dataset = Dataset([[3.0, 3.0], [1.0, 1.0]])
        graph = build_dominant_graph(dataset)
        graph.move_record(1, 2)  # push it one layer too deep
        graph.ensure_layers(3)
        assert not layers_are_maximal(graph)


class TestPaperInsertEquivalence:
    """The literal Algorithm 4 equals a rebuild — the paper is right."""

    def test_simple_chain(self):
        dataset = Dataset([[3.0, 3.0], [2.0, 2.0], [1.0, 1.0], [4.0, 4.0]])
        graph = build_dominant_graph(dataset, record_ids=[0, 1, 2])
        paper_insert_record(graph, 3)
        graph.validate()
        assert graph.layers() == build_dominant_graph(dataset).layers()

    def test_insert_into_first_layer_no_dominated(self):
        dataset = Dataset([[2.0, 1.0], [1.0, 2.0]])
        graph = build_dominant_graph(dataset, record_ids=[0])
        assert paper_insert_record(graph, 1) == 0
        assert layers_are_maximal(graph)

    def test_deep_dominated_record_stays(self):
        # The case that *looks* like it should break Algorithm 4: the new
        # record dominates record 3, which sits two layers deeper via an
        # independent chain.  S is empty (nothing in the insertion layer
        # is dominated), and record 3 correctly keeps its layer.
        dataset = Dataset([
            [10.0, 1.0],   # 0: layer 0
            [9.0, 0.9],    # 1: layer 1
            [8.0, 0.8],    # 2: layer 2
            [0.5, 0.5],    # 3: layer 3 (chain through 2)
            [1.0, 0.85],   # 4: inserted at layer 2; dominates 3
        ])
        graph = build_dominant_graph(dataset, record_ids=[0, 1, 2, 3])
        paper_insert_record(graph, 4)
        assert graph.layer_of(3) == 3
        assert layers_are_maximal(graph)
        assert graph.layers() == build_dominant_graph(dataset).layers()

    def test_cascade_through_subtree(self):
        # When the new record does dominate insertion-layer records, the
        # whole descendant subtree moves — and that is exactly right,
        # because each member's S-parent lands one layer above it.
        dataset = Dataset([
            [10.0, 5.0],   # X0: layer 0
            [2.0, 4.5],    # C:  layer 1
            [1.8, 4.0],    # Y2: layer 2 (child of C)
            [1.6, 3.5],    # Y3: layer 3 (child of Y2)
            [1.0, 1.0],    # D:  layer 4 (child of Y3)
            [2.5, 4.8],    # r:  inserted at layer 1, dominates C
        ])
        graph = build_dominant_graph(dataset, record_ids=range(5))
        before = [graph.layer_of(i) for i in range(5)]
        assert before == [0, 1, 2, 3, 4]
        paper_insert_record(graph, 5)
        assert [graph.layer_of(i) for i in (1, 2, 3, 4)] == [2, 3, 4, 5]
        assert graph.layers() == build_dominant_graph(dataset).layers()

    @pytest.mark.parametrize("maker,seed", [
        (uniform, 2), (uniform, 3), (gaussian, 4), (correlated, 5),
    ])
    def test_random_batches_equal_rebuild(self, maker, seed):
        dataset = maker(120, 3, seed=seed)
        graph = build_dominant_graph(dataset, record_ids=range(90))
        order = list(range(90, 120))
        random.Random(seed).shuffle(order)
        for rid in order:
            paper_insert_record(graph, rid)
        graph.validate()
        assert layers_are_maximal(graph)
        assert graph.layers() == build_dominant_graph(dataset).layers()

    def test_agrees_with_optimized_implementation(self):
        dataset = uniform(100, 3, seed=6)
        literal = build_dominant_graph(dataset, record_ids=range(70))
        optimized = build_dominant_graph(dataset, record_ids=range(70))
        for rid in range(70, 100):
            paper_insert_record(literal, rid)
            insert_record(optimized, rid)
        assert literal.layers() == optimized.layers()

    def test_tie_heavy_data(self):
        from repro.data.server import server_dataset

        dataset = server_dataset(100, seed=7)
        graph = build_dominant_graph(dataset, record_ids=range(80))
        for rid in range(80, 100):
            paper_insert_record(graph, rid)
        assert graph.layers() == build_dominant_graph(dataset).layers()


class TestPaperInsertGuards:
    def test_rejects_extended_graph(self):
        from repro.core.builder import build_extended_graph
        from repro.data.generators import all_skyline

        dataset = all_skyline(40, 3, seed=8)
        graph = build_extended_graph(dataset, theta=8, record_ids=range(30))
        if graph.num_pseudo:
            with pytest.raises(ValueError, match="plain"):
                paper_insert_record(graph, 30)

    def test_rejects_duplicate(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        with pytest.raises(ValueError, match="already"):
            paper_insert_record(graph, 0)
