"""Acceptance tests: snapshot isolation under writes, crash recovery.

These are the ISSUE's two acceptance criteria, verbatim:

1. a reader active during a maintenance batch sees either the pre-batch
   or the post-batch snapshot — asserted via epoch tags — never a mix;
2. killing the writer at any scripted WAL offset (including mid-record)
   recovers to an index that verifies clean and answers top-k
   bit-identically to a from-scratch rebuild of the surviving
   operations, for k in {1, 10, 50} over >= 5 random weight vectors.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph
from repro.core.compiled import CompiledAdvancedTraveler
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.verify import format_issues, verify_graph
from repro.errors import ServiceUnavailable
from repro.serve import ServingIndex
from repro.serve.index import DELTA_SIDECAR
from repro.testing import Rendezvous, crash_offsets, crashed_copy, run_threads

FN = LinearFunction([0.5, 0.3, 0.2])


@pytest.fixture
def dataset(rng) -> Dataset:
    return Dataset(rng.random((60, 3)))


@pytest.fixture
def partial(tmp_path, dataset):
    graph = build_dominant_graph(dataset, record_ids=range(30))
    index = ServingIndex.create(
        str(tmp_path / "serve"), graph, fsync="batch"
    )
    yield index
    index.close(checkpoint=False)


def survivors_of(index: ServingIndex) -> frozenset:
    # Overlay-aware: the published snapshot may carry unfolded inserts
    # and deletions on top of its compiled base.
    return frozenset(int(r) for r in index.snapshot().alive_ids().tolist())


class TestSnapshotIsolation:
    def test_reader_frozen_mid_batch_answers_from_its_pinned_epoch(
        self, partial
    ):
        """The scripted interleaving: freeze a reader inside its
        traversal, apply a whole batch around it, and hold the reader to
        the pre-batch snapshot by epoch tag and by answer."""
        index = partial
        pre_epoch = index.epoch
        pre_answer = index.query(FN, k=10)
        rendezvous = Rendezvous()

        def frozen_where(values: np.ndarray) -> bool:
            rendezvous.arrive()
            return True

        def reader():
            return index.query(FN, k=10, where=frozen_where)

        def writer():
            rendezvous.wait_arrived()
            # The reader is parked mid-traversal.  Apply a batch insert
            # and a delete: two publishes, both while the reader holds
            # its pinned snapshot.
            index.insert_many([40, 41, 42])
            index.delete(3)
            assert index.epoch == pre_epoch + 2
            rendezvous.release()

        reader_result, _ = run_threads(reader, writer)

        # The reader answered from the world it pinned ...
        assert reader_result.epoch == pre_epoch
        assert reader_result.ids == pre_answer.ids
        assert reader_result.scores == pre_answer.scores
        # ... and a fresh query sees the post-batch world.
        post = index.query(FN, k=10)
        assert post.epoch == pre_epoch + 2
        assert survivors_of(index) >= {40, 41, 42}
        assert 3 not in survivors_of(index)

    def test_epoch_tags_never_mix_snapshots_under_concurrent_writes(
        self, partial, dataset
    ):
        """Stress the window: readers hammer queries while the writer
        mutates.  Every result's epoch tag must name a snapshot whose
        oracle (a from-scratch rebuild of that epoch's survivor set)
        reproduces the answer bit-identically — a mixed read could not
        match any single epoch's oracle."""
        index = partial
        states = {index.epoch: survivors_of(index)}
        observed: list = []

        def writer():
            for rid in range(30, 40):
                index.insert(rid)
                states[index.epoch] = survivors_of(index)
            for rid in (2, 4, 6):
                index.delete(rid)
                states[index.epoch] = survivors_of(index)

        def reader():
            results = []
            for _ in range(40):
                results.append(index.query(FN, k=8))
            observed.extend(results)

        run_threads(writer, reader, reader, reader)

        assert observed and all(r.epoch in states for r in observed)
        oracles: dict = {}
        for result in observed:
            key = states[result.epoch]
            if key not in oracles:
                rebuilt = build_dominant_graph(
                    dataset, record_ids=sorted(key)
                )
                oracles[key] = CompiledAdvancedTraveler(
                    rebuilt.compile()
                ).top_k(FN, 8)
            want = oracles[key]
            assert result.ids == want.ids, (
                f"epoch {result.epoch}: answer does not match its own "
                "epoch's oracle — snapshot mix"
            )
            assert result.scores == want.scores

    def test_close_drains_inflight_queries_before_releasing(self, partial):
        import threading
        import time

        index = partial
        rendezvous = Rendezvous()

        def frozen_where(values: np.ndarray) -> bool:
            rendezvous.arrive()
            return True

        def reader():
            return index.query(FN, k=5, where=frozen_where)

        def closer():
            rendezvous.wait_arrived()  # a query is parked in flight
            drained = {}

            def do_close():
                drained["ok"] = index.close(drain_timeout=30.0)

            closing = threading.Thread(target=do_close, daemon=True)
            closing.start()
            for _ in range(1000):
                if index._draining:
                    break
                time.sleep(0.005)
            # Draining has started: new queries are refused while the
            # parked one is still running to completion.
            with pytest.raises(ServiceUnavailable):
                index.query(FN, k=1)
            rendezvous.release()
            closing.join(timeout=30)
            assert not closing.is_alive()
            assert drained["ok"] is True

        result, _ = run_threads(reader, closer)
        assert len(result.ids) == 5  # the in-flight query completed


class TestCrashRecovery:
    K_VALUES = (1, 10, 50)
    WEIGHT_VECTORS = 5

    def test_kill_writer_at_every_scripted_offset_recovers_exactly(
        self, tmp_path, partial, dataset
    ):
        """ISSUE acceptance: every WAL truncation point — clean record
        boundaries and mid-record tears alike — recovers to a verified
        index bit-identical to a rebuild of the surviving operations."""
        index = partial
        index.insert(30)
        index.insert_many([31, 32, 33])
        index.delete(5)
        index.mark_deleted(10)
        index.insert(34)
        index.delete_many([1, 2])
        index.insert(35)
        index._wal.sync()
        # The writer is now "killed": no close, no checkpoint.

        wal_path = os.path.join(index._directory, "wal.log")
        offsets = crash_offsets(wal_path)
        assert len(offsets) > 20  # header + 4 cut points per record

        functions = [
            LinearFunction(np.random.default_rng(q).random(3) + 0.05)
            for q in range(self.WEIGHT_VECTORS)
        ]
        oracles: dict = {}
        for cut in offsets:
            crash_dir = crashed_copy(
                index._directory, str(tmp_path / f"crash-{cut}"), cut
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")  # torn tails are expected
                recovered = ServingIndex.open(crash_dir, fsync="never")
            try:
                issues = verify_graph(recovered._graph)
                assert not issues, (
                    f"cut={cut}: {format_issues(issues)}"
                )
                key = survivors_of(recovered)
                if key not in oracles:
                    rebuilt = build_dominant_graph(
                        dataset, record_ids=sorted(key)
                    )
                    oracles[key] = CompiledAdvancedTraveler(rebuilt.compile())
                for function in functions:
                    for k in self.K_VALUES:
                        want = oracles[key].top_k(function, k)
                        got = recovered.query(function, k)
                        assert got.ids == want.ids, (
                            f"cut={cut} k={k}: ids diverge from rebuild"
                        )
                        assert got.scores == want.scores, (
                            f"cut={cut} k={k}: scores diverge from rebuild"
                        )
            finally:
                recovered.close(checkpoint=False)

        # Sanity on the harness itself: the full log recovers everything,
        # the bare header recovers the checkpoint state.
        full = crashed_copy(
            index._directory,
            str(tmp_path / "crash-full"),
            os.path.getsize(wal_path),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            everything = ServingIndex.open(full, fsync="never")
        try:
            assert survivors_of(everything) == survivors_of(index)
        finally:
            everything.close(checkpoint=False)

    def test_recovery_is_idempotent(self, tmp_path, partial):
        """Opening, closing without checkpoint, and opening again must
        not change the answer — replay filtering is stable."""
        index = partial
        index.insert(30)
        index.delete(7)
        index._wal.sync()
        first = ServingIndex.open(index._directory, fsync="never")
        answer_one = first.query(FN, k=10)
        first.close(checkpoint=False)
        second = ServingIndex.open(index._directory, fsync="never")
        answer_two = second.query(FN, k=10)
        second.close(checkpoint=False)
        assert answer_one.ids == answer_two.ids
        assert answer_one.scores == answer_two.scores

    def _assert_recovers_exactly(self, crash_dir, dataset, oracles):
        """Recover ``crash_dir`` and hold it bit-identical to a rebuild."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # torn tails are expected
            recovered = ServingIndex.open(crash_dir, fsync="never")
        try:
            issues = verify_graph(recovered._graph)
            assert not issues, format_issues(issues)
            # Recovery is an implicit compaction: whatever overlay state
            # the crash interrupted, the reopened index starts folded
            # and any sidecar debris has been discarded.
            assert recovered.snapshot().overlay is None
            sidecar = os.path.join(crash_dir, DELTA_SIDECAR)
            assert not os.path.exists(sidecar)
            key = survivors_of(recovered)
            if key not in oracles:
                rebuilt = build_dominant_graph(
                    dataset, record_ids=sorted(key)
                )
                oracles[key] = CompiledAdvancedTraveler(rebuilt.compile())
            for q in range(self.WEIGHT_VECTORS):
                function = LinearFunction(
                    np.random.default_rng(q).random(3) + 0.05
                )
                for k in self.K_VALUES:
                    want = oracles[key].top_k(function, k)
                    got = recovered.query(function, k)
                    assert got.ids == want.ids
                    assert got.scores == want.scores
        finally:
            recovered.close(checkpoint=False)

    def test_kill_mid_delta_publish_at_every_offset(
        self, tmp_path, partial, dataset
    ):
        """Crash with an unfolded overlay live: at every WAL truncation
        point the on-disk state is the WAL plus a delta sidecar that is
        stale relative to the cut (spooled for a later or earlier
        publish, or torn by the crash itself).  Recovery must ignore the
        sidecar entirely and come back bit-identical to a rebuild of the
        surviving operations."""
        index = partial
        index.insert(40)
        index.delete(8)
        index.insert_many([41, 42])
        index.mark_deleted(2)
        index._wal.sync()
        # Killed here: the overlay holds every op, the sidecar describes
        # the final delta publish, nothing was compacted.
        assert index.snapshot().overlay is not None
        sidecar = os.path.join(index._directory, DELTA_SIDECAR)
        assert os.path.exists(sidecar)

        wal_path = os.path.join(index._directory, "wal.log")
        offsets = crash_offsets(wal_path)
        oracles: dict = {}
        sidecar_size = os.path.getsize(sidecar)
        for i, cut in enumerate(offsets):
            crash_dir = crashed_copy(
                index._directory, str(tmp_path / f"delta-crash-{cut}"), cut
            )
            # Vary the sidecar's own crash shape across cuts: intact,
            # torn at a rotating offset, or already unlinked.
            shape = i % 3
            crashed_sidecar = os.path.join(crash_dir, DELTA_SIDECAR)
            if shape == 1:
                with open(crashed_sidecar, "rb+") as handle:
                    handle.truncate(cut % sidecar_size)
            elif shape == 2:
                os.unlink(crashed_sidecar)
            self._assert_recovers_exactly(crash_dir, dataset, oracles)

    def test_kill_mid_compaction_recovers_exactly(
        self, tmp_path, partial, dataset
    ):
        """Crash between a compaction's fold and its sidecar unlink: the
        directory carries a sidecar describing an overlay the fold
        already absorbed.  Replay must reproduce the folded state and
        discard the stale sidecar."""
        index = partial
        index.insert(45)
        index.delete(9)
        index._wal.sync()
        sidecar = os.path.join(index._directory, DELTA_SIDECAR)
        stale_sidecar_bytes = open(sidecar, "rb").read()
        assert index.compact() is True  # the fold ran; sidecar unlinked
        assert not os.path.exists(sidecar)
        index._wal.sync()

        wal_path = os.path.join(index._directory, "wal.log")
        oracles: dict = {}
        for cut in crash_offsets(wal_path):
            crash_dir = crashed_copy(
                index._directory,
                str(tmp_path / f"compact-crash-{cut}"),
                cut,
            )
            # Resurrect the pre-fold sidecar: the state a kill between
            # the snapshot swap and the unlink leaves behind.
            with open(os.path.join(crash_dir, DELTA_SIDECAR), "wb") as f:
                f.write(stale_sidecar_bytes)
            self._assert_recovers_exactly(crash_dir, dataset, oracles)
