"""Property-based tests (hypothesis) for the core invariants.

These complement the example-based suites: every property here is an
invariant stated or implied by the paper, checked on arbitrary generated
record sets.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.dataset import Dataset
from repro.core.dominance import dominates, maximal_mask
from repro.core.functions import LinearFunction
from repro.core.layers import compute_layers, layer_indices_by_chains
from repro.core.maintenance import delete_record, insert_record
from repro.core.advanced import AdvancedTraveler
from repro.core.traveler import BasicTraveler
from repro.cluster.kmeans import kmeans
from repro.spatial.mbr import MBR
from repro.spatial.rtree import RTree

# Record blocks: 1..40 records, 1..4 dims, values on a small integer-ish
# grid so ties and duplicates are generated frequently.
blocks = st.integers(min_value=1, max_value=4).flatmap(
    lambda dims: arrays(
        np.float64,
        st.tuples(st.integers(min_value=1, max_value=40), st.just(dims)),
        elements=st.integers(min_value=0, max_value=8).map(float),
    )
)

weight_lists = st.lists(
    st.floats(min_value=0.01, max_value=1.0, allow_nan=False), min_size=1, max_size=4
)

common = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@common
@given(blocks)
def test_maximal_mask_is_exact(block):
    mask = maximal_mask(block)
    n = block.shape[0]
    for i in range(n):
        dominated = any(dominates(block[j], block[i]) for j in range(n) if j != i)
        assert mask[i] == (not dominated)


@common
@given(blocks)
def test_layers_partition_and_stratify(block):
    layers = compute_layers(block)
    seen = sorted(int(i) for layer in layers for i in layer)
    assert seen == list(range(block.shape[0]))
    # No intra-layer dominance; every deeper record dominated from above.
    for index, layer in enumerate(layers):
        for a in layer:
            for b in layer:
                if a != b:
                    assert not dominates(block[a], block[b])
        if index > 0:
            above = block[np.asarray(layers[index - 1])]
            for rid in layer:
                assert any(dominates(v, block[rid]) for v in above)


@common
@given(blocks)
def test_chain_formula_matches_peeling(block):
    layers = compute_layers(block)
    chains = layer_indices_by_chains(block)
    for index, layer in enumerate(layers, start=1):
        assert all(chains[int(i)] == index for i in layer)


@common
@given(blocks, weight_lists, st.integers(min_value=1, max_value=10))
def test_basic_traveler_matches_bruteforce(block, weights, k):
    dims = block.shape[1]
    weights = (weights * dims)[:dims]
    dataset = Dataset(block)
    f = LinearFunction(weights)
    graph = build_dominant_graph(dataset)
    result = BasicTraveler(graph).top_k(f, k)
    expected = sorted(f.score_many(block), reverse=True)[: min(k, len(block))]
    np.testing.assert_allclose(
        sorted(result.scores, reverse=True), expected, atol=1e-9
    )


@common
@given(blocks, weight_lists, st.integers(min_value=1, max_value=10))
def test_advanced_traveler_matches_bruteforce(block, weights, k):
    dims = block.shape[1]
    weights = (weights * dims)[:dims]
    dataset = Dataset(block)
    f = LinearFunction(weights)
    graph = build_extended_graph(dataset, theta=4)
    result = AdvancedTraveler(graph).top_k(f, k)
    expected = sorted(f.score_many(block), reverse=True)[: min(k, len(block))]
    np.testing.assert_allclose(
        sorted(result.scores, reverse=True), expected, atol=1e-9
    )


@common
@given(blocks)
def test_graph_invariants_validate(block):
    graph = build_dominant_graph(Dataset(block))
    graph.validate()


@common
@given(blocks, st.integers(min_value=0, max_value=100))
def test_insert_equals_rebuild(block, split_seed):
    if block.shape[0] < 2:
        return
    dataset = Dataset(block)
    n = block.shape[0]
    rng = np.random.default_rng(split_seed)
    initial = sorted(rng.choice(n, size=max(1, n // 2), replace=False).tolist())
    graph = build_dominant_graph(dataset, record_ids=initial)
    for rid in range(n):
        if rid not in set(initial):
            insert_record(graph, rid)
    graph.validate()
    assert graph.layers() == build_dominant_graph(dataset).layers()


@common
@given(blocks, st.integers(min_value=0, max_value=100))
def test_delete_equals_rebuild(block, victim_seed):
    if block.shape[0] < 2:
        return
    dataset = Dataset(block)
    n = block.shape[0]
    graph = build_dominant_graph(dataset)
    rng = np.random.default_rng(victim_seed)
    victims = rng.choice(n, size=n // 2, replace=False).tolist()
    for rid in victims:
        delete_record(graph, int(rid))
    graph.validate()
    survivors = sorted(graph.real_ids())
    if survivors:
        rebuilt = build_dominant_graph(dataset, record_ids=survivors)
        assert graph.layers() == rebuilt.layers()


@common
@given(blocks)
def test_all_skyline_algorithms_agree(block):
    from repro.skyline import ALGORITHMS

    if block.shape[1] > 3:
        block = block[:, :3]  # keep NN tractable
    reference = set(np.flatnonzero(maximal_mask(block)).tolist())
    for name, algorithm in ALGORITHMS.items():
        got = set(int(i) for i in algorithm(block))
        assert got == reference, name


@common
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(min_value=1, max_value=30), st.just(2)),
        elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
    ),
    st.integers(min_value=1, max_value=6),
)
def test_kmeans_covers_all_points(points, n_clusters):
    result = kmeans(points, n_clusters)
    assert result.assignments.shape == (points.shape[0],)
    for c in range(result.n_clusters):
        assert len(result.members(c)) > 0
    assert sum(len(result.members(c)) for c in range(result.n_clusters)) == len(points)


@common
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(min_value=1, max_value=60), st.just(2)),
        elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
    )
)
def test_rtree_box_search_complete(points):
    tree = RTree.bulk_load(points)
    tree.validate()
    box = MBR(np.array([0.2, 0.2]), np.array([0.8, 0.8]))
    got = sorted(tree.search_box(box))
    expected = sorted(
        i for i, p in enumerate(points) if box.contains_point(p)
    )
    assert got == expected


@common
@given(blocks, weight_lists)
def test_ta_nra_ca_agree(block, weights):
    from repro.baselines.ca import CombinedAlgorithm
    from repro.baselines.nra import NoRandomAccess
    from repro.baselines.ta import ThresholdAlgorithm

    dims = block.shape[1]
    weights = (weights * dims)[:dims]
    dataset = Dataset(block)
    f = LinearFunction(weights)
    k = min(5, len(dataset))
    expected = sorted(f.score_many(block), reverse=True)[:k]
    for algo in (
        ThresholdAlgorithm(dataset),
        CombinedAlgorithm(dataset, cost_ratio=3),
        NoRandomAccess(dataset),
    ):
        result = algo.top_k(f, k)
        np.testing.assert_allclose(
            sorted(result.scores, reverse=True), expected, atol=1e-9
        )


@common
@given(blocks, weight_lists, st.integers(min_value=1, max_value=8))
def test_traveler_cost_at_least_prediction(block, weights, k):
    from repro.core.cost import search_space

    dims = block.shape[1]
    weights = (weights * dims)[:dims]
    dataset = Dataset(block)
    f = LinearFunction(weights)
    scores = np.sort(f.score_many(block))
    gaps = np.diff(scores)
    if len(scores) > 1 and np.min(gaps) < 1e-9 * (1.0 + np.abs(scores).max()):
        return  # Theorem 3.1 presumes unambiguous ranks; exact or
        # floating-point near-ties void both directions (duplicate groups
        # flood S3, and the Traveler's scalar-dot scores can order
        # virtual ties differently from the vectorized brute force).
    k = min(k, len(dataset))
    graph = build_dominant_graph(dataset)
    result = BasicTraveler(graph).top_k(f, k)
    space = search_space(dataset, f, k)
    # With distinct scores the strong direction holds: every predicted
    # record really is scored.
    assert space.predicted <= result.stats.computed_ids
