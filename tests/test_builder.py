"""Unit tests for repro.core.builder (offline DG construction)."""

import numpy as np
import pytest

from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.dataset import Dataset
from repro.core.dominance import dominates
from repro.data.generators import correlated, gaussian, uniform
from repro.skyline import ALGORITHMS, as_mask_function


class TestBuildDominantGraph:
    def test_small_dataset(self, small_dataset):
        graph = build_dominant_graph(small_dataset)
        graph.validate()
        assert graph.layer_sizes() == [3, 2, 1]

    @pytest.mark.parametrize("maker", [uniform, gaussian, correlated])
    def test_random_workloads_validate(self, maker):
        dataset = maker(150, 3, seed=7)
        graph = build_dominant_graph(dataset)
        graph.validate()
        assert len(graph) == 150

    def test_edges_complete_between_layers(self, rng):
        dataset = Dataset(rng.uniform(size=(60, 2)))
        graph = build_dominant_graph(dataset)
        for rid in graph.iter_records():
            layer = graph.layer_of(rid)
            if layer == 0:
                continue
            expected = {
                p
                for p in graph.layer(layer - 1)
                if dominates(dataset.vector(p), dataset.vector(rid))
            }
            assert graph.parents_of(rid) == frozenset(expected)

    def test_subset_indexing(self, rng):
        dataset = Dataset(rng.uniform(size=(50, 2)))
        subset = list(range(0, 50, 2))
        graph = build_dominant_graph(dataset, record_ids=subset)
        assert sorted(graph.real_ids()) == subset
        graph.validate()

    def test_subset_rejects_out_of_range(self, small_dataset):
        with pytest.raises(ValueError, match="out of range"):
            build_dominant_graph(small_dataset, record_ids=[0, 100])

    def test_subset_rejects_empty(self, small_dataset):
        with pytest.raises(ValueError, match="at least one"):
            build_dominant_graph(small_dataset, record_ids=[])

    def test_duplicate_record_ids_deduped(self, small_dataset):
        graph = build_dominant_graph(small_dataset, record_ids=[0, 0, 1])
        assert len(graph) == 2

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_any_skyline_algorithm_builds_same_layers(self, name):
        # "we can use any skyline algorithm to find each layer of DG"
        if name == "nn":
            dataset = uniform(60, 2, seed=5)  # NN is exponential beyond 3-d
        else:
            dataset = uniform(60, 3, seed=5)
        reference = build_dominant_graph(dataset)
        built = build_dominant_graph(
            dataset, skyline=as_mask_function(ALGORITHMS[name])
        )
        assert built.layers() == reference.layers()

    def test_single_record(self):
        graph = build_dominant_graph(Dataset([[1.0, 2.0]]))
        graph.validate()
        assert graph.layer_sizes() == [1]


class TestBuildExtendedGraph:
    def test_no_pseudo_when_first_layer_small(self, small_dataset):
        graph = build_extended_graph(small_dataset, theta=10)
        assert graph.num_pseudo == 0

    def test_pseudo_levels_added_for_wide_first_layer(self):
        dataset = uniform(300, 5, seed=2)
        graph = build_extended_graph(dataset, theta=8)
        assert graph.num_pseudo > 0
        graph.validate()
        top = graph.layer(0)
        assert all(graph.is_pseudo(r) for r in top)
        assert len(top) <= 8

    def test_every_real_record_indexed(self):
        dataset = uniform(200, 4, seed=3)
        graph = build_extended_graph(dataset, theta=8)
        assert sorted(graph.real_ids()) == list(range(200))

    def test_default_theta_from_dims(self, rng):
        dataset = uniform(100, 3, seed=1)
        graph = build_extended_graph(dataset)  # theta = 128 for m=3
        assert graph.num_pseudo == 0  # first layer far below 128

    def test_deterministic_given_seed(self):
        dataset = uniform(200, 5, seed=9)
        a = build_extended_graph(dataset, theta=8, seed=4)
        b = build_extended_graph(dataset, theta=8, seed=4)
        assert a.layers() == b.layers()
