"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.core.dominance import dominates, maximal_mask
from repro.data.generators import (
    RANGE,
    all_skyline,
    anticorrelated,
    correlated,
    gaussian,
    make_dataset,
    uniform,
)


class TestDispatch:
    @pytest.mark.parametrize("code,n,dims", [
        ("U", 50, 3), ("G", 50, 3), ("R", 50, 3), ("A", 50, 3),
        ("uniform", 20, 2), ("worst", 30, 4),
    ])
    def test_known_codes(self, code, n, dims):
        ds = make_dataset(code, n, dims)
        assert len(ds) == n and ds.dims == dims

    def test_unknown_code(self):
        with pytest.raises(ValueError, match="unknown"):
            make_dataset("Z", 10, 2)


class TestDistributions:
    def test_uniform_range(self):
        values = uniform(2000, 3, seed=1).values
        assert values.min() >= 0.0 and values.max() <= RANGE
        assert abs(values.mean() - RANGE / 2) < RANGE * 0.05

    def test_gaussian_centered(self):
        values = gaussian(2000, 3, seed=2).values
        assert abs(values.mean() - RANGE / 2) < RANGE * 0.05
        assert values.std() < RANGE * 0.25

    def test_correlated_dimensions_track_x1(self):
        values = correlated(2000, 3, seed=3).values
        for d in (1, 2):
            corr = np.corrcoef(values[:, 0], values[:, d])[0, 1]
            assert corr > 0.8, f"dim {d} correlation {corr}"

    def test_anticorrelated_negative_pairwise(self):
        values = anticorrelated(2000, 2, seed=4).values
        corr = np.corrcoef(values[:, 0], values[:, 1])[0, 1]
        assert corr < -0.3

    def test_deterministic_by_seed(self):
        a = uniform(50, 3, seed=7).values
        b = uniform(50, 3, seed=7).values
        c = uniform(50, 3, seed=8).values
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_rejects_bad_sizes(self):
        for maker in (uniform, gaussian, correlated, anticorrelated):
            with pytest.raises(ValueError):
                maker(0, 3)
            with pytest.raises(ValueError):
                maker(10, 0)

    def test_correlated_single_dim(self):
        assert correlated(20, 1, seed=5).dims == 1


class TestAllSkyline:
    def test_every_record_is_maximal(self):
        values = all_skyline(300, 4, seed=6).values
        assert maximal_mask(values).all()

    def test_no_dominance_at_all(self):
        values = all_skyline(60, 3, seed=7).values
        for i in range(60):
            for j in range(60):
                if i != j:
                    assert not dominates(values[i], values[j])

    def test_constant_coordinate_sum(self):
        values = all_skyline(100, 5, seed=8).values
        sums = values.sum(axis=1)
        np.testing.assert_allclose(sums, sums[0])

    def test_rejects_one_dimension(self):
        with pytest.raises(ValueError):
            all_skyline(10, 1)

    def test_skyline_comparison_uniform(self):
        # Sanity: uniform data has far fewer skyline points than the
        # worst-case construction at equal n.
        n = 300
        uni = int(maximal_mask(uniform(n, 3, seed=9).values).sum())
        worst = int(maximal_mask(all_skyline(n, 3, seed=9).values).sum())
        assert worst == n
        assert uni < n / 3
