"""Unit tests for metrics (counters, timing) and the TopKResult type."""

import time

import pytest

from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter
from repro.metrics.timing import Timer


class TestAccessCounter:
    def test_count_computed(self):
        counter = AccessCounter()
        counter.count_computed(5)
        counter.count_computed(7, pseudo=True)
        assert counter.computed == 2
        assert counter.pseudo_computed == 1
        assert counter.computed_ids == frozenset({5, 7})

    def test_computed_without_id(self):
        counter = AccessCounter()
        counter.count_computed()
        assert counter.computed == 1
        assert counter.computed_ids == frozenset()

    def test_sequential_and_random(self):
        counter = AccessCounter()
        counter.count_sequential(3)
        counter.count_random()
        counter.count_examined(2)
        assert (counter.sequential, counter.random, counter.examined) == (3, 1, 2)

    def test_accessed_property(self):
        counter = AccessCounter()
        counter.count_computed(1)
        counter.count_sequential(10)
        assert counter.accessed == 1

    def test_merge(self):
        a, b = AccessCounter(), AccessCounter()
        a.count_computed(1)
        b.count_computed(2, pseudo=True)
        b.count_random(4)
        a.merge(b)
        assert a.computed == 2 and a.pseudo_computed == 1 and a.random == 4
        assert a.computed_ids == frozenset({1, 2})

    def test_reset(self):
        counter = AccessCounter()
        counter.count_computed(1)
        counter.count_sequential(5)
        counter.reset()
        assert counter.computed == 0
        assert counter.sequential == 0
        assert counter.computed_ids == frozenset()


class TestTimer:
    def test_context_manager(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_start_stop(self):
        t = Timer()
        t.start()
        time.sleep(0.005)
        elapsed = t.stop()
        assert elapsed >= 0.004
        assert t.elapsed == elapsed

    def test_stop_without_start_asserts(self):
        with pytest.raises(AssertionError):
            Timer().stop()


class TestTopKResult:
    def _stats(self):
        counter = AccessCounter()
        counter.count_computed(0)
        return counter

    def test_from_pairs(self):
        result = TopKResult.from_pairs([(3.0, 7), (1.0, 2)], self._stats(), "x")
        assert result.ids == (7, 2)
        assert result.scores == (3.0, 1.0)
        assert result.algorithm == "x"

    def test_rejects_increasing_scores(self):
        with pytest.raises(ValueError, match="non-increasing"):
            TopKResult(ids=(1, 2), scores=(1.0, 2.0), stats=self._stats())

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            TopKResult(ids=(1,), scores=(1.0, 2.0), stats=self._stats())

    def test_iteration(self):
        result = TopKResult.from_pairs([(3.0, 7), (1.0, 2)], self._stats())
        assert list(result) == [(7, 3.0), (2, 1.0)]

    def test_id_set(self):
        result = TopKResult.from_pairs([(3.0, 7), (1.0, 2)], self._stats())
        assert result.id_set == frozenset({2, 7})

    def test_score_multiset_sorted_desc(self):
        result = TopKResult.from_pairs([(3.0, 7), (3.0, 2), (1.0, 4)], self._stats())
        assert result.score_multiset() == (3.0, 3.0, 1.0)

    def test_repr_preview(self):
        result = TopKResult.from_pairs([(3.0, 7)], self._stats(), "alg")
        assert "alg" in repr(result)
        assert "7:3" in repr(result)

    def test_equality_ignores_stats(self):
        a = TopKResult.from_pairs([(3.0, 7)], self._stats())
        other_stats = AccessCounter()
        other_stats.count_computed(1)
        other_stats.count_computed(2)
        b = TopKResult.from_pairs([(3.0, 7)], other_stats)
        assert a == b
