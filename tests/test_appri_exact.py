"""Unit tests for the exact 2-d minimal-rank sweep (AppRI extension)."""

import numpy as np
import pytest

from repro.baselines.appri import (
    AppRIIndex,
    exact_minimum_rank_2d,
    minimum_rank_estimate,
    sample_query_vectors,
)
from repro.core.functions import LinearFunction
from repro.data.generators import correlated, uniform
from repro.data.server import server_dataset
from tests.conftest import assert_correct_topk


def brute_minimum_rank(values):
    """Reference: strict rank minimized over all crossing w values ± eps."""
    n = len(values)
    candidates = {0.0, 1.0}
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            a = values[j, 0] - values[i, 0]
            b = values[j, 1] - values[i, 1]
            if a != b:
                w = -b / (a - b)
                if 0 <= w <= 1:
                    for eps in (-1e-9, 0.0, 1e-9):
                        candidates.add(min(1.0, max(0.0, w + eps)))
    best = np.full(n, n, dtype=int)
    for w in candidates:
        scores = values @ np.array([w, 1 - w])
        strict = np.array([int(np.sum(scores > s)) + 1 for s in scores])
        best = np.minimum(best, strict)
    return best


class TestExactMinimumRank2D:
    @pytest.mark.parametrize("maker,seed", [
        (uniform, 11), (uniform, 12), (correlated, 13),
    ])
    def test_matches_bruteforce(self, maker, seed):
        values = maker(35, 2, seed=seed).values
        np.testing.assert_array_equal(
            exact_minimum_rank_2d(values), brute_minimum_rank(values)
        )

    def test_tie_heavy_data(self):
        values = server_dataset(35, seed=14).values[:, :2]
        np.testing.assert_array_equal(
            exact_minimum_rank_2d(values), brute_minimum_rank(values)
        )

    def test_never_above_sampled_estimate(self):
        values = uniform(60, 2, seed=15).values
        exact = exact_minimum_rank_2d(values)
        sampled = minimum_rank_estimate(values, sample_query_vectors(2))
        assert np.all(exact <= sampled)

    def test_dominated_chain(self):
        values = np.array([[3.0, 3.0], [2.0, 2.0], [1.0, 1.0]])
        np.testing.assert_array_equal(exact_minimum_rank_2d(values), [1, 2, 3])

    def test_hull_extremes_rank_one(self):
        values = np.array([[5.0, 0.0], [0.0, 5.0], [3.0, 3.0], [1.0, 1.0]])
        ranks = exact_minimum_rank_2d(values)
        assert ranks[0] == 1 and ranks[1] == 1 and ranks[2] == 1
        assert ranks[3] > 1

    def test_duplicates_tie_in_own_favour(self):
        values = np.array([[1.0, 1.0], [1.0, 1.0]])
        np.testing.assert_array_equal(exact_minimum_rank_2d(values), [1, 1])

    def test_rejects_wrong_dims(self):
        with pytest.raises(ValueError):
            exact_minimum_rank_2d(np.ones((3, 3)))


class TestAppRIWithExactLayers:
    def test_2d_index_uses_exact_layers(self):
        dataset = uniform(100, 2, seed=16)
        appri = AppRIIndex(dataset)
        exact = exact_minimum_rank_2d(dataset.values)
        # Empty min-rank levels are dropped, so the layer count equals the
        # number of distinct exact ranks.
        assert appri.num_layers == len(np.unique(exact))
        assert sum(appri.layer_sizes()) == len(dataset)

    @pytest.mark.parametrize("k", [1, 10, 30])
    def test_2d_queries_correct(self, k):
        dataset = uniform(150, 2, seed=17)
        f = LinearFunction([0.7, 0.3])
        assert_correct_topk(AppRIIndex(dataset).top_k(f, k), dataset, f, k)

    def test_exact_layers_never_shallower_than_needed(self):
        # Every top-k record truly lies within the first k exact layers —
        # the robust-index guarantee the estimate can only approximate.
        dataset = uniform(120, 2, seed=18)
        appri = AppRIIndex(dataset)
        exact = exact_minimum_rank_2d(dataset.values)
        rng = np.random.default_rng(19)
        for _ in range(10):
            w = float(rng.uniform())
            f = LinearFunction([w, 1 - w])
            scores = f.score_many(dataset.values)
            k = 5
            top = np.argsort(-scores, kind="stable")[:k]
            strict_rank = np.array(
                [int(np.sum(scores > scores[t])) + 1 for t in top]
            )
            assert np.all(exact[top] <= strict_rank)


class TestGraphStatistics:
    def test_statistics_keys_and_consistency(self):
        from repro.core.builder import build_extended_graph
        from repro.data.generators import all_skyline

        dataset = all_skyline(100, 3, seed=20)
        graph = build_extended_graph(dataset, theta=8)
        stats = graph.statistics()
        assert stats["records"] == len(graph)
        assert stats["real_records"] == 100
        assert stats["pseudo_records"] == graph.num_pseudo
        assert stats["layers"] == graph.num_layers
        assert stats["edges"] == graph.edge_count()
        assert stats["max_layer_width"] == max(graph.layer_sizes())
        assert stats["pseudo_levels"] >= 1
        assert stats["mean_parents"] >= 1.0
