"""Unit tests for the view-based baselines: PREFER and LPTA."""

import numpy as np
import pytest

from repro.baselines.lpta import LPTAIndex
from repro.baselines.prefer import PreferIndex, watermark_bound
from repro.core.functions import LinearFunction, MinFunction
from repro.data.generators import correlated, gaussian, uniform
from tests.conftest import assert_correct_topk


class TestWatermarkBound:
    def test_binding_budget(self):
        # max x+y s.t. x+y <= 1 inside the unit box = 1.
        bound = watermark_bound(
            np.array([1.0, 1.0]), np.array([1.0, 1.0]), 1.0,
            np.zeros(2), np.ones(2),
        )
        assert bound == pytest.approx(1.0)

    def test_loose_budget_hits_box_corner(self):
        bound = watermark_bound(
            np.array([1.0, 2.0]), np.array([1.0, 1.0]), 100.0,
            np.zeros(2), np.ones(2),
        )
        assert bound == pytest.approx(3.0)

    def test_prefers_efficient_dimension(self):
        # Query values dim 1 highly; view charges both equally: all the
        # budget should go to dim 1.
        bound = watermark_bound(
            np.array([0.1, 1.0]), np.array([1.0, 1.0]), 1.0,
            np.zeros(2), np.ones(2),
        )
        assert bound == pytest.approx(1.0)

    def test_free_dimension_maxed(self):
        bound = watermark_bound(
            np.array([1.0, 1.0]), np.array([1.0, 0.0]), 0.0,
            np.zeros(2), np.ones(2),
        )
        assert bound == pytest.approx(1.0)  # dim 1 free, dim 0 stuck at 0

    def test_upper_bounds_every_feasible_record(self, rng):
        # The LP bound must dominate q·u for all u in the box with v·u <= s.
        q = rng.uniform(size=3)
        v = rng.uniform(0.1, 1.0, size=3)
        low, high = np.zeros(3), np.ones(3)
        points = rng.uniform(size=(200, 3))
        s = float(np.median(points @ v))
        bound = watermark_bound(q, v, s, low, high)
        feasible = points[points @ v <= s]
        assert np.all(feasible @ q <= bound + 1e-9)


class TestPreferIndex:
    @pytest.mark.parametrize("maker", [uniform, gaussian, correlated])
    @pytest.mark.parametrize("k", [1, 10, 30])
    def test_matches_bruteforce(self, maker, k):
        dataset = maker(200, 3, seed=53)
        prefer = PreferIndex(dataset)
        f = LinearFunction([0.5, 0.3, 0.2])
        assert_correct_topk(prefer.top_k(f, k), dataset, f, k)

    def test_rejects_nonlinear(self, small_dataset):
        with pytest.raises(TypeError, match="linear"):
            PreferIndex(small_dataset).top_k(MinFunction(), 3)

    def test_best_view_selection(self):
        dataset = uniform(100, 2, seed=54)
        views = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        prefer = PreferIndex(dataset, view_vectors=views)
        assert prefer.best_view(LinearFunction([0.9, 0.1])) == 0
        assert prefer.best_view(LinearFunction([0.5, 0.5])) == 2

    def test_perfect_view_match_scans_little(self):
        dataset = uniform(400, 3, seed=55)
        views = np.array([[0.5, 0.3, 0.2]])
        prefer = PreferIndex(dataset, view_vectors=views)
        result = prefer.top_k(LinearFunction([0.5, 0.3, 0.2]), 10)
        # The view ranking IS the answer ranking; the watermark fires as
        # soon as k records are read plus whatever the box bound needs.
        assert result.stats.computed < len(dataset) / 4

    def test_view_vector_shape_checked(self, small_dataset):
        with pytest.raises(ValueError):
            PreferIndex(small_dataset, view_vectors=np.ones((2, 5)))

    def test_num_views(self, small_dataset):
        prefer = PreferIndex(small_dataset, view_vectors=np.eye(2))
        assert prefer.num_views == 2

    def test_rejects_nonpositive_k(self, small_dataset):
        with pytest.raises(ValueError):
            PreferIndex(small_dataset).top_k(LinearFunction([0.5, 0.5]), 0)

    def test_k_larger_than_dataset(self, small_dataset):
        f = LinearFunction([0.5, 0.5])
        assert len(PreferIndex(small_dataset).top_k(f, 99)) == len(small_dataset)


class TestLPTAIndex:
    @pytest.mark.parametrize("maker", [uniform, gaussian])
    @pytest.mark.parametrize("k", [1, 10])
    def test_matches_bruteforce(self, maker, k):
        dataset = maker(150, 3, seed=63)
        lpta = LPTAIndex(dataset)
        f = LinearFunction([0.5, 0.3, 0.2])
        assert_correct_topk(lpta.top_k(f, k), dataset, f, k)

    def test_rejects_nonlinear(self, small_dataset):
        with pytest.raises(TypeError, match="linear"):
            LPTAIndex(small_dataset).top_k(MinFunction(), 3)

    def test_rejects_bad_bound_period(self, small_dataset):
        with pytest.raises(ValueError):
            LPTAIndex(small_dataset, bound_period=0)

    def test_bound_period_does_not_change_answers(self):
        dataset = uniform(150, 3, seed=64)
        f = LinearFunction([0.4, 0.3, 0.3])
        fast = LPTAIndex(dataset, bound_period=1).top_k(f, 10)
        lazy = LPTAIndex(dataset, bound_period=16).top_k(f, 10)
        assert fast.score_multiset() == pytest.approx(lazy.score_multiset())

    def test_custom_views(self):
        dataset = uniform(120, 2, seed=65)
        lpta = LPTAIndex(dataset, view_vectors=np.array([[1.0, 0.0], [0.0, 1.0]]))
        f = LinearFunction([0.6, 0.4])
        assert_correct_topk(lpta.top_k(f, 5), dataset, f, 5)

    def test_correlated_terminates_early(self):
        dataset = correlated(300, 3, seed=66)
        result = LPTAIndex(dataset).top_k(LinearFunction([1 / 3] * 3), 5)
        assert result.stats.computed < len(dataset)
