"""Parity sweep: every fabric mode must equal the reference bit-for-bit.

The parallel fabric (:mod:`repro.parallel`) answers queries three ways —
one full Traveler per query, hash-sharded scans k-way merged by the
executor, and the layer-progressive batch kernel — and all of them
promise answers *bit-identical* to the reference
:class:`~repro.core.advanced.AdvancedTraveler`: same ids, same float
scores, same ``(-score, id)`` order.  This sweep checks that promise
across dimensionalities, ``k`` values, pseudo levels (Extended DG), and
the paper's cheap deletion (:func:`~repro.core.maintenance.mark_deleted`),
for both the in-process batch kernel and real forked worker pools.

Access *tallies* are intentionally not compared for the shard and batch
modes: they trade extra score computations for vectorization (whole
layers / whole shards at a time), so their counters legitimately exceed
the best-first traversal's.  Only the answers carry the bit-identity
contract.
"""

import numpy as np
import pytest

from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.compiled import batch_top_k
from repro.core.functions import LinearFunction, WeightedPowerFunction
from repro.core.maintenance import mark_deleted
from repro.data.generators import uniform
from repro.parallel import ParallelQueryExecutor

N = 160
KS = (1, 10, 50)
VARIANTS = ("plain", "pseudo", "deleted")


def build_variant(dims: int, variant: str):
    """A graph with / without pseudo levels and marked deletions."""
    dataset = uniform(N, dims, seed=100 + dims)
    if variant == "plain":
        return build_dominant_graph(dataset)
    graph = build_extended_graph(dataset, theta=3)
    if variant == "deleted":
        # Delete a third of the records the reference would rank highest,
        # so the deletion path actually changes every answer prefix.
        probe = AdvancedTraveler(graph).top_k(
            LinearFunction(np.full(dims, 1.0 / dims)), 30
        )
        for record_id in probe.ids[::3]:
            mark_deleted(graph, record_id)
    return graph


def make_functions(dims: int) -> list:
    """Two linear and one nonlinear monotone function per dimensionality."""
    rng = np.random.default_rng(dims)
    return [
        LinearFunction(rng.dirichlet(np.ones(dims))),
        LinearFunction(np.full(dims, 1.0 / dims)),
        WeightedPowerFunction(rng.dirichlet(np.ones(dims)), p=2.0),
    ]


def assert_answers_identical(reference, got, label: str) -> None:
    assert reference.ids == got.ids, label
    assert reference.scores == got.scores, label


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("dims", [2, 3, 4, 5])
def test_fabric_modes_match_reference(dims, variant):
    graph = build_variant(dims, variant)
    compiled = graph.compile()
    reference = AdvancedTraveler(graph)
    functions = make_functions(dims)

    with ParallelQueryExecutor(compiled, workers=2, batch_size=2) as pool:
        for k in KS:
            expected = [reference.top_k(f, k) for f in functions]
            for mode in ("full", "batch", "shard"):
                got = pool.map_queries(functions, k, mode=mode)
                for ref, out in zip(expected, got):
                    assert_answers_identical(
                        ref, out, f"{mode} d={dims} {variant} k={k}"
                    )
            inproc = batch_top_k(compiled, functions, k)
            for ref, out in zip(expected, inproc):
                assert_answers_identical(
                    ref, out, f"inproc-batch d={dims} {variant} k={k}"
                )


@pytest.mark.parametrize("dims", [2, 4])
def test_fabric_filtered_path_matches_reference(dims):
    graph = build_variant(dims, "pseudo")
    compiled = graph.compile()
    reference = AdvancedTraveler(graph)
    functions = make_functions(dims)
    where = _first_above_300

    with ParallelQueryExecutor(compiled, workers=2, batch_size=2) as pool:
        for k in (1, 10):
            expected = [reference.top_k(f, k, where=where) for f in functions]
            for mode in ("full", "batch", "shard"):
                got = pool.map_queries(functions, k, where=where, mode=mode)
                for ref, out in zip(expected, got):
                    assert_answers_identical(
                        ref, out, f"where {mode} d={dims} k={k}"
                    )


def _first_above_300(vector) -> bool:
    """Module-level so it pickles by reference into worker tasks."""
    return bool(vector[0] > 300.0)


def test_single_query_helpers_match_reference():
    graph = build_variant(3, "pseudo")
    compiled = graph.compile()
    reference = AdvancedTraveler(graph)
    function = make_functions(3)[0]
    expected = reference.top_k(function, 10)

    with ParallelQueryExecutor(compiled, workers=2) as pool:
        assert_answers_identical(expected, pool.query(function, 10), "query")
        assert_answers_identical(
            expected, pool.query_sharded(function, 10), "query_sharded"
        )


def test_full_mode_stats_match_compiled_engine():
    """Full mode runs the exact single-process kernel, counters included."""
    from repro.core.compiled import CompiledAdvancedTraveler

    graph = build_variant(3, "pseudo")
    compiled = graph.compile()
    function = make_functions(3)[0]
    expected = CompiledAdvancedTraveler(compiled).top_k(function, 10)

    with ParallelQueryExecutor(compiled, workers=1) as pool:
        got = pool.query(function, 10)
    assert expected.stats.computed == got.stats.computed
    assert expected.stats.pseudo_computed == got.stats.pseudo_computed
    assert expected.stats.computed_ids == got.stats.computed_ids
