"""Fig. 8 — DG maintenance cost (Experiment 3).

Two panels: cumulative insertion and deletion time versus batch size on
U3 / G3 / R3, plus the paper's closing comparison: the same insertion
batch absorbed incrementally by DG versus re-constructing ONION and AppRI
(the paper reports ~19,000s and ~13,000s re-construction vs 14s for DG at
its scale).

Paper shape: maintenance time grows roughly linearly in the batch size
and stays orders of magnitude below layer re-construction.
"""

import pytest

from repro.bench import experiments as E
from repro.core.builder import build_dominant_graph
from repro.core.maintenance import delete_record, insert_record
from repro.data.generators import make_dataset

from bench_utils import emit, geometric_mean_ratio


@pytest.fixture(scope="module")
def fig8_tables():
    return {
        "insert": emit(E.fig8_maintenance("insert"), "fig8a_insert"),
        "delete": emit(E.fig8_maintenance("delete"), "fig8b_delete"),
        "rebuild": emit(E.fig8_rebuild_comparison(), "fig8_rebuild_comparison"),
    }


def test_bench_insert(benchmark, fig8_tables):
    # Shape: cumulative time is non-decreasing in the batch size for
    # every dataset family.
    for key in ("insert", "delete"):
        for series in fig8_tables[key].series:
            assert series.y == sorted(series.y), (key, series.label)

    n = E.scale(2000)
    dataset = make_dataset("U", n + 64, 3, seed=1)
    state = {"next": n, "graph": build_dominant_graph(dataset, record_ids=range(n))}

    def insert_one():
        if state["next"] >= len(dataset):
            state["graph"] = build_dominant_graph(dataset, record_ids=range(n))
            state["next"] = n
        insert_record(state["graph"], state["next"])
        state["next"] += 1

    benchmark.pedantic(insert_one, rounds=30, iterations=1)


def test_bench_delete(benchmark, fig8_tables):
    # Shape: DG's incremental maintenance beats both layer-baseline
    # re-construction strategies for the same batch.
    table = fig8_tables["rebuild"]
    dg = table.series_by_label("DG")
    for rival in ("ONION", "AppRI-rebuild"):
        ratio = geometric_mean_ratio(table.series_by_label(rival), dg)
        assert ratio > 1.0, (rival, ratio)

    n = E.scale(2000)
    dataset = make_dataset("U", n, 3, seed=2)
    state = {"victims": [], "graph": None}

    def delete_one():
        if not state["victims"]:
            state["graph"] = build_dominant_graph(dataset)
            state["victims"] = list(range(0, n, max(1, n // 64)))
        delete_record(state["graph"], state["victims"].pop())

    benchmark.pedantic(delete_one, rounds=30, iterations=1)
