"""Index-store cold-open and shared-memory economics (``BENCH_store.json``).

Two claims from ``docs/storage.md`` are priced here, at several index
sizes:

1. **Cold opens are O(header), not O(file).**  ``open_store`` fast-
   verifies the TOC and maps the payload lazily, so opening a store
   file costs microseconds regardless of payload size — against the
   legacy ``.npz`` load, which materializes (and checksums) every array
   before the first query can run.  Deep verification (re-hashing every
   section) is reported alongside as the knowingly-O(file) option.
2. **N processes, one physical copy.**  Mapped store pages live in the
   page cache once, however many processes map them; ``.npz`` loading
   pays a private heap copy per process.  Measured as proportional-set
   size (PSS) from ``/proc/<pid>/smaps_rollup`` across 4 worker
   processes attaching the same snapshot each way.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py
    PYTHONPATH=src python benchmarks/bench_store.py --smoke --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import sys
import tempfile
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_utils import measure  # noqa: E402

from repro.core.builder import build_dominant_graph  # noqa: E402
from repro.core.io import load_graph, save_graph  # noqa: E402
from repro.data.generators import uniform  # noqa: E402
from repro.store import (  # noqa: E402
    COMPILED_SECTIONS,
    StoreStamp,
    open_store,
    write_store,
)

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_store.json")

#: Worker processes for the shared-copy RSS measurement.
PROCESSES = 4


def _pss_kb() -> "int | None":
    """This process's proportional-set size in kB (Linux only)."""
    try:
        with open(f"/proc/{os.getpid()}/smaps_rollup") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def _mapped_worker(path: str, queue: "mp.Queue") -> None:
    """Attach the store zero-copy, touch every section, report PSS."""
    store = open_store(path)
    total = 0.0
    for name in store.info.section_names:
        view = store.section(name)
        if view.size:
            total += float(np.asarray(view).reshape(-1)[:: max(1, view.size // 64)].astype(np.float64, copy=False).sum())
    queue.put({"pss_kb": _pss_kb(), "checksum": total})
    store.close()


def _npz_worker(path: str, queue: "mp.Queue") -> None:
    """Load the legacy archive privately (full copy), report PSS."""
    graph = load_graph(path)
    queue.put({"pss_kb": _pss_kb(), "records": len(graph)})


def _fanout(target, path: str) -> "list[dict]":
    ctx = mp.get_context("spawn")
    queue: "mp.Queue" = ctx.Queue()
    procs = [
        ctx.Process(target=target, args=(path, queue), daemon=True)
        for _ in range(PROCESSES)
    ]
    for proc in procs:
        proc.start()
    replies = [queue.get(timeout=120) for _ in procs]
    for proc in procs:
        proc.join(timeout=30)
    return replies


def run_cell(n: int, dims: int, seed: int) -> dict:
    """One index size: cold-open latencies and 4-process PSS, both formats."""
    dataset = uniform(n, dims, seed=seed)
    graph = build_dominant_graph(dataset)
    compiled = graph.compile().detach()
    arrays = {name: getattr(compiled, name) for name in COMPILED_SECTIONS}
    stamp = StoreStamp(
        kind="compiled", first_layer_size=compiled.first_layer_size
    )

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "index.dgs")
        npz_path = os.path.join(tmp, "index.npz")
        write_begin = time.perf_counter()
        write_store(store_path, arrays, stamp)
        store_write_s = time.perf_counter() - write_begin
        save_graph(graph, npz_path)

        # Cold-open latency.  open_store's fast path reads only the TOC;
        # deep=True re-hashes every section; np.load + validation reads
        # and copies everything.  (Files sit in page cache either way —
        # the point is bytes *processed*, which is what scales.)
        fast = measure(
            lambda: open_store(store_path).close(), repeats=9, warmup=2
        )
        deep = measure(
            lambda: open_store(store_path, deep=True).close(),
            repeats=5,
            warmup=1,
        )
        npz = measure(lambda: load_graph(npz_path), repeats=5, warmup=1)

        mapped_rss = _fanout(_mapped_worker, store_path)
        npz_rss = _fanout(_npz_worker, npz_path)

        cell = {
            "n": n,
            "dims": dims,
            "store_bytes": os.path.getsize(store_path),
            "npz_bytes": os.path.getsize(npz_path),
            "store_write_seconds": store_write_s,
            "open_fast_median_ms": 1000.0 * fast["median_seconds"],
            "open_deep_median_ms": 1000.0 * deep["median_seconds"],
            "npz_load_median_ms": 1000.0 * npz["median_seconds"],
            "open_fast_timing": fast,
            "open_deep_timing": deep,
            "npz_load_timing": npz,
            "processes": PROCESSES,
            "mapped_pss_kb": [r["pss_kb"] for r in mapped_rss],
            "npz_pss_kb": [r["pss_kb"] for r in npz_rss],
        }
    for key in ("mapped_pss_kb", "npz_pss_kb"):
        values = [v for v in cell[key] if v is not None]
        cell[key.replace("_kb", "_total_kb")] = (
            sum(values) if values else None
        )
    print(
        f"n={n:>8}  store={cell['store_bytes'] / 1e6:8.2f}MB  "
        f"open(fast)={cell['open_fast_median_ms']:7.3f}ms  "
        f"open(deep)={cell['open_deep_median_ms']:8.2f}ms  "
        f"npz load={cell['npz_load_median_ms']:8.2f}ms  "
        f"PSS {PROCESSES}x mapped="
        f"{(cell['mapped_pss_total_kb'] or 0) / 1024:7.1f}MB vs npz="
        f"{(cell['npz_pss_total_kb'] or 0) / 1024:7.1f}MB"
    )
    return cell


def run_synthetic_cell(payload_mb: int, seed: int) -> dict:
    """A store with a large raw payload: cold-open cost vs bulk bytes.

    Skips graph construction entirely — the point is that ``open_store``
    touches only the TOC, so a payload of hundreds of megabytes (or,
    identically, many gigabytes: the fast path's work is constant in
    payload size) opens as fast as a toy one.
    """
    rng = np.random.default_rng(seed)
    rows = max(1, (payload_mb * 1024 * 1024) // (8 * 64))
    arrays = {
        "values": rng.random((rows, 64)),
        "record_ids": np.arange(rows, dtype=np.int64),
    }
    stamp = StoreStamp(kind="synthetic")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bulk.dgs")
        write_begin = time.perf_counter()
        write_store(path, arrays, stamp)
        write_s = time.perf_counter() - write_begin
        fast = measure(lambda: open_store(path).close(), repeats=9, warmup=2)
        cell = {
            "payload_mb": payload_mb,
            "store_bytes": os.path.getsize(path),
            "store_write_seconds": write_s,
            "open_fast_median_ms": 1000.0 * fast["median_seconds"],
            "open_fast_timing": fast,
        }
    print(
        f"synthetic {cell['store_bytes'] / 1e6:8.1f}MB  "
        f"open(fast)={cell['open_fast_median_ms']:7.3f}ms  "
        f"write={write_s:6.2f}s"
    )
    return cell


def main(argv=None) -> int:
    """Entry point: sweep index sizes and write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI smoke testing")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path (default: repo-root "
                             "BENCH_store.json)")
    parser.add_argument("--dims", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--synthetic-mb", type=int, default=None,
                        help="payload size for the raw bulk-open cell "
                             "(default: 512, or 16 with --smoke)")
    args = parser.parse_args(argv)

    sizes = (500, 2_000) if args.smoke else (2_000, 20_000, 100_000)
    cells = [run_cell(n, args.dims, args.seed) for n in sizes]
    synthetic_mb = (
        args.synthetic_mb
        if args.synthetic_mb is not None
        else (16 if args.smoke else 512)
    )
    synthetic = run_synthetic_cell(synthetic_mb, args.seed)

    # The acceptance claim: fast opens must not scale with payload size.
    # Compare the largest cell against the smallest — a cold open that
    # reads section pages would blow this ratio up with the file size.
    small, large = cells[0], cells[-1]
    size_ratio = large["store_bytes"] / max(1, small["store_bytes"])
    open_ratio = large["open_fast_median_ms"] / max(
        1e-9, small["open_fast_median_ms"]
    )
    report = {
        "benchmark": "store_cold_open_and_shared_rss",
        "workload": (
            "uniform data; .dgs fast/deep open vs legacy .npz load; "
            f"PSS across {PROCESSES} attaching processes"
        ),
        "smoke": args.smoke,
        "sizes": list(sizes),
        "results": cells,
        "synthetic_bulk": synthetic,
        "scaling": {
            "store_size_ratio": size_ratio,
            "open_fast_latency_ratio": open_ratio,
            "open_is_header_bound": open_ratio < size_ratio / 4.0,
        },
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
