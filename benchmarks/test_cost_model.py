"""Theorem 3.1 / 3.2 validation bench: measured vs predicted cost.

Not a figure in the paper, but the paper's central analytical claim: the
Basic Traveler's cost is k - 1 + |skyline(S2-bar)|, and the closed-form
harmonic estimate tracks it.  The measured cost may exceed the exact
prediction by the handful of records affected by the proof's
parent-vs-dominator gap (see the erratum in repro.core.cost).
"""

import pytest

from repro.bench import experiments as E
from repro.core.builder import build_dominant_graph
from repro.core.cost import predicted_cost, search_space
from repro.core.traveler import BasicTraveler
from repro.data.generators import make_dataset

from bench_utils import emit


@pytest.fixture(scope="module")
def cost_table():
    return emit(E.cost_model(), "cost_model")


def test_bench_search_space_prediction(benchmark, cost_table):
    measured = cost_table.series_by_label("measured")
    exact = cost_table.series_by_label("thm3.1-exact")
    estimate = cost_table.series_by_label("thm3.2-estimate")
    for m, e, est in zip(measured.y, exact.y, estimate.y):
        assert m >= e  # predicted set is always scored
        assert m <= e * 1.15 + 5  # erratum surplus stays small
        assert 0.2 < est / m < 5.0  # harmonic estimate tracks reality

    dataset = make_dataset("U", E.scale(2000), 3, seed=0)
    function = E.canonical_query(3)
    benchmark(search_space, dataset, function, 50)


def test_bench_traveler_vs_prediction(benchmark):
    dataset = make_dataset("U", E.scale(2000), 3, seed=0)
    function = E.canonical_query(3)
    traveler = BasicTraveler(build_dominant_graph(dataset))
    predicted = predicted_cost(dataset, function, 50)
    result = benchmark(traveler.top_k, function, 50)
    assert result.stats.computed >= predicted
