"""Parallel query fabric throughput benchmark (``BENCH_parallel.json``).

Answers one question: given a fixed batch of linear top-k queries over a
compiled snapshot, how does aggregate throughput change when the batch
is pushed through the multi-process fabric (:mod:`repro.parallel`) at
1/2/4 workers, in ``full`` (one Traveler per query) and ``batch``
(layer-progressive matrix kernel) modes, versus answering the queries
one at a time in-process?  Every configuration is checked bit-identical
to the single-process engine before it is timed, so the numbers compare
*equivalent* work.

Two effects stack in the fabric numbers:

- the batched kernel scores all queries' weight vectors against each
  layer block in single numpy calls, which wins even on one core;
- multiple workers overlap traversals, which wins only when the host
  actually has spare cores (the report records ``host_cpus`` so readers
  can judge the worker curve accordingly).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py
    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke --out /tmp/b.json

The default grid is n in {10_000, 50_000} at d=4, k=50, 32 queries;
``--smoke`` shrinks it to a seconds-long sanity run for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_utils import measure  # noqa: E402

from repro.core.builder import build_dominant_graph  # noqa: E402
from repro.core.compiled import (  # noqa: E402
    CompiledAdvancedTraveler,
    batch_top_k,
)
from repro.core.functions import LinearFunction  # noqa: E402
from repro.data.generators import uniform  # noqa: E402
from repro.parallel import ParallelQueryExecutor, leaked_segments  # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_parallel.json")
WORKER_COUNTS = (1, 2, 4)


def make_queries(dims: int, count: int, seed: int = 0) -> list:
    """A fixed workload of normalized linear preference functions."""
    rng = np.random.default_rng(seed)
    return [LinearFunction(rng.dirichlet(np.ones(dims))) for _ in range(count)]


def check_identical(expected, got, label: str) -> None:
    """Assert two result lists agree bit for bit, query by query."""
    assert len(expected) == len(got), label
    for index, (ref, out) in enumerate(zip(expected, got)):
        assert ref.ids == out.ids and ref.scores == out.scores, (
            f"{label}: query {index} diverged from single-process engine"
        )


def time_mode(operation, queries: int, repeats: int) -> dict:
    """Throughput record for one configuration (warmed median timing)."""
    timing = measure(operation, repeats=repeats, warmup=1)
    seconds = timing["median_seconds"]
    return {
        "batch_seconds": seconds,
        "queries_per_second": queries / seconds if seconds > 0 else float("inf"),
        "timing": timing,
    }


def run_cell(n: int, dims: int, k: int, queries: int, repeats: int,
             seed: int) -> dict:
    """Benchmark one dataset size across all fabric configurations."""
    dataset = uniform(n, dims, seed=seed)
    graph = build_dominant_graph(dataset)
    compiled = graph.compile()
    workload = make_queries(dims, queries, seed=seed + 1)

    single = CompiledAdvancedTraveler(compiled)
    expected = [single.top_k(query, k) for query in workload]

    cell = {"n": n, "dims": dims, "k": k, "queries": queries, "modes": {}}

    cell["modes"]["single"] = time_mode(
        lambda: [single.top_k(query, k) for query in workload],
        queries, repeats,
    )
    base_qps = cell["modes"]["single"]["queries_per_second"]

    check_identical(expected, batch_top_k(compiled, workload, k), "batch-inprocess")
    cell["modes"]["batch-inprocess"] = time_mode(
        lambda: batch_top_k(compiled, workload, k), queries, repeats,
    )

    for workers in WORKER_COUNTS:
        pool = ParallelQueryExecutor(compiled, workers=workers)
        try:
            for mode in ("full", "batch"):
                label = f"fabric-{mode}-w{workers}"
                check_identical(
                    expected, pool.map_queries(workload, k, mode=mode), label
                )
                cell["modes"][label] = time_mode(
                    lambda m=mode: pool.map_queries(workload, k, mode=m),
                    queries, repeats,
                )
        finally:
            pool.shutdown()

    for label, record in cell["modes"].items():
        record["speedup_vs_single"] = record["queries_per_second"] / base_qps
        print(f"n={n:>6} d={dims} k={k}  {label:<18} "
              f"{record['queries_per_second']:9.1f} q/s  "
              f"({record['speedup_vs_single']:5.2f}x single)")
    return cell


def main(argv=None) -> int:
    """Entry point: run the grid and write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid for CI smoke testing")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path (default: repo-root "
                             "BENCH_parallel.json)")
    parser.add_argument("--k", type=int, default=50)
    parser.add_argument("--dims", type=int, default=4)
    parser.add_argument("--queries", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.smoke:
        grid = [500]
        args.queries = min(args.queries, 8)
        args.repeats = 1
        k = min(args.k, 10)
    else:
        grid = [10_000, 50_000]
        k = args.k

    start = time.perf_counter()
    cells = [
        run_cell(n, args.dims, k, args.queries, args.repeats, args.seed)
        for n in grid
    ]
    leaked = leaked_segments()
    assert not leaked, f"benchmark leaked shared-memory segments: {leaked}"

    headline_cell = cells[-1]
    headline = (
        headline_cell["modes"]["fabric-batch-w4"]["speedup_vs_single"]
    )
    report = {
        "benchmark": "parallel_query_fabric_throughput",
        "workload": "uniform data, Dirichlet linear functions, plain DG",
        "smoke": args.smoke,
        "host_cpus": os.cpu_count(),
        "worker_counts": list(WORKER_COUNTS),
        "results": cells,
        "headline": {
            "description": (
                "aggregate throughput of the 4-worker batched fabric vs "
                "the single-process compiled engine, largest grid cell"
            ),
            "n": headline_cell["n"],
            "dims": headline_cell["dims"],
            "k": headline_cell["k"],
            "speedup_vs_single": headline,
        },
        "wall_seconds": time.perf_counter() - start,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"headline: fabric-batch-w4 at n={headline_cell['n']} -> "
          f"{headline:.2f}x single-process")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
