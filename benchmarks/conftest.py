"""Pytest hook file: keeps benchmarks/ importable as a rootdir test path."""
