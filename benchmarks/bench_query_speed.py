"""Reference vs compiled engine query-speed benchmark (``BENCH_query.json``).

Runs the same linear top-k workload through the reference
:class:`~repro.core.advanced.AdvancedTraveler` and the compiled
flat-array kernel (:mod:`repro.core.compiled`) over a grid of uniform
datasets, and writes a machine-readable report.  Because the two engines
return bit-identical answers (enforced per query here and exhaustively
in ``tests/test_compiled_parity.py`` / ``tests/test_fast_lane.py``),
the comparison isolates pure engine overhead: Python object traversal +
per-record scoring versus the layer-progressive batch kernel (float32
fast lane with exact float64 boundary re-check; see
``docs/performance.md``).  Set ``REPRO_NATIVE=1`` with the ``[native]``
extra installed to time the numba build of the chunk loop; the active
lane is recorded under ``native`` in the report.

Usage::

    PYTHONPATH=src python benchmarks/bench_query_speed.py
    PYTHONPATH=src python benchmarks/bench_query_speed.py --smoke --out /tmp/b.json

The default grid is n in {10_000, 50_000} x d in {3, 4, 5} at k=50;
``--smoke`` shrinks it to a seconds-long sanity run for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_utils import measure  # noqa: E402

from repro.core import native  # noqa: E402
from repro.core.advanced import AdvancedTraveler  # noqa: E402
from repro.core.builder import build_dominant_graph  # noqa: E402
from repro.core.compiled import CompiledAdvancedTraveler  # noqa: E402
from repro.core.functions import LinearFunction  # noqa: E402
from repro.data.generators import uniform  # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_query.json")


def make_queries(dims: int, count: int, seed: int = 0) -> list:
    """A fixed workload of normalized linear preference functions."""
    rng = np.random.default_rng(seed)
    return [LinearFunction(rng.dirichlet(np.ones(dims))) for _ in range(count)]


def time_engine(traveler, queries, k: int, repeats: int) -> dict:
    """Warmed median-of-``repeats`` wall clock per query, plus records/sec.

    ``records_per_second`` is the engine's scoring throughput — records
    actually scored (the access tally) divided by query wall clock — on
    the single core this process runs on; it is the README's headline
    per-core number.
    """

    def one_round() -> None:
        for query in queries:
            traveler.top_k(query, k)

    timing = measure(one_round, repeats=repeats, warmup=1)
    per_query = timing["median_seconds"] / len(queries)
    computed = traveler.top_k(queries[-1], k).stats.computed
    return {
        "mean_query_seconds": per_query,
        "last_query_computed": computed,
        "records_per_second": computed / per_query if per_query > 0 else float("inf"),
        "timing": timing,
    }


def run_cell(n: int, dims: int, k: int, queries: int, repeats: int,
             seed: int) -> dict:
    """Benchmark one (n, dims) grid cell; also cross-checks answers."""
    dataset = uniform(n, dims, seed=seed)
    graph = build_dominant_graph(dataset)
    reference = AdvancedTraveler(graph)
    compile_start = time.perf_counter()
    compiled = CompiledAdvancedTraveler(graph.compile())
    compile_seconds = time.perf_counter() - compile_start

    workload = make_queries(dims, queries, seed=seed + 1)
    for query in workload:  # identical-answer guard before timing
        ref = reference.top_k(query, k)
        fast = compiled.top_k(query, k)
        assert ref.ids == fast.ids and ref.scores == fast.scores, (
            f"engine mismatch at n={n} d={dims}"
        )

    ref_stats = time_engine(reference, workload, k, repeats)
    fast_stats = time_engine(compiled, workload, k, repeats)
    speedup = (ref_stats["mean_query_seconds"]
               / fast_stats["mean_query_seconds"])
    cell = {
        "n": n,
        "dims": dims,
        "k": k,
        "queries": queries,
        "compile_seconds": compile_seconds,
        "reference": ref_stats,
        "compiled": fast_stats,
        "speedup": speedup,
    }
    print(f"n={n:>6} d={dims}  ref={1000 * ref_stats['mean_query_seconds']:8.3f}ms  "
          f"compiled={1000 * fast_stats['mean_query_seconds']:8.3f}ms  "
          f"speedup={speedup:5.2f}x")
    return cell


def main(argv=None) -> int:
    """Entry point: run the grid and write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid for CI smoke testing")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path (default: repo-root "
                             "BENCH_query.json)")
    parser.add_argument("--k", type=int, default=50)
    parser.add_argument("--queries", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.smoke:
        grid = [(500, 3)]
        args.queries = min(args.queries, 3)
        args.repeats = 1
        k = min(args.k, 10)
    else:
        grid = [(n, d) for n in (10_000, 50_000) for d in (3, 4, 5)]
        k = args.k

    cells = [
        run_cell(n, d, k, args.queries, args.repeats, args.seed)
        for n, d in grid
    ]
    headline = max(
        (c for c in cells if (c["n"], c["dims"]) == (50_000, 4)),
        default=cells[-1],
        key=lambda c: c["n"],
    )
    report = {
        "benchmark": "query_speed_reference_vs_compiled",
        "workload": "uniform data, Dirichlet linear functions, plain DG",
        "smoke": args.smoke,
        "native": native.status(),
        "results": cells,
        "min_speedup": min(c["speedup"] for c in cells),
        "max_speedup": max(c["speedup"] for c in cells),
        # The README's headline cell (n=50k, d=4, single process/core).
        "headline": {
            "n": headline["n"],
            "dims": headline["dims"],
            "k": headline["k"],
            "speedup": headline["speedup"],
            "compiled_records_per_second_per_core": (
                headline["compiled"]["records_per_second"]
            ),
        },
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
