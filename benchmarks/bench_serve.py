"""Serving-layer latency and write throughput (``BENCH_serve.json``).

Measures read-path p50/p99 while a background writer applies maintenance
at target write rates, with the WAL under ``fsync=always`` and
``fsync=never`` — the two ends of the durability matrix in
``docs/serving.md`` — and measures *sustained write throughput* with the
base+delta overlay enabled versus disabled, which is the tentpole
number: an O(changes) delta publish versus an O(n) recompile per
mutation.

The write generator is **open-loop**: the schedule of due times is fixed
by the target rate and never slips to match the writer's actual speed,
so a writer that cannot keep up accumulates *backlog* instead of
silently redefining the experiment.  Every loaded cell reports its
achieved-versus-target attainment and an explicit ``saturated`` flag —
the earlier closed-loop generator topped out near 47 ops/s against a
200/s target and reported nothing.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke --out /tmp/b.json

Each cell reports an unloaded single-read baseline (warmup +
median-of-repeats via :func:`bench_utils.measure`), reader p50/p99/mean
in milliseconds under load, achieved reader throughput, the writer's
achieved ops/s against its target with the saturation verdict, mean
per-mutation latency, and the publish-path decomposition: publish
p50/p99 (from the index's own sliding sample window), how many publishes
rode the O(changes) delta path, and the compaction ledger.  The durable
store checkpoint is timed as a separate explicit step
(``checkpoint_ms``).

In ``--smoke`` mode the run additionally *asserts* that the delta path
activated (delta publishes > 0 and overlay-on publish latency below
overlay-off) so CI notices if a regression silently reverts every
publish to a full recompile.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_utils import measure  # noqa: E402

from repro.core.builder import build_dominant_graph  # noqa: E402
from repro.core.functions import LinearFunction  # noqa: E402
from repro.data.generators import uniform  # noqa: E402
from repro.serve import ServingIndex  # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_serve.json")

#: Target background write rates (mutations per second).  0 is the
#: no-writer baseline every loaded cell is compared against.
WRITE_RATES = (0, 50, 200)


def percentile(samples: list, q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def run_cell(
    n: int,
    dims: int,
    fsync: str,
    write_rate: "int | None",
    duration: float,
    seed: int,
    overlay: bool = True,
    readers: int = 2,
) -> dict:
    """One cell: readers race a paced (or flat-out) writer.

    ``write_rate`` is mutations/second, ``0`` for no writer, or ``None``
    for an *unpaced* writer issuing back-to-back — the sustained-write-
    throughput measurement.  ``overlay`` toggles the O(changes) publish
    path (``overlay_limit=0`` disables it, forcing the pre-overlay
    recompile-per-mutation behaviour for comparison).  ``readers`` is
    the number of spinning reader threads; the throughput cells run with
    0 so the measured quantity is the write path itself, not GIL
    arbitration between the writer and busy-looping readers (read
    *latency* under write load is the paced cells' job).
    """
    rng = np.random.default_rng(seed)
    dataset = uniform(n, dims, seed=seed)
    start_ids = list(range(n // 2))
    graph = build_dominant_graph(dataset, record_ids=start_ids)
    function = LinearFunction(rng.dirichlet(np.ones(dims)))

    with tempfile.TemporaryDirectory() as tmp:
        index = ServingIndex.create(
            os.path.join(tmp, "serve"),
            graph,
            fsync=fsync,
            checkpoint_interval=None,
            max_concurrent=8,
            max_waiting=64,
            overlay_limit=128 if overlay else 0,
            compact_interval=0.05 if overlay else None,
        )
        try:
            # Unloaded single-read baseline with the shared warmup +
            # median-of-repeats discipline (bench_utils.measure), so this
            # report's statistics are comparable with BENCH_query.json's.
            baseline = measure(
                lambda: index.query(function, k=10), repeats=5, warmup=2
            )

            latencies: list = []
            writer_latencies: list = []
            scheduled = [0]
            stop = threading.Event()

            def issue(state: dict) -> None:
                """One alternating insert/delete mutation, timed."""
                op_start = time.perf_counter()
                if state["inserting"] and state["pending"]:
                    rid = state["pending"].pop()
                    index.insert(rid)
                    state["alive"].add(rid)
                elif state["alive"]:
                    rid = state["alive"].pop()
                    index.delete(rid)
                    state["pending"].append(rid)
                writer_latencies.append(time.perf_counter() - op_start)
                state["inserting"] = not state["inserting"]

            def writer() -> None:
                if write_rate == 0:
                    return
                state = {
                    "pending": list(range(n // 2, n)),
                    "alive": set(start_ids),
                    "inserting": True,
                }
                if write_rate is None:
                    # Unpaced: sustained throughput is the measurement.
                    while not stop.is_set():
                        issue(state)
                        scheduled[0] += 1
                    return
                # Open-loop pacing: due times advance on the wall clock,
                # never on op completion.  A slow writer falls behind and
                # catches up back-to-back; the schedule itself never
                # slips, so attainment below 1.0 means saturation, not a
                # quietly easier experiment.
                period = 1.0 / write_rate
                origin = time.perf_counter()
                while not stop.is_set():
                    due = origin + scheduled[0] * period
                    now = time.perf_counter()
                    if now < due:
                        time.sleep(min(period, due - now))
                        continue
                    scheduled[0] += 1
                    issue(state)

            def reader() -> None:
                while not stop.is_set():
                    begin = time.perf_counter()
                    index.query(function, k=10)
                    latencies.append(time.perf_counter() - begin)

            threads = [threading.Thread(target=writer, daemon=True)] + [
                threading.Thread(target=reader, daemon=True)
                for _ in range(readers)
            ]
            begin = time.perf_counter()
            for thread in threads:
                thread.start()
            time.sleep(duration)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            elapsed = time.perf_counter() - begin
            health = index.health()
            store_stats = health["store"]
            overlay_stats = health["overlay"]
            checkpoint_begin = time.perf_counter()
            index.checkpoint()
            checkpoint_ms = 1000.0 * (time.perf_counter() - checkpoint_begin)
        finally:
            index.close(checkpoint=False)

    publish = store_stats["publish"]
    publish_mean_ms = (
        publish["total_ms"] / publish["count"] if publish["count"] else None
    )
    achieved_rate = len(writer_latencies) / elapsed
    target = None if write_rate is None else float(write_rate)
    attainment = (
        achieved_rate / target if target else None
    )
    reads_ms = [1000.0 * t for t in latencies]
    cell = {
        "n": n,
        "dims": dims,
        "fsync": fsync,
        "overlay": overlay,
        "reader_threads": readers,
        "target_write_rate": write_rate,
        "duration_seconds": elapsed,
        "read_unloaded_median_ms": 1000.0 * baseline["median_seconds"],
        "read_unloaded_timing": baseline,
        "reads": len(reads_ms),
        "read_p50_ms": percentile(reads_ms, 50) if reads_ms else None,
        "read_p99_ms": percentile(reads_ms, 99) if reads_ms else None,
        "read_mean_ms": float(np.mean(reads_ms)) if reads_ms else None,
        "reads_per_second": len(reads_ms) / elapsed,
        "writes": len(writer_latencies),
        "scheduled_writes": scheduled[0],
        "achieved_write_rate": achieved_rate,
        "write_target_attainment": attainment,
        # Saturated = the writer could not hold its target schedule.
        "saturated": (
            attainment is not None and attainment < 0.95
        ),
        "write_mean_ms": (
            1000.0 * float(np.mean(writer_latencies))
            if writer_latencies
            else None
        ),
        # Publish-path decomposition: mean over the whole run plus the
        # index's own sliding-window percentiles, and the overlay ledger
        # that says *which* path those publishes took.
        "publish_count": publish["count"],
        "publish_mean_ms": publish_mean_ms,
        "publish_p50_ms": publish.get("p50_ms"),
        "publish_p99_ms": publish.get("p99_ms"),
        "delta_publishes": overlay_stats["delta_publishes"],
        "compactions": overlay_stats["compactions"]["count"],
        "forced_compactions": overlay_stats["compactions"]["forced"],
        "overlay_fallbacks": overlay_stats["fallbacks"],
        "checkpoint_ms": checkpoint_ms,
    }
    rate_label = "max" if write_rate is None else f"{write_rate}/s"
    saturation_note = ""
    if attainment is not None:
        saturation_note = (
            f"  attained={100 * attainment:5.1f}%"
            + (" SATURATED" if cell["saturated"] else "")
        )
    p50 = cell["read_p50_ms"] or 0.0
    p99 = cell["read_p99_ms"] or 0.0
    print(
        f"fsync={fsync:<6} overlay={str(overlay):<5} rate={rate_label:>6}  "
        f"p50={p50:7.3f}ms  p99={p99:7.3f}ms  "
        f"writes={cell['writes']:>5} ({achieved_rate:7.1f}/s)"
        f"{saturation_note}  publish p50="
        f"{cell['publish_p50_ms'] or 0:.3f}ms p99="
        f"{cell['publish_p99_ms'] or 0:.3f}ms "
        f"(delta {cell['delta_publishes']}, "
        f"compactions {cell['compactions']})"
    )
    return cell


def main(argv=None) -> int:
    """Entry point: sweep fsync x write-rate and write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long run for CI smoke testing")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path (default: repo-root "
                             "BENCH_serve.json)")
    parser.add_argument("--n", type=int, default=5_000)
    parser.add_argument("--dims", type=int, default=3)
    parser.add_argument("--duration", type=float, default=3.0,
                        help="seconds of load per cell")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    n = 600 if args.smoke else args.n
    duration = 0.5 if args.smoke else args.duration

    cells = [
        run_cell(n, args.dims, fsync, rate, duration, args.seed)
        for fsync in ("always", "never")
        for rate in WRITE_RATES
    ]
    # Sustained write throughput, overlay on vs off: the tentpole ratio.
    throughput_cells = [
        run_cell(
            n, args.dims, fsync, None, duration, args.seed,
            overlay=overlay, readers=0,
        )
        for fsync in ("always", "never")
        for overlay in (False, True)
    ]

    def throughput(fsync: str, overlay: bool) -> float:
        for cell in throughput_cells:
            if cell["fsync"] == fsync and cell["overlay"] == overlay:
                return cell["achieved_write_rate"]
        raise KeyError((fsync, overlay))

    speedups = {
        fsync: throughput(fsync, True) / throughput(fsync, False)
        for fsync in ("always", "never")
    }
    for fsync, ratio in speedups.items():
        print(f"sustained write throughput, fsync={fsync}: "
              f"overlay is {ratio:.1f}x the recompile-per-mutation path")

    report = {
        "benchmark": "serve_read_latency_under_writes",
        "workload": (
            "uniform data, linear reads (k=10, 2 reader threads) racing "
            "one open-loop paced insert/delete writer; plus unpaced "
            "sustained-write-throughput cells with the delta overlay "
            "on vs off"
        ),
        "smoke": args.smoke,
        "write_rates": list(WRITE_RATES),
        "results": cells,
        "write_throughput": throughput_cells,
        "overlay_write_speedup": speedups,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.smoke:
        # CI tripwire: the O(changes) path must actually be taken.  If a
        # regression silently reverts publishes to full recompiles, the
        # delta counter goes to zero and overlay-on publish latency
        # collapses onto overlay-off.
        overlay_on = [c for c in throughput_cells if c["overlay"]]
        assert all(c["delta_publishes"] > 0 for c in overlay_on), (
            "smoke: no delta publishes happened with the overlay enabled"
        )
        assert speedups["never"] > 1.0, (
            "smoke: overlay-on sustained write throughput did not beat "
            f"recompile-per-mutation (speedups={speedups})"
        )
        print("smoke assertions passed: delta publishes active, "
              f"fsync=never overlay speedup {speedups['never']:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
