"""Serving-layer latency under concurrent writes (``BENCH_serve.json``).

Measures read-path p50/p99 while a background writer applies maintenance
at three target write rates, with the WAL under ``fsync=always`` and
``fsync=never`` — the two ends of the durability matrix in
``docs/serving.md``.  Because readers run against RCU-pinned snapshots,
the interesting questions are (a) how much a concurrent writer perturbs
read tail latency and (b) what per-op price the fsync policy charges the
*writer* (reads never fsync).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke --out /tmp/b.json

Each cell reports an unloaded single-read baseline (warmup +
median-of-repeats via :func:`bench_utils.measure`, the same timing
discipline as the other BENCH_*.json reports), reader p50/p99/mean in
milliseconds under load, achieved reader throughput, the writer's
achieved ops/s against its target rate, and the mean per-mutation
latency (which under ``fsync=always`` is dominated by the fsync itself).
The per-mutation cost is further decomposed: the in-memory snapshot
republish each mutation triggers is reported on its own
(``publish_mean_ms``, from the index's health counters), and the durable
store checkpoint is timed as a separate explicit step
(``checkpoint_ms``) so writer latency is attributable to WAL fsync vs
snapshot compile vs checkpoint I/O.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_utils import measure  # noqa: E402

from repro.core.builder import build_dominant_graph  # noqa: E402
from repro.core.functions import LinearFunction  # noqa: E402
from repro.data.generators import uniform  # noqa: E402
from repro.serve import ServingIndex  # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_serve.json")

#: Target background write rates (mutations per second).  0 is the
#: no-writer baseline every loaded cell is compared against.
WRITE_RATES = (0, 50, 200)


def percentile(samples: list, q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def run_cell(
    n: int,
    dims: int,
    fsync: str,
    write_rate: int,
    duration: float,
    seed: int,
) -> dict:
    """One (fsync policy, write rate) cell: readers race a paced writer."""
    rng = np.random.default_rng(seed)
    dataset = uniform(n, dims, seed=seed)
    start_ids = list(range(n // 2))
    graph = build_dominant_graph(dataset, record_ids=start_ids)
    function = LinearFunction(rng.dirichlet(np.ones(dims)))

    with tempfile.TemporaryDirectory() as tmp:
        index = ServingIndex.create(
            os.path.join(tmp, "serve"),
            graph,
            fsync=fsync,
            checkpoint_interval=None,
            max_concurrent=8,
            max_waiting=64,
        )
        try:
            # Unloaded single-read baseline with the shared warmup +
            # median-of-repeats discipline (bench_utils.measure), so this
            # report's statistics are comparable with BENCH_query.json's.
            baseline = measure(
                lambda: index.query(function, k=10), repeats=5, warmup=2
            )

            latencies: list = []
            writer_latencies: list = []
            stop = threading.Event()

            def writer() -> None:
                """Alternate insert/delete at the target rate."""
                if write_rate == 0:
                    return
                pending = list(range(n // 2, n))
                alive = set(start_ids)
                period = 1.0 / write_rate
                next_due = time.perf_counter()
                inserting = True
                while not stop.is_set():
                    now = time.perf_counter()
                    if now < next_due:
                        time.sleep(min(period, next_due - now))
                        continue
                    op_start = time.perf_counter()
                    if inserting and pending:
                        rid = pending.pop()
                        index.insert(rid)
                        alive.add(rid)
                    elif alive:
                        rid = alive.pop()
                        index.delete(rid)
                        pending.append(rid)
                    writer_latencies.append(time.perf_counter() - op_start)
                    inserting = not inserting
                    next_due += period

            def reader() -> None:
                while not stop.is_set():
                    begin = time.perf_counter()
                    index.query(function, k=10)
                    latencies.append(time.perf_counter() - begin)

            threads = [threading.Thread(target=writer, daemon=True)] + [
                threading.Thread(target=reader, daemon=True) for _ in range(2)
            ]
            begin = time.perf_counter()
            for thread in threads:
                thread.start()
            time.sleep(duration)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            elapsed = time.perf_counter() - begin
            # Decompose the writer's cost: the per-mutation figure above
            # includes the in-memory snapshot republish (compile + swap),
            # tracked by the index itself; the durable checkpoint (store
            # file write + WAL truncation) is a separate, explicit step.
            store_stats = index.health()["store"]
            checkpoint_begin = time.perf_counter()
            index.checkpoint()
            checkpoint_ms = 1000.0 * (time.perf_counter() - checkpoint_begin)
        finally:
            index.close(checkpoint=False)

    publish = store_stats["publish"]
    publish_mean_ms = (
        publish["total_ms"] / publish["count"] if publish["count"] else None
    )

    reads_ms = [1000.0 * t for t in latencies]
    cell = {
        "n": n,
        "dims": dims,
        "fsync": fsync,
        "target_write_rate": write_rate,
        "duration_seconds": elapsed,
        "read_unloaded_median_ms": 1000.0 * baseline["median_seconds"],
        "read_unloaded_timing": baseline,
        "reads": len(reads_ms),
        "read_p50_ms": percentile(reads_ms, 50),
        "read_p99_ms": percentile(reads_ms, 99),
        "read_mean_ms": float(np.mean(reads_ms)),
        "reads_per_second": len(reads_ms) / elapsed,
        "writes": len(writer_latencies),
        "achieved_write_rate": len(writer_latencies) / elapsed,
        "write_mean_ms": (
            1000.0 * float(np.mean(writer_latencies))
            if writer_latencies
            else None
        ),
        # The write_mean_ms above includes the snapshot republish each
        # mutation triggers; these break that cost out, and price the
        # durable store checkpoint separately from the mutations.
        "publish_count": publish["count"],
        "publish_mean_ms": publish_mean_ms,
        "publish_last_ms": publish["last_ms"],
        "checkpoint_ms": checkpoint_ms,
    }
    print(
        f"fsync={fsync:<6} rate={write_rate:>4}/s  "
        f"p50={cell['read_p50_ms']:7.3f}ms  p99={cell['read_p99_ms']:7.3f}ms  "
        f"writes={cell['writes']:>4} "
        f"(mean {cell['write_mean_ms'] or 0:.2f}ms, publish "
        f"{publish_mean_ms or 0:.2f}ms, checkpoint {checkpoint_ms:.2f}ms)"
    )
    return cell


def main(argv=None) -> int:
    """Entry point: sweep fsync x write-rate and write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long run for CI smoke testing")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path (default: repo-root "
                             "BENCH_serve.json)")
    parser.add_argument("--n", type=int, default=5_000)
    parser.add_argument("--dims", type=int, default=3)
    parser.add_argument("--duration", type=float, default=3.0,
                        help="seconds of load per cell")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    n = 600 if args.smoke else args.n
    duration = 0.5 if args.smoke else args.duration

    cells = [
        run_cell(n, args.dims, fsync, rate, duration, args.seed)
        for fsync in ("always", "never")
        for rate in WRITE_RATES
    ]
    report = {
        "benchmark": "serve_read_latency_under_writes",
        "workload": (
            "uniform data, linear reads (k=10, 2 reader threads) racing "
            "one paced insert/delete writer"
        ),
        "smoke": args.smoke,
        "write_rates": list(WRITE_RATES),
        "results": cells,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
