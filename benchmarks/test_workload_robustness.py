"""Workload robustness: every algorithm over whole query workloads.

The paper evaluates one canonical query per figure; this bench sweeps
Dirichlet query workloads from opinionated (alpha = 0.2, weight piled on
few attributes) to balanced (alpha = 20) and checks that the DG's
advantage is not an artifact of a particular weight vector — the index is
query-agnostic, which is its core selling point against the view-based
baselines whose performance depends on query/view alignment.
"""

import pytest

from repro.bench import experiments as E
from repro.bench.compare import compare_algorithms
from repro.data.generators import make_dataset
from repro.data.queries import random_queries

from bench_utils import emit
from repro.bench.harness import sweep

ALPHAS = (0.2, 1.0, 20.0)
K = 25
N_QUERIES = 8


@pytest.fixture(scope="module")
def robustness_table():
    dataset = make_dataset("U", E.scale(1500), 3, seed=0)
    per_alpha = {}
    for alpha in ALPHAS:
        queries = random_queries(3, N_QUERIES, alpha=alpha, seed=1)
        reports = compare_algorithms(
            dataset, queries, k=K, theta=E.DEFAULT_THETA
        )
        assert all(r.correct for r in reports), [
            r.name for r in reports if not r.correct
        ]
        per_alpha[alpha] = {r.name: r for r in reports}

    names = sorted(next(iter(per_alpha.values())))
    table = sweep(
        title=f"Workload robustness (U3, n={E.scale(1500)}, k={K}, "
        f"{N_QUERIES} queries/alpha): mean accessed records",
        x_label="alpha",
        xs=list(ALPHAS),
        runners={
            name: (lambda alpha, nm=name: per_alpha[alpha][nm].mean_accessed)
            for name in names
        },
        y_label="mean accessed records per query",
    )
    return emit(table, "workload_robustness")


def test_bench_workload_sweep(benchmark, robustness_table):
    dg = robustness_table.series_by_label("DG")
    ta = robustness_table.series_by_label("TA")
    onion = robustness_table.series_by_label("ONION")
    # DG stays ahead of TA and ONION at every workload shape.
    for i in range(len(robustness_table.x)):
        assert dg.y[i] < ta.y[i], (robustness_table.x[i], dg.y[i], ta.y[i])
        assert dg.y[i] < onion.y[i]
    # DG's own cost varies little across workload shapes (query-agnostic
    # index): max/min mean-accessed within 4x.
    assert max(dg.y) / min(dg.y) < 4.0

    dataset = make_dataset("U", E.scale(1500), 3, seed=0)
    queries = random_queries(3, 4, alpha=1.0, seed=2)

    def run_workload():
        return compare_algorithms(
            dataset, queries, k=K, theta=E.DEFAULT_THETA,
        )

    benchmark.pedantic(run_workload, rounds=1, iterations=1)
