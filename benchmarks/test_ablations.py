"""Ablation benches for the design choices DESIGN.md calls out.

1. Pseudo-record threshold θ (Section IV-A): smaller θ means a deeper
   pseudo hierarchy and fewer accessed records, at higher build cost.
2. Skyline algorithm used for DG layer construction (Section II says
   "any skyline algorithm" works; this quantifies the choice).
3. N-Way partition width (Section IV-C): 1-way degenerates to a single
   (useless in 10-d) DG, while too many ways weaken the per-DG ordering.
"""

import pytest

from repro.bench import experiments as E
from repro.core.builder import build_dominant_graph
from repro.core.layers import compute_layers
from repro.data.generators import make_dataset
from repro.skyline import ALGORITHMS, as_mask_function

from bench_utils import emit


@pytest.fixture(scope="module")
def ablation_tables():
    return {
        "theta": emit(E.ablation_theta(), "ablation_theta"),
        "nway": emit(E.ablation_nway(), "ablation_nway"),
    }


def test_bench_theta_ablation(benchmark, ablation_tables):
    series = ablation_tables["theta"].series_by_label("A-Traveler")
    # Shape: the smallest theta accesses no more than the largest.
    assert series.y[0] <= series.y[-1] * 1.3
    dataset = make_dataset("U", E.scale(2000), 5, seed=0)
    from repro.core.builder import build_extended_graph

    benchmark.pedantic(
        build_extended_graph, args=(dataset,), kwargs={"theta": 8},
        rounds=3, iterations=1,
    )


def test_bench_nway_ablation(benchmark, ablation_tables):
    table = ablation_tables["nway"]
    computed = table.series_by_label("F-computed")
    touched = table.series_by_label("touched")
    # Shape: more ways -> weaker per-stream bounds -> more full-record F
    # evaluations; and the 1-way configuration degenerates structurally
    # (a 10-d DG has almost no dominance), touching nearly every record.
    assert computed.y == sorted(computed.y)
    n = E.scale(800)
    assert touched.y[0] >= 0.8 * n
    dataset = make_dataset("U", E.scale(800), 10, seed=0)
    from repro.core.nway import NWayTraveler

    traveler = NWayTraveler(dataset, NWayTraveler.even_split(10, 5), theta=8)
    benchmark(traveler.top_k, E.canonical_query(10), 50)


SKYLINE_CASES = [name for name in sorted(ALGORITHMS) if name != "nn"]


@pytest.mark.parametrize("name", SKYLINE_CASES)
def test_bench_skyline_layer_construction(benchmark, name):
    dataset = make_dataset("U", E.scale(1000), 3, seed=0)
    mask_fn = as_mask_function(ALGORITHMS[name])
    benchmark.pedantic(
        compute_layers, args=(dataset.values,), kwargs={"skyline": mask_fn},
        rounds=3, iterations=1,
    )


def test_bench_skyline_nn_small(benchmark):
    # NN's region recursion is exponential in dimensionality; bench it on
    # the 2-d case it is designed for.
    dataset = make_dataset("U", E.scale(500), 2, seed=0)
    benchmark.pedantic(
        ALGORITHMS["nn"], args=(dataset.values,), rounds=3, iterations=1
    )


def test_bench_dg_build_for_reference(benchmark):
    dataset = make_dataset("U", E.scale(1000), 3, seed=0)
    benchmark.pedantic(build_dominant_graph, args=(dataset,), rounds=3, iterations=1)


def test_bench_page_layout_ablation(benchmark):
    """Storage ablation: page I/Os per query under different layouts.

    The θ threshold is page-derived; this quantifies the page-level
    payoff of storing DG layers contiguously versus a heap file.
    """
    import numpy as np

    from repro.bench.harness import sweep
    from repro.core.advanced import AdvancedTraveler
    from repro.core.builder import build_extended_graph
    from repro.storage import (
        PagedDataset,
        layer_clustered_layout,
        row_order_layout,
    )
    from bench_utils import emit

    n = E.scale(1000)
    base = make_dataset("U", n, 3, seed=0)
    reference = build_extended_graph(base, theta=E.DEFAULT_THETA)
    per_page = 16
    function = E.canonical_query(3)
    rng = np.random.default_rng(0)
    shuffled = list(range(n))
    rng.shuffle(shuffled)
    layouts = {
        "layer-clustered": layer_clustered_layout(reference, per_page),
        "row-order": row_order_layout(range(n), per_page),
        "random": {rid: i // per_page for i, rid in enumerate(shuffled)},
    }

    travelers = {}
    paged_sets = {}
    for name, layout in layouts.items():
        paged = PagedDataset(base, layout=layout, pool_pages=4)
        travelers[name] = AdvancedTraveler(
            build_extended_graph(paged, theta=E.DEFAULT_THETA)
        )
        paged_sets[name] = paged

    def io_for(name, k):
        paged_sets[name].reset_io()
        travelers[name].top_k(function, k)
        return paged_sets[name].io_stats.io_count

    table = sweep(
        title=f"Ablation: page layout (U3, n={n}, pool=4 pages)",
        x_label="k",
        xs=[10, 50, 100],
        runners={name: (lambda k, nm=name: io_for(nm, k)) for name in layouts},
        y_label="page I/Os per query",
    )
    emit(table, "ablation_page_layout")
    clustered = table.series_by_label("layer-clustered")
    randomized = table.series_by_label("random")
    assert all(c <= r for c, r in zip(clustered.y, randomized.y))

    benchmark(travelers["layer-clustered"].top_k, function, 50)
