"""Fig. 6 — comparison with layer-based indexes (Experiment 2, part 1).

Six panels: construction time on U3 and Server (a, b), accessed records
(c, d) and query response time (e, f) versus k.

Paper shape: DG has the lowest construction time; at query time DG
accesses far fewer records than ONION and AppRI (the paper reports DG's
search space below 1/5 of AppRI's) because both baselines score whole
layers.
"""

import pytest

from repro.baselines.appri import AppRIIndex
from repro.baselines.onion import OnionIndex
from repro.bench import experiments as E
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_extended_graph
from repro.data.generators import make_dataset
from repro.data.server import server_dataset

from bench_utils import emit, geometric_mean_ratio


@pytest.fixture(scope="module")
def fig6_tables():
    tables = {
        "construction_u3": emit(E.fig6_construction(), "fig6a_construction_u3"),
        "construction_server": emit(
            E.fig6_construction(use_server=True), "fig6b_construction_server"
        ),
        "accessed_u3": emit(E.fig6_query(metric="accessed"), "fig6c_accessed_u3"),
        "accessed_server": emit(
            E.fig6_query(metric="accessed", use_server=True), "fig6d_accessed_server"
        ),
        "time_u3": emit(E.fig6_query(metric="time"), "fig6e_time_u3"),
        "time_server": emit(
            E.fig6_query(metric="time", use_server=True), "fig6f_time_server"
        ),
    }
    return tables


@pytest.fixture(scope="module")
def u3_dataset():
    return make_dataset("U", E.scale(2000), 3, seed=0)


def test_bench_dg_construction(benchmark, fig6_tables, u3_dataset):
    # Substrate caveat (documented in EXPERIMENTS.md): the paper measures
    # three same-language C++ builds where DG is cheapest; here ONION
    # rides scipy's C Qhull while DG peels layers in pure Python, so the
    # absolute ordering inverts.  The language-independent shape that
    # remains checkable is growth: DG construction scales sub-quadratically
    # in |D| (near-linear in practice), like the paper's Fig. 6a/b curves.
    for key in ("construction_u3", "construction_server"):
        table = fig6_tables[key]
        dg = table.series_by_label("DG")
        size_ratio = table.x[-1] / table.x[0]
        time_ratio = dg.y[-1] / dg.y[0]
        assert time_ratio <= size_ratio ** 2, (key, time_ratio, size_ratio)
    benchmark.pedantic(
        build_extended_graph, args=(u3_dataset,),
        kwargs={"theta": E.DEFAULT_THETA}, rounds=3, iterations=1,
    )


def test_bench_onion_construction(benchmark, u3_dataset):
    benchmark.pedantic(OnionIndex, args=(u3_dataset,), rounds=3, iterations=1)


def test_bench_appri_construction(benchmark, u3_dataset):
    benchmark.pedantic(AppRIIndex, args=(u3_dataset,), rounds=3, iterations=1)


def test_bench_dg_query_vs_layer_based(benchmark, fig6_tables, u3_dataset):
    # Shape (Fig. 6c/d): DG accesses far fewer records than both layer
    # baselines on the synthetic panel — the paper's 5x headline; we
    # require at least a 2x geometric-mean advantage there.  On the
    # tie-heavy Server stand-in the min-rank layers are tiny and AppRI
    # becomes unrealistically strong (EXPERIMENTS.md); DG must still beat
    # ONION everywhere and stay within noise of AppRI.
    table = fig6_tables["accessed_u3"]
    dg = table.series_by_label("DG")
    for rival in ("ONION", "AppRI"):
        ratio = geometric_mean_ratio(table.series_by_label(rival), dg)
        assert ratio > 2.0, ("accessed_u3", rival, ratio)
    server = fig6_tables["accessed_server"]
    dg_server = server.series_by_label("DG")
    assert geometric_mean_ratio(server.series_by_label("ONION"), dg_server) > 2.0
    assert geometric_mean_ratio(server.series_by_label("AppRI"), dg_server) > 0.5
    traveler = AdvancedTraveler(
        build_extended_graph(u3_dataset, theta=E.DEFAULT_THETA)
    )
    benchmark(traveler.top_k, E.canonical_query(3), 50)


def test_bench_onion_query(benchmark, u3_dataset):
    onion = OnionIndex(u3_dataset)
    benchmark(onion.top_k, E.canonical_query(3), 50)


def test_bench_appri_query(benchmark, fig6_tables, u3_dataset):
    # Shape (Fig. 6e/f): response-time ordering matches the access counts
    # for the layer rivals on at least one panel (timing is noisy at
    # millisecond scale, so require the u3 panel only).
    table = fig6_tables["time_u3"]
    dg = table.series_by_label("DG")
    onion = table.series_by_label("ONION")
    assert geometric_mean_ratio(onion, dg) > 1.0
    appri = AppRIIndex(u3_dataset)
    benchmark(appri.top_k, E.canonical_query(3), 50)
