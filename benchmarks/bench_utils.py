"""Shared helpers for the benchmark suite (imported by every module).

Each module reproduces one figure of the paper: a module-scoped fixture
runs the experiment sweep once (saving the series table under
``benchmarks/results/``), and the ``test_bench_*`` functions both assert
the figure's qualitative *shape* (who wins, roughly by how much) and feed
pytest-benchmark a representative operation for timing.

Scale with ``REPRO_BENCH_SCALE=<factor> pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os

from repro.bench.harness import ExperimentResult
from repro.bench.report import format_table, save_result

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(result: ExperimentResult, name: str) -> ExperimentResult:
    """Print a figure table and persist it under benchmarks/results/."""
    print("\n" + format_table(result))
    save_result(result, RESULTS_DIR, name)
    return result


def geometric_mean_ratio(numerator, denominator) -> float:
    """Geometric mean of pointwise series ratios (shape comparisons)."""
    ratios = [
        n / d for n, d in zip(numerator.y, denominator.y) if d > 0 and n > 0
    ]
    if not ratios:
        return float("nan")
    product = 1.0
    for r in ratios:
        product *= r
    return product ** (1.0 / len(ratios))
