"""Shared helpers for the benchmark suite (imported by every module).

Each module reproduces one figure of the paper: a module-scoped fixture
runs the experiment sweep once (saving the series table under
``benchmarks/results/``), and the ``test_bench_*`` functions both assert
the figure's qualitative *shape* (who wins, roughly by how much) and feed
pytest-benchmark a representative operation for timing.

Scale with ``REPRO_BENCH_SCALE=<factor> pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
import time

from repro.bench.harness import ExperimentResult
from repro.bench.report import format_table, save_result

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def measure(operation, *, repeats: int = 5, warmup: int = 1) -> dict:
    """Median-of-``repeats`` wall clock of one operation, after warmup.

    Timing a single cold call conflates the operation with allocator
    warmup, page faults on freshly built arrays, and CPU frequency
    ramp; taking the *minimum* of several calls instead biases toward
    the luckiest scheduling slice.  The median of a few warmed rounds is
    stable against both, so every timed figure in this suite funnels
    through here.  Uses :func:`time.perf_counter` (monotonic, highest
    available resolution).
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    for _ in range(warmup):
        operation()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        operation()
        samples.append(time.perf_counter() - start)
    samples.sort()
    mid = len(samples) // 2
    if len(samples) % 2:
        median = samples[mid]
    else:
        median = 0.5 * (samples[mid - 1] + samples[mid])
    return {
        "median_seconds": median,
        "min_seconds": samples[0],
        "max_seconds": samples[-1],
        "repeats": repeats,
        "warmup": warmup,
    }


def emit(result: ExperimentResult, name: str) -> ExperimentResult:
    """Print a figure table and persist it under benchmarks/results/."""
    print("\n" + format_table(result))
    save_result(result, RESULTS_DIR, name)
    return result


def geometric_mean_ratio(numerator, denominator) -> float:
    """Geometric mean of pointwise series ratios (shape comparisons)."""
    ratios = [
        n / d for n, d in zip(numerator.y, denominator.y) if d > 0 and n > 0
    ]
    if not ratios:
        return float("nan")
    product = 1.0
    for r in ratios:
        product *= r
    return product ** (1.0 / len(ratios))
