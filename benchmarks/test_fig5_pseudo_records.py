"""Fig. 5 — Basic vs Advanced Traveler on U5 / G5 / R5 (Experiment 1).

Paper shape: on 5-dimensional data the pseudo-record technique reduces the
number of accessed records, with the largest savings at small k.
"""

import pytest

from repro.bench import experiments as E
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.traveler import BasicTraveler
from repro.data.generators import make_dataset

from bench_utils import emit, geometric_mean_ratio

KINDS = ("U", "G", "R")


@pytest.fixture(scope="module")
def fig5_results():
    return {
        kind: emit(E.fig5_pseudo_records(kind), f"fig5_{kind.lower()}5")
        for kind in KINDS
    }


@pytest.mark.parametrize("kind", KINDS)
def test_bench_advanced_traveler_query(benchmark, fig5_results, kind):
    result = fig5_results[kind]
    basic = result.series_by_label("B-Traveler")
    advanced = result.series_by_label("A-Traveler")
    # Shape: at the smallest k the Advanced Traveler accesses no more
    # records than Basic (the pseudo hierarchy prunes the first layer).
    # On correlated data the first layer is already tiny and the pseudo
    # level only adds its own handful of accesses — allow that overhead.
    assert advanced.y[0] <= basic.y[0] + max(5.0, 0.05 * basic.y[0]), (
        advanced.y, basic.y,
    )

    dataset = make_dataset(kind, E.scale(2000), 5, seed=0)
    traveler = AdvancedTraveler(
        build_extended_graph(dataset, theta=E.DEFAULT_THETA)
    )
    function = E.canonical_query(5)
    benchmark(traveler.top_k, function, 50)


@pytest.mark.parametrize("kind", KINDS)
def test_bench_basic_traveler_query(benchmark, fig5_results, kind):
    dataset = make_dataset(kind, E.scale(2000), 5, seed=0)
    traveler = BasicTraveler(build_dominant_graph(dataset))
    function = E.canonical_query(5)
    benchmark(traveler.top_k, function, 50)
