"""Fig. 7 — comparison with non-layer top-k algorithms (Experiment 2, part 2).

Four panels: accessed records and response time vs k, on U3 and Server,
against TA, CA, RankCube and PREFER.  Per the paper, CA's access metric
counts only random accesses.

Paper shape: the Traveler accesses far fewer records than TA (the widest
gap in the figure) and its response time is the lowest overall.
"""

import pytest

from repro.baselines.ca import CombinedAlgorithm
from repro.baselines.prefer import PreferIndex
from repro.baselines.rankcube import RankCubeIndex
from repro.baselines.ta import ThresholdAlgorithm
from repro.bench import experiments as E
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_extended_graph
from repro.data.generators import make_dataset

from bench_utils import emit, geometric_mean_ratio


@pytest.fixture(scope="module")
def fig7_tables():
    return {
        "accessed_u3": emit(E.fig7_nonlayer(metric="accessed"), "fig7a_accessed_u3"),
        "accessed_server": emit(
            E.fig7_nonlayer(metric="accessed", use_server=True),
            "fig7b_accessed_server",
        ),
        "time_u3": emit(E.fig7_nonlayer(metric="time"), "fig7c_time_u3"),
        "time_server": emit(
            E.fig7_nonlayer(metric="time", use_server=True), "fig7d_time_server"
        ),
    }


@pytest.fixture(scope="module")
def u3_dataset():
    return make_dataset("U", E.scale(2000), 3, seed=0)


def test_bench_dg_query(benchmark, fig7_tables, u3_dataset):
    # Shape (Fig. 7a/b): DG accesses far fewer records than TA on the
    # synthetic panel; on the tie-heavy Server stand-in TA terminates
    # almost immediately (top records top every list), so there we only
    # require DG to stay at least comparable (EXPERIMENTS.md).
    table = fig7_tables["accessed_u3"]
    assert geometric_mean_ratio(
        table.series_by_label("TA"), table.series_by_label("DG")
    ) > 2.0
    server = fig7_tables["accessed_server"]
    assert geometric_mean_ratio(
        server.series_by_label("TA"), server.series_by_label("DG")
    ) > 0.8
    traveler = AdvancedTraveler(
        build_extended_graph(u3_dataset, theta=E.DEFAULT_THETA)
    )
    benchmark(traveler.top_k, E.canonical_query(3), 50)


def test_bench_ta_query(benchmark, u3_dataset):
    ta = ThresholdAlgorithm(u3_dataset)
    benchmark(ta.top_k, E.canonical_query(3), 50)


def test_bench_ca_query(benchmark, u3_dataset):
    ca = CombinedAlgorithm(u3_dataset)
    benchmark(ca.top_k, E.canonical_query(3), 50)


def test_bench_rankcube_query(benchmark, u3_dataset):
    cube = RankCubeIndex(u3_dataset)
    benchmark(cube.top_k, E.canonical_query(3), 50)


def test_bench_prefer_query(benchmark, fig7_tables, u3_dataset):
    # Shape (Fig. 7c/d): DG response time beats TA's on both panels.
    for key in ("time_u3", "time_server"):
        table = fig7_tables[key]
        dg = table.series_by_label("DG")
        ta = table.series_by_label("TA")
        assert geometric_mean_ratio(ta, dg) > 1.0, key
    prefer = PreferIndex(u3_dataset)
    benchmark(prefer.top_k, E.canonical_query(3), 50)
