"""Fig. 9 — high dimensionality and the worst case (Experiment 4).

Panels (a, b): the N-Way Traveler (two DGs over 5 dimensions each) versus
TA and CA on 10-dimensional uniform data; the paper reports an
orders-of-magnitude advantage in accessed records over TA.

Panels (c, d): the Advanced Traveler on a 5-dimensional dataset where
*every* record is a skyline point — DG's worst case — versus TA and CA;
the paper's point is that the pseudo-record technique keeps the Traveler
competitive even there.
"""

import pytest

from repro.baselines.ta import ThresholdAlgorithm
from repro.bench import experiments as E
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_extended_graph
from repro.core.nway import NWayTraveler
from repro.data.generators import all_skyline, make_dataset

from bench_utils import emit, geometric_mean_ratio


@pytest.fixture(scope="module")
def fig9_tables():
    return {
        "highdim_accessed": emit(E.fig9_highdim(), "fig9a_highdim_accessed"),
        "highdim_time": emit(E.fig9_highdim(metric="time"), "fig9b_highdim_time"),
        "worst_accessed": emit(E.fig9_worstcase(), "fig9c_worst_accessed"),
        "worst_time": emit(E.fig9_worstcase(metric="time"), "fig9d_worst_time"),
    }


def test_bench_nway_query_10d(benchmark, fig9_tables):
    # Shape (Fig. 9a): N-Way accesses at least 3x fewer records than TA
    # on 10-dimensional data (paper: orders of magnitude).
    table = fig9_tables["highdim_accessed"]
    nway = table.series_by_label("N-Way")
    ta = table.series_by_label("TA")
    assert geometric_mean_ratio(ta, nway) > 3.0

    dataset = make_dataset("U", E.scale(1000), 10, seed=0)
    traveler = NWayTraveler(
        dataset, NWayTraveler.even_split(10, 2), theta=E.DEFAULT_THETA
    )
    benchmark(traveler.top_k, E.canonical_query(10), 50)


def test_bench_ta_query_10d(benchmark):
    dataset = make_dataset("U", E.scale(1000), 10, seed=0)
    ta = ThresholdAlgorithm(dataset)
    benchmark(ta.top_k, E.canonical_query(10), 50)


def test_bench_advanced_traveler_worstcase(benchmark, fig9_tables):
    # Shape (Fig. 9c): in the all-skyline worst case, the Advanced
    # Traveler still does not access more records than TA.
    table = fig9_tables["worst_accessed"]
    advanced = table.series_by_label("A-Traveler")
    ta = table.series_by_label("TA")
    assert geometric_mean_ratio(advanced, ta) < 1.25

    dataset = all_skyline(E.scale(1000), 5, seed=0)
    traveler = AdvancedTraveler(
        build_extended_graph(dataset, theta=E.DEFAULT_THETA)
    )
    benchmark(traveler.top_k, E.canonical_query(5), 50)


def test_bench_ta_query_worstcase(benchmark):
    dataset = all_skyline(E.scale(1000), 5, seed=0)
    ta = ThresholdAlgorithm(dataset)
    benchmark(ta.top_k, E.canonical_query(5), 50)
