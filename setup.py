"""Setuptools entry point.

Kept alongside pyproject.toml so `pip install -e .` works in offline
environments whose setuptools lacks the `wheel` package (legacy editable
installs go through `setup.py develop`, which needs no wheel build).
"""

from setuptools import setup

setup()
