"""Zero-copy export of :class:`CompiledDG` snapshots over shared memory.

The compiled engine (:mod:`repro.core.compiled`) already stores the whole
index as a handful of contiguous numpy arrays.  That makes cross-process
serving almost free: pack every array into one
:mod:`multiprocessing.shared_memory` segment, describe the layout with a
small picklable :class:`SnapshotHandle`, and let worker processes rebuild
the *same* ``CompiledDG`` — same bytes, zero copies — by mapping the
segment and viewing slices of it.

Lifecycle
---------
Exactly one process — the creator — owns a segment:

- :func:`export_snapshot` creates the segment, copies the arrays in once,
  and returns a :class:`SharedSnapshot` whose :meth:`SharedSnapshot.destroy`
  closes **and unlinks** it.  A ``weakref.finalize`` backstop destroys the
  segment even if the owner forgets, so dropping the last reference can
  never leak ``/dev/shm`` entries.
- :func:`attach_snapshot` (called in workers) maps an existing segment
  read-only and returns an :class:`AttachedSnapshot`; its ``close``
  drops the mapping but never unlinks.  Attachments bypass CPython's
  register-on-attach (bpo-39959) entirely — only the owner's
  create-time registration and unlink-time unregistration ever reach
  the resource tracker, so its ledger stays race-free.

POSIX keeps an unlinked segment alive until the last mapping closes, so
the owner may unlink immediately after publishing a replacement; workers
finish in-flight queries on the old mapping and drop it at their own pace.

Segment names carry the :data:`SEGMENT_PREFIX` prefix so tests (and
operators) can audit ``/dev/shm`` for leaks with a single glob.
"""

from __future__ import annotations

import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.core.compiled import CompiledDG

#: Every segment this module creates is named ``repro-dg-<pid>-<nonce>``.
SEGMENT_PREFIX = "repro-dg-"

#: Array starts are rounded up to this many bytes inside the segment.
ALIGNMENT = 64

#: CompiledDG array attributes serialized into the segment, in layout order.
ARRAY_FIELDS = (
    "values",
    "record_ids",
    "layer_index",
    "pseudo_mask",
    "children_indptr",
    "children_indices",
    "parents_indptr",
    "parents_indices",
    "indegree",
)


@dataclass(frozen=True)
class ArraySpec:
    """Location and type of one flat array inside a shared segment."""

    field: str
    dtype: str
    shape: tuple
    offset: int


@dataclass(frozen=True)
class SnapshotHandle:
    """Picklable description of a shared snapshot.

    Ship this to worker processes; :func:`attach_snapshot` turns it back
    into a read-only :class:`CompiledDG` without copying any array data.
    """

    segment: str
    arrays: tuple
    first_layer_size: int
    epoch: int
    total_bytes: int


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _plan_layout(compiled: CompiledDG) -> "tuple[tuple[ArraySpec, ...], int]":
    """Compute per-array offsets and the total segment size."""
    specs = []
    cursor = 0
    for name in ARRAY_FIELDS:
        array = getattr(compiled, name)
        cursor = _aligned(cursor)
        specs.append(
            ArraySpec(
                field=name,
                dtype=array.dtype.str,
                shape=tuple(int(s) for s in array.shape),
                offset=cursor,
            )
        )
        cursor += int(array.nbytes)
    return tuple(specs), max(cursor, 1)


def _view(buffer: memoryview, spec: ArraySpec) -> np.ndarray:
    """A numpy view of one array inside a mapped segment (no copy)."""
    dtype = np.dtype(spec.dtype)
    count = 1
    for dim in spec.shape:
        count *= dim
    flat = np.frombuffer(buffer, dtype=dtype, count=count, offset=spec.offset)
    return flat.reshape(spec.shape)


def _destroy_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink a segment; tolerates both already being done."""
    try:
        shm.close()
    except BufferError:
        # A live numpy view still points into the mapping; leave it
        # mapped (the unlink below still removes the name) rather than
        # crash the owner.
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class SharedSnapshot:
    """Owner-side handle for a snapshot exported to shared memory.

    Create via :func:`export_snapshot`.  The owner must eventually call
    :meth:`destroy` (or let garbage collection trigger the finalizer
    backstop) to unlink the segment; worker attachments never unlink.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, handle: SnapshotHandle
    ) -> None:
        self._shm = shm
        self.handle = handle
        self._finalizer = weakref.finalize(self, _destroy_segment, shm)

    @property
    def segment(self) -> str:
        """The ``/dev/shm`` segment name."""
        return self.handle.segment

    @property
    def destroyed(self) -> bool:
        """True once the segment has been closed and unlinked."""
        return not self._finalizer.alive

    def destroy(self) -> None:
        """Close and unlink the segment.  Idempotent.

        Attached workers keep their mappings until they close them; the
        name disappears from ``/dev/shm`` immediately.
        """
        # finalize() runs the callback at most once, making repeated
        # destroy() calls and the GC backstop mutually safe.
        self._finalizer()

    def __enter__(self) -> "SharedSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.destroy()

    def __repr__(self) -> str:
        return (
            f"SharedSnapshot(segment={self.segment!r}, "
            f"epoch={self.handle.epoch}, "
            f"bytes={self.handle.total_bytes}, destroyed={self.destroyed})"
        )


def export_snapshot(
    compiled: CompiledDG, *, epoch: int = 0
) -> SharedSnapshot:
    """Copy a compiled snapshot into a fresh shared-memory segment.

    The one copy happens here, in the owner; every worker that attaches
    afterwards reads the same physical pages.  ``epoch`` is stamped into
    the handle so workers can tag results with the snapshot generation
    they answered from.
    """
    specs, total = _plan_layout(compiled)
    while True:
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=total
            )
            break
        except FileExistsError:
            continue
    for spec in specs:
        source = getattr(compiled, spec.field)
        if source.size:
            _view(shm.buf, spec)[...] = source
    handle = SnapshotHandle(
        segment=name,
        arrays=specs,
        first_layer_size=compiled.first_layer_size,
        epoch=epoch,
        total_bytes=total,
    )
    return SharedSnapshot(shm, handle)


def _release_mapping(shm: shared_memory.SharedMemory) -> None:
    """Drop a worker's mapping without unlinking the segment name."""
    try:
        shm.close()
    except BufferError:
        # A view outlived the attachment; keep the mapping rather than
        # crash — the segment is reclaimed when the process exits.
        pass


class AttachedSnapshot:
    """Worker-side view of a shared snapshot.

    ``compiled`` is a fully functional read-only :class:`CompiledDG`
    whose arrays are views straight into the shared segment — queries on
    it never copy the index.  Close when switching to a newer epoch; the
    segment itself belongs to the exporting process.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        compiled: CompiledDG,
        epoch: int,
    ) -> None:
        self._shm = shm
        self._compiled: Optional[CompiledDG] = compiled
        self.epoch = epoch
        self._finalizer = weakref.finalize(self, _release_mapping, shm)

    @property
    def compiled(self) -> CompiledDG:
        """The mapped snapshot; raises after :meth:`close`."""
        if self._compiled is None:
            raise ValueError("snapshot attachment is closed")
        return self._compiled

    @property
    def closed(self) -> bool:
        """True once the mapping has been released."""
        return self._compiled is None

    def close(self) -> None:
        """Release the mapping (drops the array views first).  Idempotent."""
        self._compiled = None
        self._finalizer()

    def __enter__(self) -> "AttachedSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"AttachedSnapshot(segment={self._shm.name!r}, "
            f"epoch={self.epoch}, closed={self.closed})"
        )


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without resource-tracker registration.

    CPython's register-on-attach (bpo-39959) is wrong for the fabric in
    both fork topologies it can create: forked workers share the owner's
    tracker process, so a slow worker's register message can arrive
    *after* the owner's unlink-time unregister and strand a phantom
    entry (exit-time "leaked shared_memory" warnings); a spawn attacher
    would get its own tracker and unlink the owner's live segment on
    exit.  The owner's create-time registration already guarantees
    crash cleanup, so attachments simply opt out — the patch only
    affects this thread for the duration of the constructor call.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip(name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = _skip
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach_snapshot(handle: SnapshotHandle) -> AttachedSnapshot:
    """Map an exported snapshot in the current process, read-only.

    The mapping is deliberately invisible to the resource tracker (see
    :func:`_attach_untracked`): the exporting process both registers the
    segment at create time and unregisters it at unlink time, so the
    tracker sees one balanced pair from a single writer and attachments
    can never race it into phantom-leak warnings or premature unlinks.
    """
    shm = _attach_untracked(handle.segment)
    arrays = {spec.field: _view(shm.buf, spec) for spec in handle.arrays}
    compiled = CompiledDG(
        values=arrays["values"],
        record_ids=arrays["record_ids"],
        layer_index=arrays["layer_index"],
        pseudo_mask=arrays["pseudo_mask"],
        children_indptr=arrays["children_indptr"],
        children_indices=arrays["children_indices"],
        parents_indptr=arrays["parents_indptr"],
        parents_indices=arrays["parents_indices"],
        indegree=arrays["indegree"],
        first_layer_size=handle.first_layer_size,
    )
    return AttachedSnapshot(shm, compiled, handle.epoch)


def leaked_segments() -> "list[str]":
    """Names of ``repro-dg-*`` segments currently present in ``/dev/shm``.

    Test/diagnostic helper: after an executor shuts down this must be
    empty (modulo segments owned by *other* live executors).
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return sorted(
        entry
        for entry in os.listdir(shm_dir)
        if entry.startswith(SEGMENT_PREFIX)
    )
