"""Multi-core query fabric: shared-memory snapshots and worker pools.

The single-process compiled engine (:mod:`repro.core.compiled`) answers
one query at a time on one core.  This package scales it out without
giving up the bit-identical-results contract:

- :mod:`repro.parallel.shm` — export a :class:`~repro.core.compiled.CompiledDG`
  into one ``multiprocessing.shared_memory`` segment; workers re-view
  the same pages zero-copy via a picklable :class:`SnapshotHandle`.
- :mod:`repro.parallel.worker` — persistent worker processes answering
  full-traversal, batched (:func:`~repro.core.compiled.batch_top_k`),
  or hash-shard tasks against their attached snapshot.
- :mod:`repro.parallel.executor` — the owner-side pool: round-robin
  dispatch, snapshot republish on writer commits, crash healing, and
  exact k-way shard merges.

See ``docs/parallel.md`` for the architecture and the shard/merge
exactness argument.
"""

from __future__ import annotations

from repro.parallel.executor import ParallelQueryExecutor, merge_shard_results
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    AttachedSnapshot,
    SharedSnapshot,
    SnapshotHandle,
    attach_snapshot,
    export_snapshot,
    leaked_segments,
)
from repro.parallel.worker import (
    PublishMessage,
    QueryTask,
    TaskResult,
    shard_scan,
    worker_main,
)

__all__ = [
    "SEGMENT_PREFIX",
    "AttachedSnapshot",
    "ParallelQueryExecutor",
    "PublishMessage",
    "QueryTask",
    "SharedSnapshot",
    "SnapshotHandle",
    "TaskResult",
    "attach_snapshot",
    "export_snapshot",
    "leaked_segments",
    "merge_shard_results",
    "shard_scan",
    "worker_main",
]
