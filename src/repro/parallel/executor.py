"""Owner-side worker pool of the parallel query fabric.

:class:`ParallelQueryExecutor` exports a :class:`CompiledDG` to shared
memory once, forks N persistent workers that each attach it once, and
then streams query tasks to them over per-worker request queues.  Design
points:

- **Per-worker request queues, one shared result queue.**  Requests are
  routed round-robin; replies carry the task id, so the collector can
  match them regardless of completion order.  Per-worker queues make a
  snapshot publish a simple FIFO barrier: every task enqueued after the
  :class:`~repro.parallel.worker.PublishMessage` runs on the new epoch.
- **Self-healing, including hung workers.**  The collector polls worker
  liveness whenever the result queue goes quiet; a dead worker is
  replaced by a fresh process on a *fresh* queue (the old queue's
  internal lock may have died with the worker) and that worker's
  outstanding tasks are re-dispatched.  With a ``reply_timeout``, an
  *alive-but-silent* worker — stopped by a signal, wedged in a syscall,
  spinning in a poisoned allocator — is SIGKILLed and healed the same
  way; liveness alone cannot catch it (a ``SIGSTOP``ped process reports
  ``is_alive()``), only the missing reply can.  Before the kill
  threshold, a pending task is *hedged*: a duplicate is dispatched to
  another healthy worker, so one slow slot costs a duplicate execution
  instead of the whole request.  Duplicate replies — from hedges, or
  from a re-dispatched task racing its dying first run — are dropped by
  task id.  A worker that dies mid-reply can poison the shared reply
  queue itself (its cross-process write lock dies held), so post-crash
  reply silence triggers a full pool rebuild onto a fresh queue.  A
  respawn budget turns systemic crash loops into
  :class:`~repro.errors.ParallelExecutionError` instead of a hang.
- **Per-worker circuit breakers.**  Each slot's outcomes feed a
  :class:`~repro.resilience.breaker.CircuitBreaker`; dispatch prefers
  slots whose breaker admits traffic, and a respawned slot starts with
  a fresh breaker.  Breaker state is exported through :meth:`stats`
  into the serving health probe.
- **Deadline propagation.**  ``map_queries(..., deadline=...)`` bounds
  the whole fan-out: collection waits are clamped to the deadline, the
  deadline rides each :class:`~repro.parallel.worker.QueryTask` into
  the workers' kernel chunk loops (``CLOCK_MONOTONIC`` is system-wide,
  so the instant survives the fork), and expiry raises a typed
  :class:`~repro.errors.DeadlineExceeded` — never a silent stall.
- **Leak-proof segments.**  The executor owns every segment it exports;
  ``shutdown`` (also a ``weakref.finalize`` backstop, also ``with``)
  destroys the current segment, and ``publish`` destroys the previous
  one immediately — POSIX keeps it alive for workers still mapping it.

Execution modes mirror :mod:`repro.parallel.worker`: ``batch`` (default,
fastest — amortizes per-query dispatch inside each worker), ``full``
(one traversal per query, parallel across workers), ``shard`` (each
query split across all workers, answers k-way merged).  All three return
results bit-identical to the single-process engine.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import os
import queue
import threading
import time
import weakref
from typing import Optional, Sequence

from repro.core.compiled import CompiledDG
from repro.core.functions import ScoringFunction, WherePredicate
from repro.core.result import TopKResult
from repro.errors import DeadlineExceeded, ParallelExecutionError
from repro.metrics.counters import AccessCounter
from repro.parallel.shm import SharedSnapshot, export_snapshot
from repro.parallel.worker import (
    SHARD_ALGORITHM,
    PublishMessage,
    QueryTask,
    TaskResult,
    tag_epoch,
    worker_main,
)
from repro.resilience.breaker import BreakerBoard
from repro.resilience.deadline import Deadline
from repro.store.directory import StoreDirectory
from repro.store.mapped import StoreSnapshotHandle


#: Set ``REPRO_FABRIC_TRACE`` to a file path to append a timestamped
#: line per pool lifecycle event (spawn, dispatch, heal, reap, reply).
#: Post-mortem fuel for exactly the class of bug that only shows up as
#: "the suite hung once on Tuesday"; off (and free) by default.
_TRACE_PATH = os.environ.get("REPRO_FABRIC_TRACE")


def _trace(event: str) -> None:
    if _TRACE_PATH is None:
        return
    try:
        with open(_TRACE_PATH, "a") as sink:
            sink.write(
                f"{time.monotonic():.4f} pid={os.getpid()} {event}\n"
            )
    except OSError:  # tracing must never take the fabric down
        pass


class _FileSnapshot:
    """Owner-side handle for a snapshot published as a mapped store file.

    The file-backed twin of :class:`~repro.parallel.shm.SharedSnapshot`
    (``handle`` / ``destroy`` / ``destroyed``), so the executor's
    publish-rotate-destroy lifecycle runs unchanged over either
    transport.  ``destroy`` unlinks the generation file; POSIX keeps it
    readable for workers still mapping it, exactly like an unlinked
    ``/dev/shm`` segment.
    """

    def __init__(self, handle: StoreSnapshotHandle) -> None:
        self.handle = handle
        self._destroyed = False

    @property
    def destroyed(self) -> bool:
        return self._destroyed

    def destroy(self) -> None:
        """Unlink the generation file.  Idempotent.

        Tolerates the file already being gone — the spool directory's
        own orphan collection may have removed it at the next publish.
        """
        self._destroyed = True
        try:
            os.unlink(self.handle.path)
        except FileNotFoundError:
            pass


class _WorkerSlot:
    """One pool slot: the live process plus its private request queue."""

    def __init__(self, worker_id: int, process, requests) -> None:
        self.worker_id = worker_id
        self.process = process
        self.requests = requests
        self.generation = 0

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


def merge_shard_results(
    shard_payloads: "Sequence[tuple]", k: int
) -> TopKResult:
    """K-way merge per-shard candidate pairs into one exact top-k.

    Each payload is ``(pairs, stats)`` from
    :func:`repro.parallel.worker.shard_scan`; pairs arrive sorted by the
    engine's ``(-score, id)`` rule, so a heap merge of the shard streams
    yields the globally best ``k`` pairs in the same order the
    single-process traversal reports them.
    """
    stats = AccessCounter()
    for _, shard_stats in shard_payloads:
        stats.merge(shard_stats)
    streams = [list(pairs) for pairs, _ in shard_payloads]
    merged = heapq.merge(
        *streams, key=lambda pair: (-pair[0], pair[1])
    )
    best = list(itertools.islice(merged, k))
    return TopKResult.from_pairs(best, stats, algorithm=SHARD_ALGORITHM)


class ParallelQueryExecutor:
    """Persistent multi-process query pool over a shared snapshot.

    Parameters
    ----------
    compiled:
        Snapshot to export and serve.
    workers:
        Pool size (positive).
    batch_size:
        Queries per ``batch``-mode task.
    epoch:
        Epoch stamp of the initial snapshot.
    poll_interval:
        Seconds between liveness checks while the reply queue is quiet.
    reply_timeout:
        Seconds a dispatched task may go unanswered before its worker is
        presumed hung, SIGKILLed, and replaced (``None`` — the default —
        waits forever, the pre-resilience behaviour).
    hedge_fraction:
        Fraction of ``reply_timeout`` after which a still-pending task
        is duplicated onto another healthy worker.  Ignored when
        ``reply_timeout`` is ``None``.
    snapshot_dir:
        When set, snapshots are published as generation-numbered store
        files (:mod:`repro.store`) in this directory instead of
        ``/dev/shm`` segments: every worker maps the same physical file
        (one copy for N processes, same as shm) and each attach runs
        store fast-verification, so a tampered or torn publication can
        never be served.  The spool is written ``durable=False`` — its
        contents are derived data a restart regenerates — while the
        generation/``CURRENT`` rotation still guarantees atomicity.

    Examples
    --------
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.builder import build_dominant_graph
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5]])
    >>> compiled = build_dominant_graph(ds).compile()
    >>> with ParallelQueryExecutor(compiled, workers=2) as pool:
    ...     result = pool.query(LinearFunction([0.5, 0.5]), k=2)
    >>> sorted(result.ids)
    [0, 1]
    """

    #: Seconds of post-crash reply silence before the reply queue is
    #: presumed poisoned and the pool is rebuilt (see _check_wedged).
    #: Far above a healthy respawn-and-answer round trip (~10 ms), far
    #: below any caller-visible timeout.
    _WEDGE_GRACE = 1.0

    def __init__(
        self,
        compiled: CompiledDG,
        *,
        workers: int = 2,
        batch_size: int = 64,
        epoch: int = 0,
        poll_interval: float = 0.05,
        reply_timeout: float | None = None,
        hedge_fraction: float = 0.5,
        snapshot_dir: "str | None" = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if reply_timeout is not None and reply_timeout <= 0:
            raise ValueError("reply_timeout must be positive or None")
        if not 0.0 < hedge_fraction <= 1.0:
            raise ValueError("hedge_fraction must be in (0, 1]")
        self.num_workers = int(workers)
        self.batch_size = int(batch_size)
        self._poll_interval = float(poll_interval)
        self.reply_timeout = reply_timeout
        self.hedge_delay = (
            None if reply_timeout is None else reply_timeout * hedge_fraction
        )
        self._context = multiprocessing.get_context("fork")
        self._spool = (
            None
            if snapshot_dir is None
            else StoreDirectory(snapshot_dir, keep=0)
        )
        self._shared = self._export(compiled, epoch)
        self._results = self._context.Queue()
        # Monotonic instant of the most recent unexpected worker death
        # with no reply received since; None while the reply queue is
        # above suspicion.  See _check_wedged for why a corpse makes
        # the queue itself a suspect.
        self._suspect_since: "float | None" = None
        self._task_ids = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        self._breakers = BreakerBoard(window=8, min_calls=2, cooldown=0.5)
        self._counters = {
            "tasks_dispatched": 0,
            "tasks_completed": 0,
            "tasks_redispatched": 0,
            "tasks_hedged": 0,
            "workers_respawned": 0,
            "workers_killed_hung": 0,
            "publishes": 0,
        }
        self._slots = [self._spawn(i) for i in range(self.num_workers)]
        # The backstop holds the slots list and a one-element holder for
        # the current segment — both mutated in place — so it always
        # tears down the *latest* pool state, not the initial one.
        self._shared_ref = [self._shared]
        self._finalizer = weakref.finalize(
            self, _emergency_shutdown, self._slots, self._shared_ref
        )

    # -- lifecycle ----------------------------------------------------

    def _export(
        self, compiled: CompiledDG, epoch: int
    ) -> "SharedSnapshot | _FileSnapshot":
        """Publish a snapshot over the configured transport.

        Shared memory by default; a generation-numbered store file when
        ``snapshot_dir`` was given.  Both return an owner object with
        the same ``handle``/``destroy`` lifecycle.
        """
        if self._spool is None:
            return export_snapshot(compiled, epoch=epoch)
        handle = self._spool.publish_compiled(
            compiled, epoch=epoch, durable=False
        )
        return _FileSnapshot(handle)

    def _spawn(self, worker_id: int) -> _WorkerSlot:
        requests = self._context.Queue()
        process = self._context.Process(
            target=worker_main,
            args=(worker_id, self._shared.handle, requests, self._results),
            daemon=True,
            name=f"repro-dg-worker-{worker_id}",
        )
        process.start()
        _trace(f"spawn worker={worker_id} child={process.pid}")
        return _WorkerSlot(worker_id, process, requests)

    def publish(self, compiled: CompiledDG, *, epoch: int) -> None:
        """Swap every worker onto a freshly exported snapshot.

        Per-worker FIFO ordering makes this a barrier: tasks dispatched
        after ``publish`` returns are answered from the new epoch.  The
        previous segment is unlinked immediately — workers still mapping
        it finish in-flight tasks on it and release it when they process
        the publish message.
        """
        with self._lock:
            self._ensure_open()
            fresh = self._export(compiled, epoch)
            previous = self._shared
            self._shared = fresh
            self._shared_ref[0] = fresh
            for slot in self._slots:
                if slot.alive:
                    slot.requests.put(PublishMessage(fresh.handle))
            previous.destroy()
            self._counters["publishes"] += 1

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop workers, drain queues, and unlink the segment.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            _trace(
                "shutdown children="
                f"{[slot.process.pid for slot in self._slots]}"
            )
            for slot in self._slots:
                if slot.alive:
                    slot.requests.put(None)
            for slot in self._slots:
                slot.process.join(timeout=timeout)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(timeout=timeout)
                if slot.process.is_alive():
                    # A SIGSTOPped worker leaves SIGTERM pending forever;
                    # only SIGKILL reaches a stopped process.
                    slot.process.kill()
                    slot.process.join(timeout=timeout)
                slot.process.close()
                slot.requests.close()
            self._results.close()
            self._shared.destroy()
            if self._spool is not None:
                # The spool holds only derived data; leave the directory
                # empty rather than with a dangling CURRENT pointer.
                self._spool.clear()
            self._finalizer.detach()

    def __enter__(self) -> "ParallelQueryExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    @property
    def epoch(self) -> int:
        """Epoch of the snapshot new tasks are answered from."""
        return self._shared.handle.epoch

    def stats(self) -> dict:
        """Counters for dispatch, healing, hedging, and breaker state."""
        with self._lock:
            snapshot = dict(self._counters)
        snapshot["workers"] = self.num_workers
        snapshot["batch_size"] = self.batch_size
        snapshot["reply_timeout"] = self.reply_timeout
        snapshot["transport"] = "file" if self._spool is not None else "shm"
        snapshot["breakers"] = self._breakers.snapshot()
        return snapshot

    # -- queries ------------------------------------------------------

    def query(
        self,
        function: ScoringFunction,
        k: int,
        *,
        where: "WherePredicate | None" = None,
        deadline: "Deadline | None" = None,
    ) -> TopKResult:
        """Answer one top-k query on a single worker (full traversal)."""
        (result,) = self.map_queries(
            [function], k, where=where, mode="full", deadline=deadline
        )
        return result

    def query_sharded(
        self,
        function: ScoringFunction,
        k: int,
        *,
        where: "WherePredicate | None" = None,
        deadline: "Deadline | None" = None,
    ) -> TopKResult:
        """Answer one query split across every worker, k-way merged."""
        (result,) = self.map_queries(
            [function], k, where=where, mode="shard", deadline=deadline
        )
        return result

    def map_queries(
        self,
        functions: "Sequence[ScoringFunction]",
        k: int,
        *,
        where: "WherePredicate | None" = None,
        mode: str = "auto",
        deadline: "Deadline | None" = None,
    ) -> "list[TopKResult]":
        """Answer many queries across the pool; results keep input order.

        ``mode``: ``"batch"`` groups queries into ``batch_size`` chunks
        answered by :func:`~repro.core.compiled.batch_top_k` inside each
        worker (default via ``"auto"``); ``"full"`` runs one traversal
        per query, spread round-robin; ``"shard"`` splits every query
        across all workers and k-way merges.  All modes are bit-identical
        to the single-process engine per query.

        ``deadline`` bounds the whole call: it rides each task into the
        workers (kernel chunk checkpoints), clamps every collection
        wait, and raises :class:`~repro.errors.DeadlineExceeded` when it
        expires with tasks still pending — abandoned replies are
        dropped by task-id dedup when they eventually arrive.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if mode == "auto":
            mode = "batch"
        if mode not in ("batch", "full", "shard"):
            raise ValueError(f"unknown mode: {mode!r}")
        functions = list(functions)
        if not functions:
            return []
        with self._lock:
            self._ensure_open()
            if mode == "shard":
                return self._run_sharded(functions, k, where, deadline)
            return self._run_chunked(functions, k, where, mode, deadline)

    # -- internals (callers hold self._lock) --------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ParallelExecutionError("executor is shut down")

    def _next_task(
        self,
        mode: str,
        functions: "Sequence[ScoringFunction]",
        k: int,
        where: "WherePredicate | None",
        deadline: "Deadline | None" = None,
        shard_index: int = 0,
        shard_count: int = 1,
    ) -> QueryTask:
        return QueryTask(
            task_id=next(self._task_ids),
            mode=mode,
            functions=tuple(functions),
            k=k,
            where=where,
            shard_index=shard_index,
            shard_count=shard_count,
            deadline=deadline,
        )

    def _run_chunked(
        self,
        functions: "Sequence[ScoringFunction]",
        k: int,
        where: "WherePredicate | None",
        mode: str,
        deadline: "Deadline | None",
    ) -> "list[TopKResult]":
        chunk = self.batch_size if mode == "batch" else 1
        tasks = {}
        spans = {}
        for start in range(0, len(functions), chunk):
            task = self._next_task(
                mode, functions[start : start + chunk], k, where, deadline
            )
            tasks[task.task_id] = task
            spans[task.task_id] = start
        replies = self._execute(tasks, deadline)
        ordered: "list[Optional[TopKResult]]" = [None] * len(functions)
        for task_id, reply in replies.items():
            start = spans[task_id]
            for offset, result in enumerate(reply.payload):
                ordered[start + offset] = tag_epoch(result, reply.epoch)
        return [result for result in ordered if result is not None]

    def _run_sharded(
        self,
        functions: "Sequence[ScoringFunction]",
        k: int,
        where: "WherePredicate | None",
        deadline: "Deadline | None",
    ) -> "list[TopKResult]":
        shard_count = self.num_workers
        tasks = {}
        placement = {}
        for index, function in enumerate(functions):
            for shard in range(shard_count):
                task = self._next_task(
                    "shard", [function], k, where, deadline, shard, shard_count
                )
                tasks[task.task_id] = task
                placement[task.task_id] = (index, shard)
        replies = self._execute(tasks, deadline)
        merged: "list[TopKResult]" = []
        for index in range(len(functions)):
            payloads = []
            epoch = -1
            for task_id, (query_index, _) in placement.items():
                if query_index == index:
                    reply = replies[task_id]
                    payloads.append(reply.payload[0])
                    epoch = reply.epoch
            merged.append(tag_epoch(merge_shard_results(payloads, k), epoch))
        return merged

    def _execute(
        self,
        tasks: "dict[int, QueryTask]",
        deadline: "Deadline | None" = None,
    ) -> "dict[int, TaskResult]":
        """Dispatch tasks round-robin; collect, heal, hedge, re-dispatch.

        ``assignment`` maps each pending task to the slots currently
        holding a copy of it (one, or two once hedged), each stamped
        with the slot's *generation* at dispatch and its own dispatch
        time.  The generation makes orphaned copies visible: a respawn
        bumps it, so a copy whose recorded generation no longer matches
        its slot's was sent to a process that is gone — along with the
        request queue holding the task — no matter which code path did
        the respawn.  The per-copy dispatch time keeps the hung-worker
        threshold per *copy*, so a hedge sent moments ago is never
        blamed for the primary's stall.  ``sent_at`` records the first
        dispatch time, which the hedge delay and reported latency are
        measured from.
        """
        pending: "dict[int, QueryTask]" = dict(tasks)
        assignment: "dict[int, dict[int, tuple[int, float]]]" = {}
        sent_at: "dict[int, float]" = {}
        hedged: "set[int]" = set()
        order = itertools.cycle(range(len(self._slots)))
        for task_id, task in tasks.items():
            slot_index = self._dispatch(task, next(order))
            assignment[task_id] = {
                slot_index: (
                    self._slots[slot_index].generation,
                    time.monotonic(),
                )
            }
            sent_at[task_id] = time.monotonic()
        replies: "dict[int, TaskResult]" = {}
        respawn_budget = self.num_workers * 4
        while pending:
            timeout = self._poll_interval
            if deadline is not None:
                deadline.check(stage="fabric")
                timeout = deadline.clamp(timeout)
            try:
                reply = self._results.get(timeout=max(timeout, 1e-4))
            except queue.Empty:
                healed = self._heal(pending, assignment, sent_at, hedged)
                healed += self._reap_hung(pending, assignment, sent_at, hedged)
                healed += self._check_wedged(
                    pending, assignment, sent_at, hedged
                )
                respawn_budget -= healed
                if respawn_budget < 0:
                    raise ParallelExecutionError(
                        "workers are crash-looping; respawn budget exhausted"
                    )
                self._hedge_stragglers(pending, assignment, sent_at, hedged)
                continue
            # Any reply proves the queue flows, so a prior worker death
            # did not poison it.
            self._suspect_since = None
            if reply.task_id not in pending:
                continue  # duplicate from a hedge or healed re-dispatch
            if reply.error is not None:
                for slot_index in assignment.get(reply.task_id, {}):
                    self._breakers.get(
                        self._breaker_name(self._slots[slot_index])
                    ).record_failure()
                if reply.error_kind == "deadline":
                    limit = (
                        deadline.total_ms
                        if deadline is not None
                        else float("nan")
                    )
                    spent = (
                        deadline.spent_ms()
                        if deadline is not None
                        else float("nan")
                    )
                    raise DeadlineExceeded(limit, spent, stage="fabric-worker")
                raise ParallelExecutionError(
                    f"worker {reply.worker_id} failed task "
                    f"{reply.task_id}: {reply.error}"
                )
            latency_ms = 1000.0 * (
                time.monotonic() - sent_at.get(reply.task_id, time.monotonic())
            )
            for slot_index in assignment.get(reply.task_id, {}):
                slot = self._slots[slot_index]
                if slot.worker_id == reply.worker_id:
                    self._breakers.get(
                        self._breaker_name(slot)
                    ).record_success(latency_ms)
            _trace(
                f"reply task={reply.task_id} worker={reply.worker_id}"
            )
            replies[reply.task_id] = reply
            del pending[reply.task_id]
            self._counters["tasks_completed"] += 1
        return replies

    def _breaker_name(self, slot: _WorkerSlot) -> str:
        return f"worker:{slot.worker_id}.g{slot.generation}"

    def _choose_slot(self, preferred: int, exclude: "set[int]") -> int | None:
        """The first breaker-admitted live slot at or after ``preferred``.

        Falls back to ``preferred`` itself when every slot's breaker is
        open — an all-open board must degrade to "pick anyone", never to
        "dispatch nowhere".  Returns ``None`` only when ``exclude``
        rules out every slot.
        """
        count = len(self._slots)
        candidates = [
            (preferred + step) % count
            for step in range(count)
            if (preferred + step) % count not in exclude
        ]
        if not candidates:
            return None
        for slot_index in candidates:
            breaker = self._breakers.get(
                self._breaker_name(self._slots[slot_index])
            )
            if breaker.allow():
                return slot_index
        return candidates[0]

    def _dispatch(
        self, task: QueryTask, slot_index: int, exclude: "set[int]" = frozenset()
    ) -> int:
        chosen = self._choose_slot(slot_index, set(exclude))
        if chosen is None:
            chosen = slot_index
        slot = self._slots[chosen]
        if not slot.alive:
            self._slots[chosen] = self._respawn(slot)
            slot = self._slots[chosen]
            if self._suspect_since is None:
                self._suspect_since = time.monotonic()
        slot.requests.put(task)
        self._counters["tasks_dispatched"] += 1
        _trace(
            f"dispatch task={task.task_id} slot={chosen} "
            f"child={slot.process.pid}"
        )
        return chosen

    def _respawn(self, dead: _WorkerSlot) -> _WorkerSlot:
        """Replace a dead worker with a fresh process on a fresh queue.

        The dead worker's queue is abandoned, not reused: a process
        killed mid-``get`` can leave the queue's internal lock held
        forever, which would deadlock any successor reading it.  The
        replacement also gets a fresh circuit breaker — the failures
        belonged to the process, not the slot.
        """
        self._breakers.drop(self._breaker_name(dead))
        _trace(
            f"respawn worker={dead.worker_id} gen={dead.generation} "
            f"dead_child={dead.process.pid}"
        )
        try:
            dead.process.join(timeout=0)
            dead.process.close()
        except ValueError:
            pass  # already closed
        self._counters["workers_respawned"] += 1
        fresh = self._spawn(dead.worker_id)
        fresh.generation = dead.generation + 1
        return fresh

    def _heal(
        self,
        pending: "dict[int, QueryTask]",
        assignment: "dict[int, dict[int, tuple[int, float]]]",
        sent_at: "dict[int, float]",
        hedged: "set[int]",
    ) -> int:
        """Respawn dead workers and re-dispatch orphaned task copies.

        A copy is *orphaned* when its slot's generation has moved past
        the one stamped at dispatch: the process it was sent to is gone,
        and the task died unread in that process's abandoned request
        queue.  Checking generations rather than "slots this pass found
        dead" matters because :meth:`_dispatch` also respawns dead slots
        inline — a slot can be freshly respawned and perfectly alive by
        the time this runs, yet still hold orphans from its previous
        incarnation.  Returns the number of workers respawned so the
        caller can charge its respawn budget.
        """
        respawned_slots = set()
        for slot_index, slot in enumerate(self._slots):
            if not slot.alive:
                self._slots[slot_index] = self._respawn(slot)
                respawned_slots.add(slot_index)
        if respawned_slots:
            _trace(f"heal slots={sorted(respawned_slots)}")
            if self._suspect_since is None:
                self._suspect_since = time.monotonic()
        for task_id, copies in list(assignment.items()):
            if task_id not in pending:
                continue
            survivors = {
                slot_index: (generation, dispatched_at)
                for slot_index, (generation, dispatched_at) in copies.items()
                if self._slots[slot_index].generation == generation
            }
            if len(survivors) == len(copies):
                continue
            if survivors:
                # A hedge copy is still in flight on a live worker; no
                # need to re-dispatch, just forget the orphaned copies.
                assignment[task_id] = survivors
                continue
            _trace(f"heal redispatch task={task_id}")
            target = self._dispatch(pending[task_id], min(copies))
            assignment[task_id] = {
                target: (self._slots[target].generation, time.monotonic())
            }
            sent_at[task_id] = time.monotonic()
            hedged.discard(task_id)
            self._counters["tasks_redispatched"] += 1
        return len(respawned_slots)

    def _reap_hung(
        self,
        pending: "dict[int, QueryTask]",
        assignment: "dict[int, dict[int, tuple[int, float]]]",
        sent_at: "dict[int, float]",
        hedged: "set[int]",
    ) -> int:
        """SIGKILL workers holding tasks past ``reply_timeout``; rebuild.

        Liveness polling cannot see these workers — a stopped or wedged
        process is still ``is_alive()`` — so the only trustworthy signal
        is the reply that never came, measured per dispatched *copy*: a
        hedge sent moments ago is never blamed for the primary's stall.

        Killing is not surgical.  A worker SIGKILLed mid-reply can die
        holding the shared reply queue's cross-process write lock,
        wedging every other worker's ``put`` forever — so a reap
        replaces the reply queue and respawns the *whole* pool onto it
        (:meth:`_rebuild_pool`), then re-dispatches every pending task.
        Returns the number of workers replaced (charged to the respawn
        budget by the caller).
        """
        if self.reply_timeout is None:
            return 0
        now = time.monotonic()
        overdue: "set[int]" = set()
        for task_id in pending:
            for slot_index, (generation, dispatched_at) in assignment.get(
                task_id, {}
            ).items():
                # A stale-generation copy belongs to a dead incarnation;
                # the current occupant of the slot is not to blame for
                # it (``_heal`` re-dispatches such orphans).
                if (
                    self._slots[slot_index].generation == generation
                    and now - dispatched_at >= self.reply_timeout
                ):
                    overdue.add(slot_index)
        overdue = {
            slot_index
            for slot_index in overdue
            if self._slots[slot_index].alive
        }
        if not overdue:
            return 0
        self._counters["workers_killed_hung"] += len(overdue)
        _trace(f"reap overdue_slots={sorted(overdue)}")
        rebuilt = self._rebuild_pool()
        self._redispatch_pending(pending, assignment, sent_at, hedged)
        return rebuilt

    def _check_wedged(
        self,
        pending: "dict[int, QueryTask]",
        assignment: "dict[int, dict[int, tuple[int, float]]]",
        sent_at: "dict[int, float]",
        hedged: "set[int]",
    ) -> int:
        """Rebuild when post-crash silence implicates the reply queue.

        A worker that dies mid-``put`` — SIGKILLed by a reap, by the
        OOM killer, or by a test — can take the shared reply queue's
        cross-process write lock to the grave, silently blocking every
        other worker's feeder thread.  The parent then sees healthy,
        idle-looking workers and an empty queue forever.  So any
        unexpected death marks the queue *suspect*; if no reply lands
        within the grace period while tasks are pending, the queue is
        presumed poisoned and the pool is rebuilt onto a fresh one.
        This is the only repair path for pools without a
        ``reply_timeout`` (whose reap would otherwise catch it later).
        Returns the number of workers replaced, charged to the respawn
        budget by the caller.
        """
        if self._suspect_since is None or not pending:
            return 0
        if time.monotonic() - self._suspect_since < self._WEDGE_GRACE:
            return 0
        _trace("wedge: post-crash silence; rebuilding the pool")
        rebuilt = self._rebuild_pool()
        self._redispatch_pending(pending, assignment, sent_at, hedged)
        return rebuilt

    def _redispatch_pending(
        self,
        pending: "dict[int, QueryTask]",
        assignment: "dict[int, dict[int, tuple[int, float]]]",
        sent_at: "dict[int, float]",
        hedged: "set[int]",
    ) -> None:
        """Re-dispatch every pending task after a pool rebuild."""
        for task_id, task in pending.items():
            preferred = min(assignment.get(task_id, {0: (0, 0.0)}))
            target = self._dispatch(task, preferred)
            assignment[task_id] = {
                target: (self._slots[target].generation, time.monotonic())
            }
            sent_at[task_id] = time.monotonic()
            hedged.discard(task_id)
            self._counters["tasks_redispatched"] += 1

    def _rebuild_pool(self) -> int:
        """Replace the reply queue and every worker; returns the count.

        The nuclear repair for a suspected-wedged reply queue: abandon
        the old queue (its write lock may be held by a corpse), create a
        fresh one, and respawn all workers onto it — live workers too,
        since they still hold the old queue and their future replies
        would vanish into it.  Buffered replies are lost by design;
        their tasks are still pending and get re-dispatched.
        """
        _trace("rebuild: abandoning reply queue")
        self._results = self._context.Queue()
        rebuilt = 0
        for slot_index, slot in enumerate(self._slots):
            if slot.alive:
                slot.process.kill()
                slot.process.join(timeout=5.0)
            self._slots[slot_index] = self._respawn(slot)
            rebuilt += 1
        # The fresh queue has never been touched by a corpse.
        self._suspect_since = None
        return rebuilt

    def _hedge_stragglers(
        self,
        pending: "dict[int, QueryTask]",
        assignment: "dict[int, dict[int, tuple[int, float]]]",
        sent_at: "dict[int, float]",
        hedged: "set[int]",
    ) -> None:
        """Dispatch duplicates of tasks pending past the hedge delay.

        The duplicate goes to a healthy slot not already holding the
        task; whichever copy replies first wins, the loser is dropped by
        task-id dedup.  Each task is hedged at most once per dispatch
        epoch (re-dispatch after a heal re-arms it).
        """
        if self.hedge_delay is None or len(self._slots) < 2:
            return
        now = time.monotonic()
        for task_id, task in pending.items():
            if task_id in hedged:
                continue
            if now - sent_at[task_id] < self.hedge_delay:
                continue
            current = assignment.get(task_id, {})
            target = self._choose_slot(
                (min(current, default=0) + 1) % len(self._slots),
                set(current),
            )
            if target is None:
                continue
            # _dispatch may pick a different admitted slot; trust its
            # return value rather than the pre-chosen target.
            target = self._dispatch(task, target, exclude=set(current))
            assignment[task_id] = {
                **current,
                target: (self._slots[target].generation, now),
            }
            hedged.add(task_id)
            self._counters["tasks_hedged"] += 1
            _trace(f"hedge task={task_id} slot={target}")


def _emergency_shutdown(
    slots: "list[_WorkerSlot]", shared_ref: "list[SharedSnapshot]"
) -> None:
    """GC backstop: never leak processes or ``/dev/shm`` segments."""
    for slot in slots:
        try:
            if slot.process.is_alive():
                # SIGKILL, not SIGTERM: a stopped worker never sees the
                # latter, and the backstop must not leave processes
                # behind.
                slot.process.kill()
        except ValueError:
            pass  # process object already closed
    shared_ref[0].destroy()
