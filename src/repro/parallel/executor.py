"""Owner-side worker pool of the parallel query fabric.

:class:`ParallelQueryExecutor` exports a :class:`CompiledDG` to shared
memory once, forks N persistent workers that each attach it once, and
then streams query tasks to them over per-worker request queues.  Design
points:

- **Per-worker request queues, one shared result queue.**  Requests are
  routed round-robin; replies carry the task id, so the collector can
  match them regardless of completion order.  Per-worker queues make a
  snapshot publish a simple FIFO barrier: every task enqueued after the
  :class:`~repro.parallel.worker.PublishMessage` runs on the new epoch.
- **Self-healing.**  The collector polls worker liveness whenever the
  result queue goes quiet; a dead worker is replaced by a fresh process
  on a *fresh* queue (the old queue's internal lock may have died with
  the worker) and that worker's outstanding tasks are re-dispatched.
  Duplicate replies — possible when a re-dispatched task raced its dying
  first run — are dropped by task id.  A respawn budget turns systemic
  crash loops into :class:`~repro.errors.ParallelExecutionError` instead
  of a hang.
- **Leak-proof segments.**  The executor owns every segment it exports;
  ``shutdown`` (also a ``weakref.finalize`` backstop, also ``with``)
  destroys the current segment, and ``publish`` destroys the previous
  one immediately — POSIX keeps it alive for workers still mapping it.

Execution modes mirror :mod:`repro.parallel.worker`: ``batch`` (default,
fastest — amortizes per-query dispatch inside each worker), ``full``
(one traversal per query, parallel across workers), ``shard`` (each
query split across all workers, answers k-way merged).  All three return
results bit-identical to the single-process compiled engine.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import queue
import threading
import weakref
from typing import Optional, Sequence

from repro.core.compiled import CompiledDG
from repro.core.functions import ScoringFunction, WherePredicate
from repro.core.result import TopKResult
from repro.errors import ParallelExecutionError
from repro.metrics.counters import AccessCounter
from repro.parallel.shm import SharedSnapshot, export_snapshot
from repro.parallel.worker import (
    SHARD_ALGORITHM,
    PublishMessage,
    QueryTask,
    TaskResult,
    tag_epoch,
    worker_main,
)


class _WorkerSlot:
    """One pool slot: the live process plus its private request queue."""

    def __init__(self, worker_id: int, process, requests) -> None:
        self.worker_id = worker_id
        self.process = process
        self.requests = requests

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


def merge_shard_results(
    shard_payloads: "Sequence[tuple]", k: int
) -> TopKResult:
    """K-way merge per-shard candidate pairs into one exact top-k.

    Each payload is ``(pairs, stats)`` from
    :func:`repro.parallel.worker.shard_scan`; pairs arrive sorted by the
    engine's ``(-score, id)`` rule, so a heap merge of the shard streams
    yields the globally best ``k`` pairs in the same order the
    single-process traversal reports them.
    """
    stats = AccessCounter()
    for _, shard_stats in shard_payloads:
        stats.merge(shard_stats)
    streams = [list(pairs) for pairs, _ in shard_payloads]
    merged = heapq.merge(
        *streams, key=lambda pair: (-pair[0], pair[1])
    )
    best = list(itertools.islice(merged, k))
    return TopKResult.from_pairs(best, stats, algorithm=SHARD_ALGORITHM)


class ParallelQueryExecutor:
    """Persistent multi-process query pool over a shared snapshot.

    Examples
    --------
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.builder import build_dominant_graph
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5]])
    >>> compiled = build_dominant_graph(ds).compile()
    >>> with ParallelQueryExecutor(compiled, workers=2) as pool:
    ...     result = pool.query(LinearFunction([0.5, 0.5]), k=2)
    >>> sorted(result.ids)
    [0, 1]
    """

    def __init__(
        self,
        compiled: CompiledDG,
        *,
        workers: int = 2,
        batch_size: int = 64,
        epoch: int = 0,
        poll_interval: float = 0.05,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.num_workers = int(workers)
        self.batch_size = int(batch_size)
        self._poll_interval = float(poll_interval)
        self._context = multiprocessing.get_context("fork")
        self._shared: SharedSnapshot = export_snapshot(compiled, epoch=epoch)
        self._results = self._context.Queue()
        self._task_ids = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        self._counters = {
            "tasks_dispatched": 0,
            "tasks_completed": 0,
            "tasks_redispatched": 0,
            "workers_respawned": 0,
            "publishes": 0,
        }
        self._slots = [self._spawn(i) for i in range(self.num_workers)]
        # The backstop holds the slots list and a one-element holder for
        # the current segment — both mutated in place — so it always
        # tears down the *latest* pool state, not the initial one.
        self._shared_ref = [self._shared]
        self._finalizer = weakref.finalize(
            self, _emergency_shutdown, self._slots, self._shared_ref
        )

    # -- lifecycle ----------------------------------------------------

    def _spawn(self, worker_id: int) -> _WorkerSlot:
        requests = self._context.Queue()
        process = self._context.Process(
            target=worker_main,
            args=(worker_id, self._shared.handle, requests, self._results),
            daemon=True,
            name=f"repro-dg-worker-{worker_id}",
        )
        process.start()
        return _WorkerSlot(worker_id, process, requests)

    def publish(self, compiled: CompiledDG, *, epoch: int) -> None:
        """Swap every worker onto a freshly exported snapshot.

        Per-worker FIFO ordering makes this a barrier: tasks dispatched
        after ``publish`` returns are answered from the new epoch.  The
        previous segment is unlinked immediately — workers still mapping
        it finish in-flight tasks on it and release it when they process
        the publish message.
        """
        with self._lock:
            self._ensure_open()
            fresh = export_snapshot(compiled, epoch=epoch)
            previous = self._shared
            self._shared = fresh
            self._shared_ref[0] = fresh
            for slot in self._slots:
                if slot.alive:
                    slot.requests.put(PublishMessage(fresh.handle))
            previous.destroy()
            self._counters["publishes"] += 1

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop workers, drain queues, and unlink the segment.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for slot in self._slots:
                if slot.alive:
                    slot.requests.put(None)
            for slot in self._slots:
                slot.process.join(timeout=timeout)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(timeout=timeout)
                slot.process.close()
                slot.requests.close()
            self._results.close()
            self._shared.destroy()
            self._finalizer.detach()

    def __enter__(self) -> "ParallelQueryExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    @property
    def epoch(self) -> int:
        """Epoch of the snapshot new tasks are answered from."""
        return self._shared.handle.epoch

    def stats(self) -> dict:
        """Counters for dispatch, healing, and publish activity."""
        with self._lock:
            snapshot = dict(self._counters)
        snapshot["workers"] = self.num_workers
        snapshot["batch_size"] = self.batch_size
        return snapshot

    # -- queries ------------------------------------------------------

    def query(
        self,
        function: ScoringFunction,
        k: int,
        *,
        where: "WherePredicate | None" = None,
    ) -> TopKResult:
        """Answer one top-k query on a single worker (full traversal)."""
        (result,) = self.map_queries([function], k, where=where, mode="full")
        return result

    def query_sharded(
        self,
        function: ScoringFunction,
        k: int,
        *,
        where: "WherePredicate | None" = None,
    ) -> TopKResult:
        """Answer one query split across every worker, k-way merged."""
        (result,) = self.map_queries([function], k, where=where, mode="shard")
        return result

    def map_queries(
        self,
        functions: "Sequence[ScoringFunction]",
        k: int,
        *,
        where: "WherePredicate | None" = None,
        mode: str = "auto",
    ) -> "list[TopKResult]":
        """Answer many queries across the pool; results keep input order.

        ``mode``: ``"batch"`` groups queries into ``batch_size`` chunks
        answered by :func:`~repro.core.compiled.batch_top_k` inside each
        worker (default via ``"auto"``); ``"full"`` runs one traversal
        per query, spread round-robin; ``"shard"`` splits every query
        across all workers and k-way merges.  All modes are bit-identical
        to the single-process engine per query.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if mode == "auto":
            mode = "batch"
        if mode not in ("batch", "full", "shard"):
            raise ValueError(f"unknown mode: {mode!r}")
        functions = list(functions)
        if not functions:
            return []
        with self._lock:
            self._ensure_open()
            if mode == "shard":
                return self._run_sharded(functions, k, where)
            return self._run_chunked(functions, k, where, mode)

    # -- internals (callers hold self._lock) --------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ParallelExecutionError("executor is shut down")

    def _next_task(
        self,
        mode: str,
        functions: "Sequence[ScoringFunction]",
        k: int,
        where: "WherePredicate | None",
        shard_index: int = 0,
        shard_count: int = 1,
    ) -> QueryTask:
        return QueryTask(
            task_id=next(self._task_ids),
            mode=mode,
            functions=tuple(functions),
            k=k,
            where=where,
            shard_index=shard_index,
            shard_count=shard_count,
        )

    def _run_chunked(
        self,
        functions: "Sequence[ScoringFunction]",
        k: int,
        where: "WherePredicate | None",
        mode: str,
    ) -> "list[TopKResult]":
        chunk = self.batch_size if mode == "batch" else 1
        tasks = {}
        spans = {}
        for start in range(0, len(functions), chunk):
            task = self._next_task(
                mode, functions[start : start + chunk], k, where
            )
            tasks[task.task_id] = task
            spans[task.task_id] = start
        replies = self._execute(tasks)
        ordered: "list[Optional[TopKResult]]" = [None] * len(functions)
        for task_id, reply in replies.items():
            start = spans[task_id]
            for offset, result in enumerate(reply.payload):
                ordered[start + offset] = tag_epoch(result, reply.epoch)
        return [result for result in ordered if result is not None]

    def _run_sharded(
        self,
        functions: "Sequence[ScoringFunction]",
        k: int,
        where: "WherePredicate | None",
    ) -> "list[TopKResult]":
        shard_count = self.num_workers
        tasks = {}
        placement = {}
        for index, function in enumerate(functions):
            for shard in range(shard_count):
                task = self._next_task(
                    "shard", [function], k, where, shard, shard_count
                )
                tasks[task.task_id] = task
                placement[task.task_id] = (index, shard)
        replies = self._execute(tasks)
        merged: "list[TopKResult]" = []
        for index in range(len(functions)):
            payloads = []
            epoch = -1
            for task_id, (query_index, _) in placement.items():
                if query_index == index:
                    reply = replies[task_id]
                    payloads.append(reply.payload[0])
                    epoch = reply.epoch
            merged.append(tag_epoch(merge_shard_results(payloads, k), epoch))
        return merged

    def _execute(self, tasks: "dict[int, QueryTask]") -> "dict[int, TaskResult]":
        """Dispatch tasks round-robin; collect, heal, and re-dispatch."""
        pending: "dict[int, QueryTask]" = dict(tasks)
        assignment: "dict[int, int]" = {}
        order = itertools.cycle(range(len(self._slots)))
        for task_id, task in tasks.items():
            slot_index = self._dispatch(task, next(order))
            assignment[task_id] = slot_index
        replies: "dict[int, TaskResult]" = {}
        respawn_budget = self.num_workers * 4
        while pending:
            try:
                reply = self._results.get(timeout=self._poll_interval)
            except queue.Empty:
                respawn_budget -= self._heal(pending, assignment)
                if respawn_budget < 0:
                    raise ParallelExecutionError(
                        "workers are crash-looping; respawn budget exhausted"
                    )
                continue
            if reply.task_id not in pending:
                continue  # duplicate from a healed re-dispatch
            if reply.error is not None:
                raise ParallelExecutionError(
                    f"worker {reply.worker_id} failed task "
                    f"{reply.task_id}: {reply.error}"
                )
            replies[reply.task_id] = reply
            del pending[reply.task_id]
            self._counters["tasks_completed"] += 1
        return replies

    def _dispatch(self, task: QueryTask, slot_index: int) -> int:
        slot = self._slots[slot_index]
        if not slot.alive:
            self._slots[slot_index] = self._respawn(slot)
            slot = self._slots[slot_index]
        slot.requests.put(task)
        self._counters["tasks_dispatched"] += 1
        return slot_index

    def _respawn(self, dead: _WorkerSlot) -> _WorkerSlot:
        """Replace a dead worker with a fresh process on a fresh queue.

        The dead worker's queue is abandoned, not reused: a process
        killed mid-``get`` can leave the queue's internal lock held
        forever, which would deadlock any successor reading it.
        """
        try:
            dead.process.join(timeout=0)
            dead.process.close()
        except ValueError:
            pass  # already closed
        self._counters["workers_respawned"] += 1
        return self._spawn(dead.worker_id)

    def _heal(
        self,
        pending: "dict[int, QueryTask]",
        assignment: "dict[int, int]",
    ) -> int:
        """Respawn dead workers and re-dispatch their outstanding tasks.

        Returns the number of workers respawned so the caller can charge
        its respawn budget.
        """
        respawned_slots = set()
        for slot_index, slot in enumerate(self._slots):
            if not slot.alive:
                self._slots[slot_index] = self._respawn(slot)
                respawned_slots.add(slot_index)
        if not respawned_slots:
            return 0
        for task_id, slot_index in list(assignment.items()):
            if task_id in pending and slot_index in respawned_slots:
                slot = self._slots[slot_index]
                slot.requests.put(pending[task_id])
                self._counters["tasks_redispatched"] += 1
        return len(respawned_slots)


def _emergency_shutdown(
    slots: "list[_WorkerSlot]", shared_ref: "list[SharedSnapshot]"
) -> None:
    """GC backstop: never leak processes or ``/dev/shm`` segments."""
    for slot in slots:
        try:
            if slot.process.is_alive():
                slot.process.terminate()
        except ValueError:
            pass  # process object already closed
    shared_ref[0].destroy()
