"""Worker-process side of the parallel query fabric.

Each worker is a long-lived process that attaches the shared snapshot
once (:func:`repro.parallel.shm.attach_snapshot`) and then serves tasks
from its private request queue until told to stop.  Workers never mutate
the shared arrays — the snapshot views are read-only — and they carry no
module-global randomness, so answers depend only on the task and the
snapshot epoch (``repro lint``'s ``worker-discipline`` rule enforces
both properties statically).

Task modes
----------
``full``
    One :meth:`~repro.core.compiled.CompiledDG.top_k` call per function —
    a batch of one through the same layer-progressive kernel as
    single-process serving, with per-function access counters.
``batch``
    All of the task's functions answered in one layer-progressive
    :func:`~repro.core.compiled.batch_top_k` sweep.
``shard``
    The worker scores only dense rows with
    ``row % shard_count == shard_index`` and returns its local top-k
    *candidate pairs*; the executor k-way-merges shard pairs into the
    final answer.  Exactness: the shards partition the record set, every
    record's score is computed by the same ``score_many`` contract as the
    reference engine (row values are identical regardless of which rows
    sit beside them in the block), and the merge orders by the engine's
    ``(-score, id)`` rule — so the merged top-k is the global top-k,
    bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compiled import batch_top_k
from repro.core.functions import ScoringFunction, WherePredicate
from repro.core.result import TopKResult
from repro.errors import DeadlineExceeded
from repro.metrics.counters import AccessCounter
from repro.parallel.shm import AttachedSnapshot, SnapshotHandle, attach_snapshot
from repro.resilience.deadline import Deadline
from repro.store.mapped import StoreSnapshotHandle, attach_store

#: Algorithm label stamped on merged shard-mode results.
SHARD_ALGORITHM = "compiled-shard-scan"


@dataclass(frozen=True)
class QueryTask:
    """One unit of fabric work: a group of queries against one snapshot.

    ``deadline`` is the request's end-to-end
    :class:`~repro.resilience.deadline.Deadline`, pickled across the
    fork boundary — valid because ``CLOCK_MONOTONIC`` is system-wide on
    Linux, so parent and worker measure the same instant.  The worker
    threads it into the kernel's chunk-loop checkpoints; a worker that
    wakes from a stall mid-query stops at the next chunk instead of
    finishing an answer nobody is waiting for.
    """

    task_id: int
    mode: str
    functions: tuple
    k: int
    where: "WherePredicate | None" = None
    shard_index: int = 0
    shard_count: int = 1
    deadline: "Deadline | None" = None


@dataclass(frozen=True)
class PublishMessage:
    """Tell a worker to switch to a newer snapshot.

    ``handle`` is either a shared-memory
    :class:`~repro.parallel.shm.SnapshotHandle` or a file-backed
    :class:`~repro.store.mapped.StoreSnapshotHandle`; workers dispatch
    on the type, so the two transports interleave freely.
    """

    handle: "SnapshotHandle | StoreSnapshotHandle"


def attach_handle(
    handle: "SnapshotHandle | StoreSnapshotHandle",
) -> AttachedSnapshot:
    """Attach whichever snapshot transport the handle describes.

    File-backed handles run fast store verification on every attach, so
    a tampered or torn file surfaces as a typed
    :class:`~repro.errors.StoreCorruptionError` here — never as wrong
    answers later.
    """
    if isinstance(handle, StoreSnapshotHandle):
        return attach_store(handle)  # type: ignore[return-value]
    return attach_snapshot(handle)


@dataclass(frozen=True)
class TaskResult:
    """Worker reply: per-function payloads, or an error summary.

    ``error_kind`` discriminates typed failures so the executor can
    re-raise them typed instead of wrapping everything in
    :class:`~repro.errors.ParallelExecutionError`: ``"deadline"`` marks
    a :class:`~repro.errors.DeadlineExceeded` tripped inside the
    worker's kernel checkpoints; ``"query"`` covers everything else.
    """

    task_id: int
    worker_id: int
    epoch: int
    payload: "tuple | None"
    error: "str | None" = None
    error_kind: "str | None" = None


def shard_scan(
    snapshot: AttachedSnapshot,
    function: ScoringFunction,
    k: int,
    *,
    where: "WherePredicate | None" = None,
    shard_index: int = 0,
    shard_count: int = 1,
) -> "tuple[tuple, AccessCounter]":
    """Local top-k candidate pairs for one hash shard of the snapshot.

    Scores every answerable record whose dense row index hashes to this
    shard and returns up to ``k`` ``(score, record_id)`` pairs in the
    engine's ``(-score, id)`` order, plus the access counter for the
    scan.  The union of all shards' answerable rows is exactly the
    snapshot's answerable set, so merging the per-shard pairs yields the
    global top-k (see module docstring).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index {shard_index} out of range for "
            f"shard_count {shard_count}"
        )
    compiled = snapshot.compiled
    values = compiled.values
    n = int(values.shape[0])
    stats = AccessCounter()
    rows = np.arange(shard_index, n, shard_count, dtype=np.int64)
    if rows.size == 0:
        return (), stats
    pseudo_rows = compiled.pseudo_mask[rows]
    stats.count_computed_batch(
        compiled.record_ids[rows], pseudo=int(pseudo_rows.sum())
    )
    answerable = ~pseudo_rows
    if where is not None:
        for offset in np.flatnonzero(answerable).tolist():
            answerable[offset] = bool(where(values[int(rows[offset])]))
    rows = rows[answerable]
    if rows.size == 0:
        return (), stats
    scores = function.score_many(values[rows])
    ids = compiled.record_ids[rows]
    take = min(k, int(rows.size))
    if int(rows.size) > take:
        kth_value = np.partition(scores, int(rows.size) - take)[
            int(rows.size) - take
        ]
        keep = np.flatnonzero(scores >= kth_value)
        scores = scores[keep]
        ids = ids[keep]
    order = np.lexsort((ids, -scores))[:take]
    pairs = tuple(
        (float(scores[i]), int(ids[i])) for i in order.tolist()
    )
    return pairs, stats


def execute_task(snapshot: AttachedSnapshot, task: QueryTask) -> tuple:
    """Run one task against an attached snapshot and return its payload.

    ``full``/``batch`` payloads are tuples of :class:`TopKResult`;
    ``shard`` payloads are tuples of ``(pairs, stats)`` per function.
    """
    if task.deadline is not None:
        # A task that sat in a queue past its deadline (behind a stall,
        # behind a publish) must not start scoring at all.
        task.deadline.check(stage="worker")
    if task.mode == "full":
        return tuple(
            snapshot.compiled.top_k(
                function, task.k, where=task.where, deadline=task.deadline
            )
            for function in task.functions
        )
    if task.mode == "batch":
        return tuple(
            batch_top_k(
                snapshot.compiled,
                list(task.functions),
                task.k,
                where=task.where,
                deadline=task.deadline,
            )
        )
    if task.mode == "shard":
        return tuple(
            shard_scan(
                snapshot,
                function,
                task.k,
                where=task.where,
                shard_index=task.shard_index,
                shard_count=task.shard_count,
            )
            for function in task.functions
        )
    raise ValueError(f"unknown task mode: {task.mode!r}")


def worker_main(
    worker_id: int,
    handle: "SnapshotHandle | StoreSnapshotHandle",
    requests: "object",
    results: "object",
) -> None:
    """Entry point of one fabric worker process.

    Attaches the snapshot (shared-memory or mapped file, per the handle
    type), then loops: execute tasks, honour :class:`PublishMessage`
    snapshot swaps, exit on ``None``.  Query errors are reported back as
    :class:`TaskResult` errors — a bad query must not kill the worker,
    or one malformed request could take down a slot serving thousands of
    good ones.  A snapshot that cannot be attached at startup (already
    superseded, or failing store verification) exits the worker cleanly;
    the executor's healing machinery respawns it against the current
    epoch.
    """
    from repro.errors import StoreCorruptionError
    from repro.parallel.executor import _trace

    try:
        snapshot = attach_handle(handle)
    except (FileNotFoundError, StoreCorruptionError) as exc:
        # Never serve an unverifiable snapshot: exit and let the
        # executor respawn this slot onto the current publication.
        _trace(f"worker-attach-failed id={worker_id} err={exc!r}")
        return
    _trace(f"worker-up id={worker_id}")
    try:
        while True:
            message = requests.get()
            if message is None:
                _trace(f"worker-sentinel id={worker_id}")
                break
            if isinstance(message, PublishMessage):
                try:
                    fresh = attach_handle(message.handle)
                except FileNotFoundError:
                    # A newer publish already destroyed this segment or
                    # generation file; its own PublishMessage is behind
                    # this one in the FIFO, so keep serving the current
                    # mapping until it lands.
                    continue
                except StoreCorruptionError as exc:
                    # Quarantine-not-serve: a store file that fails
                    # verification is never mapped — keep answering
                    # from the (still correct) current snapshot until a
                    # clean generation is published.
                    _trace(
                        f"worker-publish-rejected id={worker_id} "
                        f"err={exc!r}"
                    )
                    continue
                previous = snapshot
                snapshot = fresh
                previous.close()
                continue
            try:
                payload = execute_task(snapshot, message)
                reply = TaskResult(
                    task_id=message.task_id,
                    worker_id=worker_id,
                    epoch=snapshot.epoch,
                    payload=payload,
                )
            except Exception as exc:  # repro: noqa[typed-errors] -- a worker must survive any query-time error and report it to the executor instead of dying
                reply = TaskResult(
                    task_id=message.task_id,
                    worker_id=worker_id,
                    epoch=snapshot.epoch,
                    payload=None,
                    error=f"{type(exc).__name__}: {exc}",
                    error_kind=(
                        "deadline"
                        if isinstance(exc, DeadlineExceeded)
                        else "query"
                    ),
                )
            results.put(reply)
            _trace(
                f"worker-replied id={worker_id} task={message.task_id}"
            )
    finally:
        snapshot.close()


def tag_epoch(result: TopKResult, epoch: int) -> TopKResult:
    """Stamp a worker-reported snapshot epoch onto a result."""
    return TopKResult(
        ids=result.ids,
        scores=result.scores,
        stats=result.stats,
        algorithm=result.algorithm,
        tier=result.tier,
        epoch=epoch,
    )
