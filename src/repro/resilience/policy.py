"""Unified retry and timeout policies for the serving stack.

Before this module, retry behaviour lived in ad-hoc
``retry_with_backoff`` call sites and timeouts were scattered keyword
defaults.  A :class:`RetryPolicy` is the declarative replacement: one
frozen object that says how many attempts, what backoff, what is fatal —
and, crucially, is *deadline-aware*: it never sleeps past the request's
:class:`~repro.resilience.deadline.Deadline` and never starts an attempt
the deadline has already killed.  A :class:`TimeoutPolicy` centralizes
the stack's wall-clock knobs so admission, fabric dispatch, and hedging
draw from one tuned set instead of per-call-site magic numbers.

Both are plain frozen dataclasses: cheap to construct per-index, safe to
share across threads, trivially comparable in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.errors import QueryBudgetExceeded
from repro.resilience.deadline import Deadline

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deadline-aware retry with deterministic backoff.

    Attributes
    ----------
    attempts:
        Total calls allowed (1 = no retry).
    base_delay:
        Seconds slept after the first failure; attempt ``i`` sleeps
        ``base_delay * factor**i``.
    factor:
        Backoff multiplier between attempts.
    retriable:
        Exception types worth another attempt.
    fatal:
        Exception types that propagate immediately.  Defaults to
        :class:`~repro.errors.QueryBudgetExceeded` (which covers
        :class:`~repro.errors.DeadlineExceeded`): a retry spends the
        very budget that tripped.
    sleep:
        Injectable sleeper for deterministic tests.
    """

    attempts: int = 3
    base_delay: float = 0.005
    factor: float = 2.0
    retriable: tuple[type[BaseException], ...] = (Exception,)
    fatal: tuple[type[BaseException], ...] = (QueryBudgetExceeded,)
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")

    def run(
        self,
        fn: Callable[[], T],
        *,
        deadline: "Deadline | None" = None,
        stage: str = "",
    ) -> T:
        """Call ``fn`` until it succeeds, fails fatally, or runs out.

        With a ``deadline``, each attempt is preceded by a
        :meth:`~repro.resilience.deadline.Deadline.check` and backoff
        sleeps are clamped to the remaining time — an exhausted deadline
        surfaces as :class:`~repro.errors.DeadlineExceeded` rather than
        a retry that cannot possibly finish.
        """
        for attempt in range(self.attempts):
            if deadline is not None:
                deadline.check(stage=stage or "retry")
            try:
                return fn()
            except self.fatal:
                raise
            except self.retriable:
                if attempt + 1 == self.attempts:
                    raise
                delay = self.base_delay * self.factor**attempt
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= delay:
                        # No time for the backoff, let alone the retry.
                        raise
                    delay = deadline.clamp(delay)
                self.sleep(delay)
        raise AssertionError("unreachable")


@dataclass(frozen=True)
class TimeoutPolicy:
    """The serving stack's wall-clock knobs, in one place.

    Attributes
    ----------
    default_deadline_ms:
        End-to-end deadline granted to requests that do not bring their
        own (``None`` = unbounded, the pre-resilience behaviour).
    reply_timeout:
        Seconds the fabric executor waits for a dispatched task's reply
        before declaring the worker hung, SIGKILL-healing it, and
        re-dispatching (``None`` = wait forever).
    hedge_fraction:
        Fraction of ``reply_timeout`` after which a duplicate of a
        still-pending task is hedged to another healthy worker.  The
        duplicate-reply dedup in the executor makes the race safe.
    """

    default_deadline_ms: float | None = None
    reply_timeout: float | None = 2.0
    hedge_fraction: float = 0.5

    def __post_init__(self) -> None:
        if (
            self.default_deadline_ms is not None
            and self.default_deadline_ms <= 0
        ):
            raise ValueError("default_deadline_ms must be positive or None")
        if self.reply_timeout is not None and self.reply_timeout <= 0:
            raise ValueError("reply_timeout must be positive or None")
        if not 0.0 < self.hedge_fraction <= 1.0:
            raise ValueError("hedge_fraction must be in (0, 1]")

    def deadline_for(
        self, deadline_ms: float | None = None
    ) -> "Deadline | None":
        """A fresh request deadline: explicit budget, else the default."""
        budget = self.default_deadline_ms if deadline_ms is None else deadline_ms
        if budget is None:
            return None
        return Deadline.after_ms(budget)

    @property
    def hedge_delay(self) -> float | None:
        """Seconds before a pending task is hedged (``None`` = never)."""
        if self.reply_timeout is None:
            return None
        return self.reply_timeout * self.hedge_fraction
