"""Circuit breakers: stop sending work to a dependency that keeps failing.

A :class:`CircuitBreaker` guards one dependency — a serving tier, a
fabric worker — and tracks call outcomes over a sliding window.  It
moves through the classic three states:

``closed``
    Normal operation.  Calls flow; outcomes are recorded.  When the
    window holds at least ``min_calls`` outcomes and the failure rate
    reaches ``failure_threshold``, the breaker *opens*.
``open``
    Calls are rejected immediately (:meth:`allow` returns ``False``,
    :meth:`check` raises :class:`~repro.errors.CircuitOpenError`) until
    ``cooldown`` seconds pass.  Rejecting without work is the point:
    a dependency drowning in failures recovers faster without traffic,
    and callers degrade to the next tier instead of queueing on a
    corpse.
``half-open``
    After the cooldown, a limited number of probe calls
    (``half_open_max``) are admitted.  All probes succeeding closes the
    breaker; any probe failing re-opens it for another cooldown.

Breakers also keep an EWMA of success latency so tier selection can ask
"can this tier finish in the time the request has left?" — the
remaining-time-aware skipping in :func:`repro.core.guard.run_query`.

All methods are thread-safe; the clock is injectable so the chaos suite
can drive state transitions deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from repro.errors import CircuitOpenError

#: The three breaker states, as reported by health probes.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate circuit breaker over a sliding outcome window.

    Parameters
    ----------
    name:
        Identifier used in errors and health probes
        (e.g. ``"tier:compiled"``, ``"worker:2"``).
    window:
        How many recent call outcomes the failure rate is computed over.
    failure_threshold:
        Fraction of failures in the window (``0 < t <= 1``) at which the
        breaker opens.
    min_calls:
        Outcomes required in the window before the rate is trusted — a
        single failure out of one call is not a 100 % failure *rate*.
    cooldown:
        Seconds an open breaker rejects calls before probing.
    half_open_max:
        Probe calls admitted in the half-open state.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        name: str,
        *,
        window: int = 16,
        failure_threshold: float = 0.5,
        min_calls: int = 4,
        cooldown: float = 1.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if min_calls < 1:
            raise ValueError("min_calls must be at least 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if half_open_max < 1:
            raise ValueError("half_open_max must be at least 1")
        self.name = name
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.cooldown = cooldown
        self.half_open_max = half_open_max
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self._half_open_successes = 0
        self._latency_ewma_ms: float | None = None
        self._opens = 0
        self._rejections = 0

    # -- state ---------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state (transitions open→half-open lazily on read)."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self._state = HALF_OPEN
                self._half_open_inflight = 0
                self._half_open_successes = 0
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now (counts half-open probes)."""
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN:
                if self._half_open_inflight < self.half_open_max:
                    self._half_open_inflight += 1
                    return True
            self._rejections += 1
            return False

    def check(self) -> None:
        """Like :meth:`allow` but raises :class:`CircuitOpenError` when shut."""
        if not self.allow():
            with self._lock:
                retry_after = max(
                    0.0, self.cooldown - (self._clock() - self._opened_at)
                )
            raise CircuitOpenError(self.name, retry_after)

    # -- outcomes ------------------------------------------------------

    def record_success(self, latency_ms: float | None = None) -> None:
        """Record a successful call (optionally with its latency)."""
        with self._lock:
            if latency_ms is not None:
                if self._latency_ewma_ms is None:
                    self._latency_ewma_ms = float(latency_ms)
                else:
                    self._latency_ewma_ms += 0.25 * (
                        float(latency_ms) - self._latency_ewma_ms
                    )
            state = self._state_locked()
            if state == HALF_OPEN:
                self._half_open_successes += 1
                if self._half_open_successes >= self.half_open_max:
                    self._state = CLOSED
                    self._outcomes.clear()
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        """Record a failed call; may open (or re-open) the breaker."""
        with self._lock:
            state = self._state_locked()
            if state == HALF_OPEN:
                self._open_locked()
                return
            self._outcomes.append(False)
            if len(self._outcomes) >= self.min_calls:
                failures = sum(1 for ok in self._outcomes if not ok)
                if failures / len(self._outcomes) >= self.failure_threshold:
                    self._open_locked()

    def _open_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._opens += 1
        self._outcomes.clear()

    # -- introspection -------------------------------------------------

    @property
    def latency_ewma_ms(self) -> float | None:
        """Smoothed success latency, or ``None`` before the first sample."""
        with self._lock:
            return self._latency_ewma_ms

    def snapshot(self) -> dict:
        """Point-in-time view for health probes and BENCH reports."""
        with self._lock:
            state = self._state_locked()
            outcomes = list(self._outcomes)
            failures = sum(1 for ok in outcomes if not ok)
            return {
                "name": self.name,
                "state": state,
                "window_calls": len(outcomes),
                "window_failures": failures,
                "opens": self._opens,
                "rejections": self._rejections,
                "latency_ewma_ms": self._latency_ewma_ms,
            }


class BreakerBoard:
    """A named registry of breakers sharing one configuration.

    The serving index keeps one board for tiers and the executor one for
    workers; :meth:`snapshot` feeds the ``breakers`` section of
    :meth:`repro.serve.index.ServingIndex.health`.
    """

    def __init__(self, **breaker_kwargs: object) -> None:
        self._kwargs = breaker_kwargs
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, name: str) -> CircuitBreaker:
        """The breaker for ``name``, created on first use."""
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(name, **self._kwargs)  # type: ignore[arg-type]
                self._breakers[name] = breaker
            return breaker

    def drop(self, name: str) -> None:
        """Forget a breaker (e.g. when its worker slot is respawned)."""
        with self._lock:
            self._breakers.pop(name, None)

    def snapshot(self) -> dict:
        """Per-breaker snapshots keyed by name, in sorted order."""
        with self._lock:
            breakers = dict(self._breakers)
        return {
            name: breakers[name].snapshot() for name in sorted(breakers)
        }
