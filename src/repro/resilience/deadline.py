"""End-to-end request deadlines.

A :class:`Deadline` is one immutable expiry instant threaded through the
whole request path: admission waits are clamped to it, the guard refuses
to start a tier it cannot finish, the fabric executor bounds how long it
waits for worker replies, and the batch kernel checks it between layer
chunks.  Every layer observes the *same* instant, so "the request has
80 ms left" means the same thing everywhere — there is no place a
request can hide past its budget.

Clock discipline
----------------
Deadlines are anchored to ``time.monotonic()`` (``CLOCK_MONOTONIC``).
On Linux that clock is system-wide, not per-process, so a pickled
deadline crossing a ``fork()`` boundary into a fabric worker still
measures the same instant — which is what lets the kernel chunk loop
inside a worker honour a deadline created in the serving process.

Relation to budgets
-------------------
``budget_ms`` (:class:`repro.core.guard.BudgetedAccessCounter`) is a
*per-tier* wall-clock allowance that restarts on every degradation
step; a :class:`Deadline` is the *end-to-end* allowance that does not.
Expiry raises :class:`repro.errors.DeadlineExceeded`, a subclass of
:class:`~repro.errors.QueryBudgetExceeded`, so every budget handler
(never-degrade-around, retry-fatal, CLI exit 3) applies unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import DeadlineExceeded


@dataclass(frozen=True)
class Deadline:
    """An immutable monotonic-clock expiry for one request.

    Attributes
    ----------
    expires_at:
        ``time.monotonic()`` timestamp after which the request is late.
    total_ms:
        The originally granted budget in milliseconds (kept for error
        messages and reporting; the expiry instant is authoritative).
    """

    expires_at: float
    total_ms: float

    @classmethod
    def after_ms(cls, budget_ms: float) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now.

        ``budget_ms`` must be positive — a request that arrives already
        out of time should be rejected by the caller, not given a
        pre-expired deadline that every layer then trips over.
        """
        if budget_ms <= 0:
            raise ValueError("budget_ms must be positive")
        return cls(
            expires_at=time.monotonic() + budget_ms / 1000.0,
            total_ms=float(budget_ms),
        )

    def remaining(self) -> float:
        """Seconds until expiry; negative once the deadline has passed."""
        return self.expires_at - time.monotonic()

    def remaining_ms(self) -> float:
        """Milliseconds until expiry; negative once expired."""
        return self.remaining() * 1000.0

    @property
    def expired(self) -> bool:
        """Whether the expiry instant has passed."""
        return self.remaining() <= 0.0

    def spent_ms(self) -> float:
        """Milliseconds consumed so far out of ``total_ms``."""
        return self.total_ms - self.remaining_ms()

    def check(self, *, stage: str = "", tier: str = "") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` if expired.

        ``stage``/``tier`` annotate the error with where the expiry was
        observed; they carry no control-flow meaning.
        """
        remaining = self.remaining()
        if remaining <= 0.0:
            raise DeadlineExceeded(
                self.total_ms,
                self.total_ms - remaining * 1000.0,
                stage=stage,
                tier=tier,
            )

    def clamp(self, timeout: float | None) -> float:
        """The smaller of ``timeout`` and the time this deadline has left.

        Use to bound any blocking wait (queue get, condition wait) so it
        cannot outlive the request.  ``None`` means "no local timeout"
        and yields the deadline's remaining time.  Never negative: an
        expired deadline clamps to ``0.0`` (poll-and-fail, don't block).
        """
        remaining = max(self.remaining(), 0.0)
        if timeout is None:
            return remaining
        return min(timeout, remaining)
