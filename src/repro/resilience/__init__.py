"""Resilience primitives: deadlines, circuit breakers, retry policies.

This package is the serving stack's answer to partial failure under a
latency contract.  One :class:`Deadline` travels the whole request path
(admission → guard → fabric → kernel chunk loop), a
:class:`CircuitBreaker` per dependency stops throwing good traffic at a
failing tier or worker, and :class:`RetryPolicy`/:class:`TimeoutPolicy`
replace scattered ad-hoc retry/timeout knobs.  The chaos orchestrator
(:mod:`repro.testing.scenarios`, ``repro chaos``) exercises all of it
under scripted faults and asserts the invariants: never a wrong answer,
never a query wedged past its deadline, bounded recovery.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from repro.resilience.deadline import Deadline
from repro.resilience.policy import RetryPolicy, TimeoutPolicy

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "BreakerBoard",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "TimeoutPolicy",
]
