"""Page layouts: how record ids map onto disk pages.

A layout is a dict ``record_id -> page_no`` packing ``per_page`` records
per page.  Two strategies matter for the DG:

- :func:`row_order_layout` — the naive heap file: ids in arrival order.
- :func:`layer_clustered_layout` — the layout the DG suggests: each layer
  stored contiguously, top layers first.  The Traveler reads records in
  roughly layer order, so clustering layers turns its record accesses
  into sequential page hits; this is the storage-level payoff of the
  paper's θ = page/record reasoning.
"""

from __future__ import annotations

from repro.core.graph import DominantGraph


def row_order_layout(record_ids, per_page: int) -> dict:
    """Pack records into pages in id order (heap-file layout).

    Examples
    --------
    >>> row_order_layout([0, 1, 2, 3, 4], per_page=2)
    {0: 0, 1: 0, 2: 1, 3: 1, 4: 2}
    """
    if per_page < 1:
        raise ValueError("per_page must be at least 1")
    ordered = sorted(int(r) for r in record_ids)
    return {rid: index // per_page for index, rid in enumerate(ordered)}


def layer_clustered_layout(graph: DominantGraph, per_page: int) -> dict:
    """Pack records layer by layer (topmost first), ids sorted within.

    Pseudo records are skipped — they live in the index, not the record
    file.  Records of the graph's dataset that are not indexed (pending
    inserts) are appended after the indexed ones.
    """
    if per_page < 1:
        raise ValueError("per_page must be at least 1")
    ordered: list = []
    seen: set = set()
    for index in range(graph.num_layers):
        for rid in sorted(graph.layer(index)):
            if not graph.is_pseudo(rid):
                ordered.append(rid)
                seen.add(rid)
    for rid in range(len(graph.dataset)):
        if rid not in seen:
            ordered.append(rid)
    return {rid: index // per_page for index, rid in enumerate(ordered)}
