"""PagedDataset: a Dataset whose record fetches cost page I/Os.

Drop-in replacement for :class:`~repro.core.dataset.Dataset` at *query*
time: ``vector(record_id)`` first touches the record's page through the
buffer pool, then returns the values.  Index construction and other
offline bulk work should use the plain dataset (``.values`` access is
deliberately left un-instrumented — offline scans are sequential and not
what the paper's per-query cost model measures).
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.storage.buffer import BufferPool
from repro.storage.layout import row_order_layout

#: The paper's page size (matches repro.core.pseudo.DEFAULT_PAGE_BYTES).
DEFAULT_PAGE_BYTES = 4096


def records_per_page(dims: int, page_bytes: int = DEFAULT_PAGE_BYTES) -> int:
    """How many m-attribute records fit one page (8-byte values + id).

    This is exactly the paper's θ formula — the same constant governs the
    pseudo-level threshold and the physical page fan-out.

    >>> records_per_page(3)
    128
    """
    return max(1, page_bytes // (8 * (dims + 1)))


class PagedDataset(Dataset):
    """A dataset served from fixed-size pages behind an LRU buffer pool.

    Parameters
    ----------
    base:
        The in-memory dataset holding the actual values.
    layout:
        ``record_id -> page_no`` map (default: row order).  Every record
        of ``base`` must be mapped.
    pool_pages:
        Buffer-pool capacity in pages (default 8 — a small, honest cache).
    page_bytes:
        Page size used when deriving the default layout's fan-out.

    Examples
    --------
    >>> base = Dataset([[1.0, 2.0], [3.0, 4.0]])
    >>> paged = PagedDataset(base, pool_pages=1)
    >>> _ = paged.vector(0); _ = paged.vector(1)
    >>> paged.io_stats.misses   # both records share page 0
    1
    """

    def __init__(
        self,
        base: Dataset,
        layout: dict | None = None,
        pool_pages: int = 8,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> None:
        super().__init__(
            base.values,
            attribute_names=base.attribute_names,
            labels=base.labels,
        )
        if layout is None:
            layout = row_order_layout(
                range(len(base)), records_per_page(base.dims, page_bytes)
            )
        missing = [rid for rid in range(len(base)) if rid not in layout]
        if missing:
            raise ValueError(
                f"layout is missing {len(missing)} records (first: {missing[:3]})"
            )
        self._page_of = dict(layout)
        self._pool = BufferPool(pool_pages)

    @property
    def io_stats(self):
        """Buffer-pool statistics (hits / misses / evictions)."""
        return self._pool.stats

    @property
    def num_pages(self) -> int:
        return len(set(self._page_of.values()))

    def page_of(self, record_id: int) -> int:
        """Page number a record lives on."""
        return self._page_of[record_id]

    def vector(self, record_id: int) -> np.ndarray:
        """Fetch one record, charging its page to the buffer pool."""
        self._pool.access(self._page_of[record_id])
        return super().vector(record_id)

    def reset_io(self) -> None:
        """Clear the pool and zero the statistics (per-query measurement)."""
        self._pool.clear()
        self._pool.stats.reset()
