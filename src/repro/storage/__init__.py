"""Paged-storage substrate: record files, buffer pool, I/O accounting.

The paper's θ threshold is derived from disk-page geometry
(θ = page_bytes / record_bytes) but its evaluation counts records, not
pages.  This subpackage closes that loop: records live in fixed-size
pages behind an LRU buffer pool, every record fetch is charged to the
page it lives on, and the page *layout* is pluggable — so the I/O benefit
of storing DG layers contiguously (the layout the index naturally
suggests) is measurable against naive row order.
"""

from repro.storage.buffer import BufferPool
from repro.storage.layout import layer_clustered_layout, row_order_layout
from repro.storage.paged import PagedDataset, records_per_page

__all__ = [
    "BufferPool",
    "PagedDataset",
    "layer_clustered_layout",
    "records_per_page",
    "row_order_layout",
]
