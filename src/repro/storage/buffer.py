"""LRU buffer pool with hit/miss/eviction accounting.

Simulates the memory hierarchy the paper's θ analysis assumes: fetching a
record touches its page; pages already pooled are free (hit), others cost
one I/O (miss) and may evict the least-recently-used resident page.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class BufferStats:
    """Tally of page-level activity."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def io_count(self) -> int:
        """Pages read from "disk" (the paper's unit of physical cost)."""
        return self.misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset(self) -> None:
        """Zero every tally."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class BufferPool:
    """Fixed-capacity LRU page cache.

    Parameters
    ----------
    capacity:
        Number of resident pages; must be at least 1.

    Examples
    --------
    >>> pool = BufferPool(capacity=2)
    >>> [pool.access(p) for p in (1, 2, 1, 3)]
    [False, False, True, False]
    >>> (pool.stats.hits, pool.stats.misses, pool.stats.evictions)
    (1, 3, 1)
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("buffer pool capacity must be at least 1")
        self.capacity = capacity
        self._resident: OrderedDict = OrderedDict()
        self.stats = BufferStats()

    def access(self, page_no: int) -> bool:
        """Touch a page; returns True on a hit, False on a miss."""
        if page_no in self._resident:
            self._resident.move_to_end(page_no)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._resident) >= self.capacity:
            self._resident.popitem(last=False)
            self.stats.evictions += 1
        self._resident[page_no] = True
        return False

    def resident_pages(self) -> list:
        """Currently pooled page numbers, LRU first."""
        return list(self._resident)

    def clear(self) -> None:
        """Drop every resident page (stats are kept; reset separately)."""
        self._resident.clear()
