"""repro — Dominant Graph top-k indexing (ICDE 2008) reproduction.

Public API quick tour::

    from repro import Dataset, LinearFunction, build_extended_graph, AdvancedTraveler

    ds = Dataset(rows)                              # records, larger = better
    graph = build_extended_graph(ds)                # offline DG index
    result = AdvancedTraveler(graph).top_k(LinearFunction(weights), k=10)
    result.ids, result.scores, result.stats.computed

Subpackages
-----------
- :mod:`repro.core` — Dominant Graph, Traveler algorithms, maintenance.
- :mod:`repro.skyline` — seven skyline algorithms + cardinality estimators.
- :mod:`repro.spatial` — MBR / R-tree substrate.
- :mod:`repro.baselines` — TA, CA, NRA, ONION, AppRI, PREFER, LPTA,
  RankCube, naive scan.
- :mod:`repro.data` — the paper's synthetic workloads and the Server
  dataset stand-in.
- :mod:`repro.cluster` — K-Means (pseudo-record construction).
- :mod:`repro.metrics` — access counters and timing.
- :mod:`repro.bench` — experiment harness reproducing the paper's figures.
"""

from repro.core import (
    AdvancedTraveler,
    BasicTraveler,
    BudgetedAccessCounter,
    CompiledAdvancedTraveler,
    CompiledBasicTraveler,
    CompiledDG,
    Dataset,
    DecomposableFunction,
    DominantGraph,
    LinearFunction,
    MinFunction,
    NWayTraveler,
    ProductFunction,
    ScoringFunction,
    TopKResult,
    WeightedPowerFunction,
    build_dominant_graph,
    build_extended_graph,
    delete_many,
    delete_record,
    insert_many,
    insert_record,
    iter_ranked,
    load_graph,
    mark_deleted,
    repair_graph,
    run_query,
    save_graph,
    top_k_progressive,
)
from repro.errors import (
    DegradedResultWarning,
    IndexCorruptionError,
    QueryBudgetExceeded,
    ReproError,
    StaleSnapshotError,
)

__version__ = "1.0.0"

__all__ = [
    "AdvancedTraveler",
    "BasicTraveler",
    "BudgetedAccessCounter",
    "CompiledAdvancedTraveler",
    "CompiledBasicTraveler",
    "CompiledDG",
    "Dataset",
    "DecomposableFunction",
    "DegradedResultWarning",
    "DominantGraph",
    "IndexCorruptionError",
    "LinearFunction",
    "MinFunction",
    "NWayTraveler",
    "ProductFunction",
    "QueryBudgetExceeded",
    "ReproError",
    "ScoringFunction",
    "StaleSnapshotError",
    "TopKResult",
    "WeightedPowerFunction",
    "__version__",
    "build_dominant_graph",
    "build_extended_graph",
    "delete_many",
    "delete_record",
    "insert_many",
    "insert_record",
    "iter_ranked",
    "load_graph",
    "mark_deleted",
    "repair_graph",
    "run_query",
    "save_graph",
    "top_k_progressive",
]
