"""Synthetic stand-in for the paper's real "Server" dataset.

The paper extracts three numeric attributes from the KDD Cup 1999 network
connection data — ``count``, ``srv-count``, ``dest-host-count`` — with
attribute cardinalities 569, 1855 and 256, over 500K connection records.
The original file cannot be downloaded in this offline environment, so
:func:`server_dataset` synthesizes a dataset with the same shape:

- exactly the same per-attribute distinct-value cardinalities (clipped to
  the requested size),
- heavy-tailed integer counts (connection counters are bursty: most
  windows see a handful of connections, attack windows see hundreds),
- positive cross-attribute correlation (``srv-count`` counts a subset of
  the connections ``count`` does; per-destination counts rise with both),
- large duplicate groups, the property that actually stresses dominance-
  based indexes (many ties, shallow-but-wide layers).

See DESIGN.md ("Substitutions") for why this preserves the experiments'
behaviour: every algorithm under test consumes only the dominance/score
structure of three skewed, duplicated integer attributes.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset

#: Attribute cardinalities reported in the paper for (count, srv-count,
#: dest-host-count).
PAPER_CARDINALITIES = (569, 1855, 256)

ATTRIBUTE_NAMES = ("count", "srv-count", "dest-host-count")


def server_dataset(n: int = 5000, seed: int = 0) -> Dataset:
    """Synthetic Server dataset: n records, 3 skewed correlated attributes.

    Examples
    --------
    >>> ds = server_dataset(1000)
    >>> len(ds), ds.dims
    (1000, 3)
    >>> ds.attribute_names
    ('count', 'srv-count', 'dest-host-count')
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)

    # Latent burst intensity shared by all three counters (lognormal =>
    # heavy tail, like mixed normal traffic + flooding attacks).  The
    # latents stay continuous here; integer levels come from the
    # cardinality-exact quantization below (rounding first would collapse
    # the distinct-value counts far below the paper's cardinalities).
    intensity = rng.lognormal(mean=2.0, sigma=1.2, size=n)

    count = intensity * rng.uniform(0.5, 1.5, size=n)
    srv_count = count * rng.beta(a=5.0, b=2.0, size=n)
    dest_host = intensity * rng.uniform(0.2, 0.9, size=n)

    columns = [count, srv_count, dest_host]
    quantized = []
    for column, cardinality in zip(columns, PAPER_CARDINALITIES):
        cardinality = min(cardinality, n)
        quantized.append(_quantize_to_cardinality(column, cardinality))
    return Dataset(np.column_stack(quantized), attribute_names=ATTRIBUTE_NAMES)


def _quantize_to_cardinality(column: np.ndarray, cardinality: int) -> np.ndarray:
    """Map a column onto exactly ``cardinality`` distinct integer values.

    Values are binned by rank into ``cardinality`` quantile groups and each
    group is represented by an integer level, preserving order (and hence
    all dominance relationships the raw column implied, up to ties merging
    — which is precisely the duplicated-integer structure of the original
    data).
    """
    order = np.argsort(column, kind="stable")
    n = column.shape[0]
    levels = np.empty(n, dtype=np.float64)
    # Equal raw values must map to equal levels: bin by value quantile.
    ranks = np.empty(n, dtype=np.float64)
    ranks[order] = np.arange(n)
    raw_levels = np.floor(ranks * cardinality / n)
    # Merge bins that split a run of equal raw values.
    sorted_vals = column[order]
    sorted_levels = raw_levels[order]
    for i in range(1, n):
        if sorted_vals[i] == sorted_vals[i - 1]:
            sorted_levels[i] = sorted_levels[i - 1]
    levels[order] = sorted_levels
    # Re-number to consecutive integers so the distinct count is exact-ish.
    distinct = np.unique(levels)
    remap = {value: index for index, value in enumerate(distinct)}
    return np.asarray([remap[v] for v in levels], dtype=np.float64)
