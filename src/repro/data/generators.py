"""Synthetic workloads of the paper's evaluation (Section VI).

The paper uses three synthetic families, 1,000K records each:

- **Uniform** (``U_m``): every attribute i.i.d. uniform on [0, 1000]
  ("attribute values are uniformly distributed between 0 and 1000").
- **Gaussian** (``G_m``): mean 0.5 (of the range) and unit-scaled
  variance; we clip to the data range to keep values finite and positive.
- **Correlated** (``R_m``): "first generate a data set with uniform
  distribution in the dimension x1; then, for each value v in the
  dimension x1, we generate values in other m-1 dimensions by sampling a
  Gaussian distribution with mean v and fixed variance."

Experiment 4's *worst case* needs a dataset where **every record is a
skyline point** — :func:`all_skyline` places records on a simplex-like
anti-chain so no record dominates another.  :func:`anticorrelated` is the
standard hard-but-not-degenerate skyline workload, included for ablations.

All generators are deterministic in their ``seed`` and return
:class:`~repro.core.dataset.Dataset` objects scaled to [0, 1000] like the
paper's data.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset

#: The paper's attribute range.
RANGE = 1000.0


def make_dataset(kind: str, n: int, dims: int, seed: int = 0) -> Dataset:
    """Dispatch by the paper's dataset code: 'U', 'G', 'R', or 'worst'.

    >>> make_dataset("U", 10, 3).dims
    3
    """
    kind = kind.upper()
    if kind in ("U", "UNIFORM"):
        return uniform(n, dims, seed)
    if kind in ("G", "GAUSSIAN"):
        return gaussian(n, dims, seed)
    if kind in ("R", "CORRELATED"):
        return correlated(n, dims, seed)
    if kind in ("A", "ANTICORRELATED"):
        return anticorrelated(n, dims, seed)
    if kind in ("WORST", "ALL-SKYLINE"):
        return all_skyline(n, dims, seed)
    raise ValueError(f"unknown dataset kind: {kind!r}")


def uniform(n: int, dims: int, seed: int = 0) -> Dataset:
    """``U_m``: i.i.d. uniform attributes on [0, RANGE]."""
    _check(n, dims)
    rng = np.random.default_rng(seed)
    return Dataset(rng.uniform(0.0, RANGE, size=(n, dims)))


def gaussian(n: int, dims: int, seed: int = 0) -> Dataset:
    """``G_m``: i.i.d. Gaussian attributes centred mid-range, clipped."""
    _check(n, dims)
    rng = np.random.default_rng(seed)
    values = rng.normal(loc=0.5 * RANGE, scale=0.15 * RANGE, size=(n, dims))
    return Dataset(np.clip(values, 0.0, RANGE))


def correlated(n: int, dims: int, seed: int = 0, spread: float = 0.1) -> Dataset:
    """``R_m``: uniform x1; remaining dimensions Gaussian around x1.

    ``spread`` is the fixed standard deviation as a fraction of RANGE (the
    paper says "fixed variance" without a number; 0.1 gives visibly
    correlated but non-degenerate data).
    """
    _check(n, dims)
    rng = np.random.default_rng(seed)
    first = rng.uniform(0.0, RANGE, size=(n, 1))
    if dims == 1:
        return Dataset(first)
    rest = rng.normal(loc=first, scale=spread * RANGE, size=(n, dims - 1))
    return Dataset(np.clip(np.hstack([first, rest]), 0.0, RANGE))


def anticorrelated(n: int, dims: int, seed: int = 0, spread: float = 0.05) -> Dataset:
    """Anti-correlated data: points near the simplex sum(x) = RANGE.

    Standard hard workload for skyline-flavoured algorithms (large first
    layers without being fully degenerate).
    """
    _check(n, dims)
    rng = np.random.default_rng(seed)
    raw = rng.dirichlet(np.ones(dims), size=n) * RANGE * 0.5 * dims
    noise = rng.normal(scale=spread * RANGE, size=(n, dims))
    return Dataset(np.clip(raw + noise, 0.0, RANGE))


def all_skyline(n: int, dims: int, seed: int = 0) -> Dataset:
    """Worst case for DG: *every* record is a skyline point.

    Records are placed exactly on the hyperplane ``sum(x) = RANGE * dims /
    2``: if one record weakly dominated another with a strict inequality
    somewhere, its coordinate sum would be strictly larger — impossible on
    a constant-sum surface.  Hence no dominance exists at all and the DG
    degenerates to a single layer, which is the scenario Fig. 9(c,d) tests
    pseudo records against.
    """
    _check(n, dims)
    if dims < 2:
        raise ValueError("an anti-chain needs at least 2 dimensions")
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.ones(dims), size=n)
    values = weights * (RANGE * dims / 2.0)
    # Scale rows to the exact constant sum (dirichlet already sums to the
    # constant, up to floating error; renormalize to be safe).
    sums = values.sum(axis=1, keepdims=True)
    values = values * ((RANGE * dims / 2.0) / sums)
    return Dataset(values)


def _check(n: int, dims: int) -> None:
    if n <= 0:
        raise ValueError("n must be positive")
    if dims <= 0:
        raise ValueError("dims must be positive")
