"""Workload substrate: the paper's synthetic distributions and the Server
dataset stand-in (Section VI, "Data Sets")."""

from repro.data.generators import (
    all_skyline,
    anticorrelated,
    correlated,
    gaussian,
    make_dataset,
    uniform,
)
from repro.data.server import server_dataset

__all__ = [
    "all_skyline",
    "anticorrelated",
    "correlated",
    "gaussian",
    "make_dataset",
    "server_dataset",
    "uniform",
]
