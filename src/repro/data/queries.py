"""Query-workload generators: batches of linear preference functions.

The paper evaluates single canonical queries per figure; a robustness
check (and the view-based baselines' whole premise) needs *workloads* —
many preference vectors drawn from a model of user behaviour:

- :func:`random_queries` — Dirichlet-distributed weights; ``alpha`` < 1
  gives opinionated users (weight concentrated on few attributes),
  ``alpha`` > 1 gives balanced ones.
- :func:`clustered_queries` — users come in preference segments around a
  few prototype vectors (the setting PREFER's view selection targets).
"""

from __future__ import annotations

import numpy as np

from repro.core.functions import LinearFunction


def random_queries(
    dims: int, count: int, alpha: float = 1.0, seed: int = 0
) -> list:
    """``count`` Dirichlet(alpha) weight vectors as LinearFunctions.

    Examples
    --------
    >>> qs = random_queries(3, 5, seed=1)
    >>> len(qs), qs[0].dims
    (5, 3)
    >>> all(abs(sum(q.weights) - 1.0) < 1e-9 for q in qs)
    True
    """
    if dims < 1 or count < 1:
        raise ValueError("dims and count must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.full(dims, alpha), size=count)
    return [LinearFunction(w) for w in weights]


def clustered_queries(
    dims: int,
    count: int,
    n_clusters: int = 3,
    spread: float = 0.05,
    seed: int = 0,
) -> list:
    """Queries drawn around ``n_clusters`` random preference prototypes.

    Each query is a prototype plus Gaussian noise, re-normalized onto the
    weight simplex (negative components clipped).
    """
    if n_clusters < 1:
        raise ValueError("n_clusters must be positive")
    rng = np.random.default_rng(seed)
    prototypes = rng.dirichlet(np.ones(dims), size=n_clusters)
    queries = []
    for i in range(count):
        base = prototypes[i % n_clusters]
        noisy = np.clip(base + rng.normal(scale=spread, size=dims), 0.0, None)
        total = noisy.sum()
        if total <= 0:
            noisy = base.copy()
            total = noisy.sum()
        queries.append(LinearFunction(noisy / total))
    return queries
