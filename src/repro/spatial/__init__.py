"""Spatial indexing substrate: MBRs and an R-tree.

The NN and BBS skyline algorithms the paper cites ([11], [9]) are defined
over an R-tree; no spatial library is assumed, so this subpackage provides
a from-scratch implementation with Guttman quadratic-split insertion and
Sort-Tile-Recursive bulk loading.
"""

from repro.spatial.mbr import MBR
from repro.spatial.rtree import RTree, RTreeEntry, RTreeNode

__all__ = ["MBR", "RTree", "RTreeEntry", "RTreeNode"]
