"""Minimum bounding rectangles (hyper-rectangles) for the R-tree."""

from __future__ import annotations

import numpy as np


class MBR:
    """Axis-aligned minimum bounding rectangle in m dimensions.

    Immutable; all combination operations return new MBRs.

    Examples
    --------
    >>> a = MBR.from_point(np.array([1.0, 2.0]))
    >>> b = MBR(np.array([0.0, 0.0]), np.array([3.0, 1.0]))
    >>> a.union(b).upper.tolist()
    [3.0, 2.0]
    """

    __slots__ = ("lower", "upper")

    def __init__(self, lower: np.ndarray, upper: np.ndarray) -> None:
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ValueError("lower/upper must be matching 1-d arrays")
        if np.any(lower > upper):
            raise ValueError("MBR lower bound exceeds upper bound")
        self.lower = lower
        self.upper = upper

    @classmethod
    def from_point(cls, point: np.ndarray) -> "MBR":
        """Degenerate MBR covering a single point."""
        point = np.asarray(point, dtype=np.float64)
        return cls(point.copy(), point.copy())

    @classmethod
    def from_points(cls, points: np.ndarray) -> "MBR":
        """Tightest MBR covering a non-empty (n, m) point block."""
        points = np.asarray(points, dtype=np.float64)
        if points.size == 0:
            raise ValueError("cannot bound zero points")
        return cls(points.min(axis=0), points.max(axis=0))

    @property
    def dims(self) -> int:
        return self.lower.shape[0]

    def area(self) -> float:
        """Hyper-volume of the rectangle."""
        return float(np.prod(self.upper - self.lower))

    def margin(self) -> float:
        """Sum of edge lengths (split tie-breaking heuristic)."""
        return float(np.sum(self.upper - self.lower))

    def union(self, other: "MBR") -> "MBR":
        """Smallest MBR covering both rectangles."""
        return MBR(
            np.minimum(self.lower, other.lower),
            np.maximum(self.upper, other.upper),
        )

    def enlargement(self, other: "MBR") -> float:
        """Area growth needed to absorb ``other`` (Guttman's ChooseLeaf)."""
        return self.union(other).area() - self.area()

    def intersects(self, other: "MBR") -> bool:
        """True when the rectangles share any point."""
        return bool(
            np.all(self.lower <= other.upper) and np.all(other.lower <= self.upper)
        )

    def contains_point(self, point: np.ndarray) -> bool:
        """True when the point lies inside (boundary inclusive)."""
        return bool(np.all(self.lower <= point) and np.all(point <= self.upper))

    def min_distance_sq(self, point: np.ndarray) -> float:
        """Squared L2 MINDIST from a point to the rectangle (0 if inside)."""
        gap = np.maximum(self.lower - point, 0.0) + np.maximum(point - self.upper, 0.0)
        return float(np.dot(gap, gap))

    def min_l1_to_origin_after_shift(self, reference: np.ndarray) -> float:
        """L1 distance of the rectangle's best corner to ``reference``,
        where "best" means the corner closest to ``reference`` from below.

        BBS orders heap entries by the L1 MINDIST of an MBR to the origin
        of the (mirrored) preference space; with max-preference data the
        origin maps to the per-dimension maximum ``reference`` and the best
        corner of an MBR is its ``upper`` corner.
        """
        return float(np.sum(np.maximum(reference - self.upper, 0.0)))

    def __repr__(self) -> str:
        return f"MBR({self.lower.tolist()}, {self.upper.tolist()})"
