"""R-tree: Guttman quadratic-split insertion plus STR bulk loading.

This is the substrate for the NN and BBS skyline algorithms (paper refs
[11] and [9]).  Features implemented because those algorithms need them:

- point insertion (ChooseLeaf by least enlargement, quadratic split),
- Sort-Tile-Recursive bulk loading (how the benchmarks build trees fast),
- window (box) search,
- best-first nearest-neighbour search with MINDIST pruning,
- raw node/entry access so BBS can run its own best-first heap over the
  tree structure.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterator, Sequence

import numpy as np

from repro.spatial.mbr import MBR


class RTreeEntry:
    """One slot of a node: an MBR plus either a child node or a record id."""

    __slots__ = ("mbr", "child", "record_id")

    def __init__(
        self,
        mbr: MBR,
        child: "RTreeNode | None" = None,
        record_id: int | None = None,
    ) -> None:
        if (child is None) == (record_id is None):
            raise ValueError("entry needs exactly one of child / record_id")
        self.mbr = mbr
        self.child = child
        self.record_id = record_id

    @property
    def is_leaf_entry(self) -> bool:
        return self.record_id is not None


class RTreeNode:
    """A node holding between ``min_entries`` and ``max_entries`` entries."""

    __slots__ = ("entries", "leaf")

    def __init__(self, leaf: bool) -> None:
        self.entries: list = []
        self.leaf = leaf

    def mbr(self) -> MBR:
        """Tightest box covering every entry of this node."""
        box = self.entries[0].mbr
        for entry in self.entries[1:]:
            box = box.union(entry.mbr)
        return box


class RTree:
    """R-tree over m-dimensional points identified by integer record ids.

    Parameters
    ----------
    dims:
        Dimensionality of indexed points.
    max_entries / min_entries:
        Node fan-out bounds (Guttman's M and m; defaults 16 / 6).

    Examples
    --------
    >>> tree = RTree(dims=2)
    >>> for rid, point in enumerate([[0.0, 0.0], [1.0, 1.0], [2.0, 0.5]]):
    ...     tree.insert(rid, np.array(point))
    >>> tree.nearest(np.array([1.9, 0.4]))
    2
    """

    def __init__(self, dims: int, max_entries: int = 16, min_entries: int | None = None) -> None:
        if dims <= 0:
            raise ValueError("dims must be positive")
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.dims = dims
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(2, max_entries * 2 // 5)
        if self.min_entries * 2 > self.max_entries:
            raise ValueError("min_entries may be at most max_entries / 2")
        self.root = RTreeNode(leaf=True)
        self.size = 0

    # ------------------------------------------------------------------
    # Bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        points: np.ndarray,
        record_ids: Sequence[int] | None = None,
        max_entries: int = 16,
    ) -> "RTree":
        """Build a packed tree over ``points`` with the STR algorithm."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, m) array")
        n, dims = points.shape
        if record_ids is None:
            record_ids = range(n)
        ids = [int(r) for r in record_ids]
        if len(ids) != n:
            raise ValueError("record_ids length must match points")

        tree = cls(dims=dims, max_entries=max_entries)
        tree.size = n
        entries = [
            RTreeEntry(MBR.from_point(points[i]), record_id=ids[i]) for i in range(n)
        ]
        level_leaf = True
        while len(entries) > max_entries:
            entries = cls._str_pack(entries, max_entries, leaf=level_leaf)
            level_leaf = False
        root = RTreeNode(leaf=level_leaf)
        root.entries = entries
        tree.root = root
        return tree

    @staticmethod
    def _str_pack(entries: list, max_entries: int, leaf: bool) -> list:
        """One STR level: tile entries into nodes of ~max_entries each."""
        dims = entries[0].mbr.dims
        count = len(entries)
        node_count = math.ceil(count / max_entries)
        # Recursively tile: sort by successive center coordinates.
        def tile(block: list, dim: int) -> list:
            if dim >= dims - 1 or len(block) <= max_entries:
                block.sort(key=lambda e: float(e.mbr.lower[dim] + e.mbr.upper[dim]))
                return [
                    block[i: i + max_entries]
                    for i in range(0, len(block), max_entries)
                ]
            block.sort(key=lambda e: float(e.mbr.lower[dim] + e.mbr.upper[dim]))
            slabs = math.ceil(
                (len(block) / max_entries) ** (1.0 / (dims - dim))
            )
            slab_size = math.ceil(len(block) / slabs)
            groups: list = []
            for i in range(0, len(block), slab_size):
                groups.extend(tile(block[i: i + slab_size], dim + 1))
            return groups

        del node_count  # documented intent; tiling derives its own counts
        parents = []
        for group in tile(list(entries), 0):
            node = RTreeNode(leaf=leaf)
            node.entries = group
            parents.append(RTreeEntry(node.mbr(), child=node))
        return parents

    # ------------------------------------------------------------------
    # Insertion (Guttman)
    # ------------------------------------------------------------------
    def insert(self, record_id: int, point: np.ndarray) -> None:
        """Insert one point with ChooseLeaf + quadratic split."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dims,):
            raise ValueError(f"point must have shape ({self.dims},)")
        entry = RTreeEntry(MBR.from_point(point), record_id=int(record_id))
        split = self._insert_entry(self.root, entry)
        if split is not None:
            old_root = self.root
            self.root = RTreeNode(leaf=False)
            self.root.entries = [
                RTreeEntry(old_root.mbr(), child=old_root),
                RTreeEntry(split.mbr(), child=split),
            ]
        self.size += 1

    def _insert_entry(self, node: RTreeNode, entry: RTreeEntry) -> RTreeNode | None:
        """Recursive insert; returns a sibling node when ``node`` split."""
        if node.leaf:
            node.entries.append(entry)
        else:
            best = min(
                node.entries,
                key=lambda e: (e.mbr.enlargement(entry.mbr), e.mbr.area()),
            )
            split_child = self._insert_entry(best.child, entry)
            best.mbr = best.child.mbr()
            if split_child is not None:
                node.entries.append(RTreeEntry(split_child.mbr(), child=split_child))
        if len(node.entries) > self.max_entries:
            return self._quadratic_split(node)
        return None

    def _quadratic_split(self, node: RTreeNode) -> RTreeNode:
        """Guttman's quadratic split; mutates ``node``, returns new sibling."""
        entries = node.entries
        # PickSeeds: the pair wasting the most area together.
        worst = None
        seeds = (0, 1)
        for i, j in itertools.combinations(range(len(entries)), 2):
            waste = (
                entries[i].mbr.union(entries[j].mbr).area()
                - entries[i].mbr.area()
                - entries[j].mbr.area()
            )
            if worst is None or waste > worst:
                worst, seeds = waste, (i, j)

        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        box_a, box_b = group_a[0].mbr, group_b[0].mbr
        remaining = [e for idx, e in enumerate(entries) if idx not in seeds]

        while remaining:
            # Force-assign when one group must absorb the rest to stay legal.
            if len(group_a) + len(remaining) <= self.min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) <= self.min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            # PickNext: entry with the largest preference difference.
            def preference(e: RTreeEntry) -> float:
                return abs(box_a.enlargement(e.mbr) - box_b.enlargement(e.mbr))

            chosen = max(remaining, key=preference)
            remaining.remove(chosen)
            grow_a = box_a.enlargement(chosen.mbr)
            grow_b = box_b.enlargement(chosen.mbr)
            if (grow_a, box_a.area(), len(group_a)) <= (grow_b, box_b.area(), len(group_b)):
                group_a.append(chosen)
                box_a = box_a.union(chosen.mbr)
            else:
                group_b.append(chosen)
                box_b = box_b.union(chosen.mbr)

        node.entries = group_a
        sibling = RTreeNode(leaf=node.leaf)
        sibling.entries = group_b
        return sibling

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search_box(self, box: MBR) -> list:
        """Record ids of all points inside ``box`` (boundary inclusive)."""
        results: list = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if not box.intersects(entry.mbr):
                    continue
                if entry.is_leaf_entry:
                    results.append(entry.record_id)
                else:
                    stack.append(entry.child)
        return results

    def nearest(self, point: np.ndarray) -> int | None:
        """Record id of the L2-nearest point (best-first with MINDIST)."""
        for record_id, _ in self.nearest_iter(point):
            return record_id
        return None

    def nearest_iter(self, point: np.ndarray) -> Iterator:
        """Yield ``(record_id, distance_sq)`` in increasing L2 distance."""
        point = np.asarray(point, dtype=np.float64)
        if self.size == 0:
            return
        counter = itertools.count()
        heap: list = [(self.root.mbr().min_distance_sq(point), next(counter), None, self.root)]
        while heap:
            dist_sq, _, record_id, node = heapq.heappop(heap)
            if node is None:
                yield record_id, dist_sq
                continue
            for entry in node.entries:
                key = entry.mbr.min_distance_sq(point)
                if entry.is_leaf_entry:
                    heapq.heappush(heap, (key, next(counter), entry.record_id, None))
                else:
                    heapq.heappush(heap, (key, next(counter), None, entry.child))

    def __len__(self) -> int:
        return self.size

    def height(self) -> int:
        """Tree height (1 = a single leaf root)."""
        h, node = 1, self.root
        while not node.leaf:
            node = node.entries[0].child
            h += 1
        return h

    def validate(self) -> None:
        """Assert structural invariants (fan-out bounds, MBR containment)."""
        def check(node: RTreeNode, is_root: bool) -> None:
            if not is_root:
                assert len(node.entries) >= 1, "empty non-root node"
            assert len(node.entries) <= self.max_entries, "node overflow"
            for entry in node.entries:
                if node.leaf:
                    assert entry.is_leaf_entry, "non-point entry in leaf"
                else:
                    assert not entry.is_leaf_entry, "point entry in internal node"
                    child_box = entry.child.mbr()
                    assert np.all(entry.mbr.lower <= child_box.lower) and np.all(
                        child_box.upper <= entry.mbr.upper
                    ), "child MBR escapes parent entry"
                    check(entry.child, is_root=False)

        if self.size:
            check(self.root, is_root=True)
