"""Deterministic fault injectors: damaged archives and failing engines.

Two families of fault, matching the two trust boundaries the resilience
layer defends:

**Storage faults** operate on a saved ``.npz`` index file in place:
:func:`flip_bits` (bad storage), :func:`truncate_file` (crashed copy),
:func:`set_format_version` (stale/foreign build), and
:func:`tamper_array` (hand-edited or buggy-writer archive, optionally
re-signed so the damage gets past the checksum manifest and must be
caught by structural validation instead).

**Engine faults** operate on a live query: :class:`FlakyFunction` wraps
any scoring function and throws on a scripted schedule, so tests can
make exactly one serving tier fail mid-traversal and assert the guard
degrades to the next tier with identical answers.

Every injector is deterministic given its arguments — chaos tests must
reproduce, or they are worse than no tests.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from repro.core.functions import ScoringFunction
from repro.core.io import compute_manifest


def flip_bits(path: str, n: int = 1, seed: int = 0) -> list:
    """Flip ``n`` deterministically-random bits of a file, in place.

    Models bad storage / a bad NIC.  Returns the ``(byte_offset, bit)``
    pairs flipped so a failing test can report exactly what it damaged.
    """
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    if not data:
        raise ValueError(f"cannot flip bits of empty file {path!r}")
    rng = np.random.default_rng(seed)
    flips = []
    for _ in range(n):
        offset = int(rng.integers(0, len(data)))
        bit = int(rng.integers(0, 8))
        data[offset] ^= 1 << bit
        flips.append((offset, bit))
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    return flips


def truncate_file(path: str, keep: int | None = None, fraction: float = 0.5) -> int:
    """Truncate a file to ``keep`` bytes (default: ``fraction`` of its size).

    Models a crashed copy or a partially-synced download.  Returns the
    resulting size in bytes.
    """
    size = os.path.getsize(path)
    keep = int(size * fraction) if keep is None else int(keep)
    keep = max(0, min(keep, size))
    with open(path, "rb+") as handle:
        handle.truncate(keep)
    return keep


def store_crash_offsets(path: str) -> list:
    """Every store truncation point worth crashing at, ascending.

    Mirrors :func:`repro.testing.concurrency.crash_offsets` for ``.dgs``
    store files: a cut inside the fixed header, mid section table, the
    bare TOC (no payload), each section's first byte present, each
    section one byte short, each section boundary, and the whole file
    one byte short — the shapes an interrupted ``write`` (or a
    power-cut page cache) can leave behind.
    """
    from repro.store.format import read_toc

    info = read_toc(path)
    size = os.path.getsize(path)
    offsets = {0, 1, info.toc_bytes // 2, info.toc_bytes - 1, info.toc_bytes}
    for spec in info.sections:
        offsets.add(spec.offset)
        offsets.add(spec.offset + max(0, spec.nbytes - 1))
        offsets.add(spec.offset + spec.nbytes)
    offsets.add(size - 1)
    return sorted(offset for offset in offsets if 0 <= offset < size)


def _read_archive(path: str) -> dict:
    with np.load(path, allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files}


def tamper_array(
    path: str,
    key: str,
    mutate: Callable[[np.ndarray], np.ndarray] | np.ndarray,
    fix_manifest: bool = False,
) -> str:
    """Replace one array of a saved index archive, in place.

    ``mutate`` is either a replacement array or a callable receiving the
    current array and returning the replacement.  With the default
    ``fix_manifest=False`` the SHA-256 manifest is left stale, modelling
    plain corruption (the checksum check must catch it); with
    ``fix_manifest=True`` the manifest is recomputed over the tampered
    payload, modelling a consistent-but-wrong writer (structural
    validation must catch it instead).  Returns ``path``.
    """
    payload = _read_archive(path)
    current = payload.get(key)
    replacement = mutate(current) if callable(mutate) else mutate
    payload[key] = np.asarray(replacement)
    if fix_manifest:
        names, digests = compute_manifest(payload)
        payload["manifest_names"] = np.asarray(names, dtype=str)
        payload["manifest_sha256"] = np.asarray(digests, dtype=str)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **payload)
    return path


def set_format_version(path: str, version: int) -> str:
    """Stamp a saved archive with an arbitrary format version, in place.

    Models an archive produced by a newer (or prehistoric) build.  No
    re-signing is needed: ``format_version`` is deliberately outside the
    manifest so version negotiation runs before integrity checks.
    """
    return tamper_array(path, "format_version", np.asarray(int(version)))


class FlakyFunction:
    """A scoring function that fails on a schedule, then recovers.

    Wraps any :class:`~repro.core.functions.ScoringFunction` and raises
    ``RuntimeError("injected scoring fault")`` from the next ``times``
    scoring calls after the first ``after`` calls succeed.  With the
    defaults (``after=0, times=1``) the first tier to score anything dies
    and every later tier works — the minimal degradation scenario.  A
    positive ``after`` makes the failure strike *mid*-traversal, after
    the engine has already scored (and charged) some records.

    The schedule counts calls to either entry point, so it behaves the
    same for the batched compiled engine (``score_many``) and the
    record-at-a-time reference Travelers (``__call__``).
    """

    def __init__(self, inner: ScoringFunction, times: int = 1, after: int = 0) -> None:
        self.inner = inner
        self.failures_left = int(times)
        self.successes_before_failure = int(after)
        self.faults_raised = 0

    def _maybe_fail(self) -> None:
        if self.successes_before_failure > 0:
            self.successes_before_failure -= 1
            return
        if self.failures_left > 0:
            self.failures_left -= 1
            self.faults_raised += 1
            raise RuntimeError("injected scoring fault")

    def __call__(self, vector: np.ndarray) -> float:
        """Score one vector, or raise if a scripted fault is due."""
        self._maybe_fail()
        return self.inner(vector)

    def score_many(self, block: np.ndarray) -> np.ndarray:
        """Score a block, or raise if a scripted fault is due."""
        self._maybe_fail()
        return self.inner.score_many(block)

    def __repr__(self) -> str:
        return (
            f"FlakyFunction({self.inner!r}, failures_left={self.failures_left}, "
            f"after={self.successes_before_failure})"
        )
