"""Crash-recovery fuzz: kill the writer anywhere, recovery must be exact.

Each trial runs a randomized serving session — create a
:class:`~repro.serve.index.ServingIndex`, apply a random schedule of
inserts / deletes / mark-deleteds / batches, maybe checkpoint partway —
then simulates a crash by copying the serving directory with the WAL
truncated at a random byte offset (record boundaries *and* mid-record
cuts are both drawn).  The recovered index must:

1. pass :func:`repro.core.verify.verify_graph` (structural soundness),
2. answer top-k bit-identically — same ids, same float scores — to a
   from-scratch :func:`~repro.core.builder.build_dominant_graph` over
   the records that survive the surviving operations, for k in
   {1, 10, 50} over several random weight vectors.

"Surviving operations" are computed by replaying the truncated WAL's
intact records over the checkpoint with the same maintenance code — so
the oracle is sequential maintenance, and the comparison closes the
triangle sequential == checkpoint+replay == rebuild.

Any typed recovery error other than the tolerated torn-tail warning,
any verification issue, or any answer mismatch fails the trial.  Used
by the CI concurrency job::

    PYTHONPATH=src python -m repro.testing.crashfuzz --trials 25

Exit status 0 on success, 1 on any contract violation.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import warnings

import numpy as np

from repro.core.builder import build_dominant_graph
from repro.core.compiled import CompiledAdvancedTraveler
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.verify import format_issues, verify_graph
from repro.serve.index import ServingIndex
from repro.testing.concurrency import crash_offsets, crashed_copy

K_VALUES = (1, 10, 50)
WEIGHT_VECTORS = 5


def _random_session(index: ServingIndex, rng, pending: list, alive: set) -> None:
    """Apply a random maintenance schedule to a live serving index."""
    for _ in range(int(rng.integers(8, 25))):
        choice = rng.random()
        if choice < 0.40 and pending:
            rid = pending.pop()
            index.insert(rid)
            alive.add(rid)
        elif choice < 0.55 and len(pending) >= 3:
            batch = [pending.pop() for _ in range(3)]
            index.insert_many(batch)
            alive.update(batch)
        elif choice < 0.75 and len(alive) > 5:
            rid = int(rng.choice(sorted(alive)))
            index.delete(rid)
            alive.discard(rid)
        elif choice < 0.85 and len(alive) > 8:
            batch = [int(r) for r in rng.choice(sorted(alive), 2, replace=False)]
            index.delete_many(batch)
            alive.difference_update(batch)
        elif len(alive) > 5:
            rid = int(rng.choice(sorted(alive)))
            index.mark_deleted(rid)
            alive.discard(rid)
        if rng.random() < 0.08:
            index.checkpoint()


def crash_trial(trial: int, directory: str) -> str:
    """One randomized session + crash + recovery; returns an outcome label.

    Raises ``AssertionError`` on any contract violation.
    """
    rng = np.random.default_rng(trial)
    n = int(rng.integers(60, 120))
    dims = int(rng.integers(2, 5))
    dataset = Dataset(rng.random((n, dims)))
    start = list(range(n // 2))
    live_dir = os.path.join(directory, f"live-{trial}")

    graph = build_dominant_graph(dataset, record_ids=start)
    index = ServingIndex.create(
        live_dir, graph, fsync="batch", checkpoint_interval=None
    )
    pending = list(range(n // 2, n))
    alive = set(start)
    _random_session(index, rng, pending, alive)
    # The writer is now "killed": no close(), no final checkpoint.

    wal_path = os.path.join(live_dir, "wal.log")
    offsets = crash_offsets(wal_path)
    cut = int(rng.choice(offsets))
    crash_dir = crashed_copy(
        live_dir, os.path.join(directory, f"crash-{trial}"), cut
    )

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # torn-tail warnings are expected
        recovered = ServingIndex.open(crash_dir, checkpoint_interval=None)
    issues = verify_graph(recovered._graph)
    assert not issues, (
        f"trial {trial} cut={cut}: recovered graph fails verification: "
        f"{format_issues(issues)}"
    )

    # Oracle: rebuild from scratch over the records the recovered index
    # says survive.  Bit-identical answers close the loop — recovery is
    # not merely "valid", it is *the* index the surviving operations
    # produce.
    snapshot = recovered.snapshot().compiled
    survivors = sorted(
        int(rid)
        for rid in snapshot.record_ids[~snapshot.pseudo_mask].tolist()
    )
    rebuilt = build_dominant_graph(dataset, record_ids=survivors)
    rebuilt_queries = CompiledAdvancedTraveler(rebuilt.compile())
    for q in range(WEIGHT_VECTORS):
        weights = rng.random(dims) + 0.05
        function = LinearFunction(weights)
        for k in K_VALUES:
            want = rebuilt_queries.top_k(function, min(k, max(len(survivors), 1)))
            got = recovered.query(function, min(k, max(len(survivors), 1)))
            assert got.ids == want.ids and got.scores == want.scores, (
                f"trial {trial} cut={cut} k={k} q={q}: recovered answers "
                f"diverge from rebuild ({got.ids} vs {want.ids})"
            )
    recovered.close(checkpoint=False)
    index.close(checkpoint=False)
    boundary = cut in _record_boundaries(wal_path)
    return "clean-cut" if boundary else "torn-tail"


def _record_boundaries(wal_path: str) -> set:
    from repro.serve.wal import FRAME_HEADER_SIZE, HEADER_SIZE, scan_wal
    import struct

    boundaries = {HEADER_SIZE}
    offset = HEADER_SIZE
    with open(wal_path, "rb") as handle:
        data = handle.read()
    for _ in scan_wal(wal_path).records:
        length = struct.unpack_from("<I", data, offset + 12)[0]
        offset += FRAME_HEADER_SIZE + length
        boundaries.add(offset)
    return boundaries


def main(argv=None) -> int:
    """CLI entry point: run ``--trials`` crash trials, exit 1 on failure."""
    parser = argparse.ArgumentParser(
        description="crash-recovery fuzz for the serving layer"
    )
    parser.add_argument("--trials", type=int, default=25)
    parser.add_argument("--seed", type=int, default=0,
                        help="offset added to each trial's seed")
    args = parser.parse_args(argv)

    outcomes: dict = {}
    failures = 0
    with tempfile.TemporaryDirectory() as directory:
        for trial in range(args.trials):
            try:
                label = crash_trial(args.seed + trial, directory)
                outcomes[label] = outcomes.get(label, 0) + 1
            except AssertionError as exc:
                failures += 1
                print(f"FAIL trial {trial}: {exc}", file=sys.stderr)
            except Exception as exc:  # repro: noqa[typed-errors] -- an untyped escape is exactly what this harness reports; it must catch everything
                failures += 1
                print(
                    f"FAIL trial {trial}: untyped {type(exc).__name__}: {exc}",
                    file=sys.stderr,
                )
    total = args.trials
    summary = ", ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
    print(f"crashfuzz: {total - failures}/{total} trials ok ({summary})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
