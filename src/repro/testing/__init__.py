"""Fault-injection utilities for the chaos test-suite.

Everything here exists to *break* the index on purpose — flip bits in
archives, truncate files, forge format versions, make scoring functions
throw mid-traversal — so the tests can assert the resilience contract:
every fault is repaired, degraded around, or surfaced as a typed error,
never a silent wrong answer.

- :mod:`repro.testing.faults` — file corrupters and flaky functions.
- :mod:`repro.testing.fuzz` — round-trip fuzz CLI used by the CI chaos
  job (``python -m repro.testing.fuzz``).
- :mod:`repro.testing.concurrency` — deterministic interleaving and
  simulated-crash harness for the serving layer.
- :mod:`repro.testing.crashfuzz` — kill-the-writer-anywhere recovery
  fuzz CLI used by the CI concurrency job
  (``python -m repro.testing.crashfuzz``).
- :mod:`repro.testing.scenarios` — the chaos control plane: scripted
  fault schedules (hung workers, SIGKILL storms, shm tampering, fsync
  failure) run against a live serving index, asserting the end-to-end
  resilience invariants (``repro chaos``).
"""

from repro.testing.concurrency import (
    Rendezvous,
    crash_offsets,
    crashed_copy,
    run_threads,
)
from repro.testing.faults import (
    FlakyFunction,
    flip_bits,
    set_format_version,
    store_crash_offsets,
    tamper_array,
    truncate_file,
)
from repro.testing.scenarios import (
    SCENARIOS,
    ChaosConfig,
    ChaosContext,
    ScenarioReport,
    run_scenario,
    run_suite,
)

__all__ = [
    "SCENARIOS",
    "ChaosConfig",
    "ChaosContext",
    "FlakyFunction",
    "Rendezvous",
    "ScenarioReport",
    "crash_offsets",
    "crashed_copy",
    "flip_bits",
    "run_scenario",
    "run_suite",
    "run_threads",
    "set_format_version",
    "store_crash_offsets",
    "tamper_array",
    "truncate_file",
]
