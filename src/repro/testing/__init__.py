"""Fault-injection utilities for the chaos test-suite.

Everything here exists to *break* the index on purpose — flip bits in
archives, truncate files, forge format versions, make scoring functions
throw mid-traversal — so the tests can assert the resilience contract:
every fault is repaired, degraded around, or surfaced as a typed error,
never a silent wrong answer.

- :mod:`repro.testing.faults` — file corrupters and flaky functions.
- :mod:`repro.testing.fuzz` — round-trip fuzz CLI used by the CI chaos
  job (``python -m repro.testing.fuzz``).
"""

from repro.testing.faults import (
    FlakyFunction,
    flip_bits,
    set_format_version,
    tamper_array,
    truncate_file,
)

__all__ = [
    "FlakyFunction",
    "flip_bits",
    "set_format_version",
    "tamper_array",
    "truncate_file",
]
