"""Round-trip corruption fuzz: save -> flip bits -> load must stay honest.

Each trial builds a random Extended DG, saves it, flips a handful of
random bytes in the archive, and reloads.  The resilience contract under
test: the load either

- raises a typed :class:`~repro.errors.IndexCorruptionError` (in which
  case :func:`~repro.core.io.repair_graph` must either rebuild a
  structurally valid graph or itself raise the typed error), or
- succeeds with answers bit-identical to the pre-corruption oracle
  (the flips landed somewhere harmless).

Anything else — an untyped exception leaking out of the loader, or a
load that "succeeds" with different answers — is a silent-failure bug
and fails the run.  Used by the CI chaos job::

    PYTHONPATH=src python -m repro.testing.fuzz --trials 25

Exit status 0 on success, 1 on any contract violation.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

import numpy as np

from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_extended_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.io import load_graph, repair_graph, save_graph
from repro.errors import IndexCorruptionError
from repro.testing.faults import flip_bits

#: Outcomes that satisfy the resilience contract.
GOOD_OUTCOMES = ("detected", "detected+repaired", "detected+unrepairable", "survived")


def _signature(result) -> tuple:
    """Tie-insensitive answer signature: the sorted score multiset."""
    return tuple(sorted(round(float(s), 9) for s in result.scores))


def fuzz_trial(trial: int, directory: str, flips: int) -> str:
    """Run one save/corrupt/load round-trip; return the outcome label."""
    rng = np.random.default_rng(trial)
    n = int(rng.integers(20, 60))
    dataset = Dataset(rng.random((n, 3)))
    graph = build_extended_graph(dataset)
    function = LinearFunction(rng.random(3) + 0.05)
    k = int(rng.integers(1, 8))
    oracle = _signature(AdvancedTraveler(graph).top_k(function, k))

    path = save_graph(graph, os.path.join(directory, f"graph-{trial}"))
    flip_bits(path, n=flips, seed=trial)
    try:
        reloaded = load_graph(path)
    except IndexCorruptionError:
        try:
            repaired, _notes = repair_graph(path)
        except IndexCorruptionError:
            return "detected+unrepairable"
        except Exception as exc:  # repro: noqa[typed-errors] -- the fuzzer exists to detect untyped escapes from repair; it must catch them all
            return f"repair-untyped-error:{type(exc).__name__}"
        try:
            repaired.validate()
        except AssertionError:
            return "repair-produced-invalid-graph"
        return "detected+repaired"
    except Exception as exc:  # repro: noqa[typed-errors] -- the fuzzer exists to detect untyped escapes from load; it must catch them all
        return f"load-untyped-error:{type(exc).__name__}"
    answer = _signature(AdvancedTraveler(reloaded).top_k(function, k))
    if answer != oracle:
        return "silent-wrong-answer"
    return "survived"


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--trials", type=int, default=25, help="round-trips to run")
    parser.add_argument(
        "--flips", type=int, default=4, help="random bit flips per trial"
    )
    args = parser.parse_args(argv)

    counts: dict = {}
    with tempfile.TemporaryDirectory() as directory:
        for trial in range(args.trials):
            outcome = fuzz_trial(trial, directory, args.flips)
            counts[outcome] = counts.get(outcome, 0) + 1
    for outcome in sorted(counts):
        print(f"{outcome}: {counts[outcome]}")
    violations = sum(
        count for outcome, count in counts.items() if outcome not in GOOD_OUTCOMES
    )
    if violations:
        print(f"FUZZ FAILED: {violations} contract violation(s)")
        return 1
    print(f"fuzz OK: {args.trials} trials, no silent failures")
    return 0


if __name__ == "__main__":
    sys.exit(main())
