"""Deterministic concurrency + crash harness for the serving layer.

Concurrency tests are worthless when they only fail sometimes.  This
module gives the serve test-suites two deterministic instruments:

**Scripted interleavings.**  :func:`run_threads` runs callables on real
threads but re-raises the first failure in the caller (a swallowed
assertion in a worker thread is how concurrency bugs hide), and
:class:`Rendezvous` is a two-phase handshake that parks a thread at a
named point until the orchestrating test releases it.  Planting a
rendezvous inside a query's ``where=`` predicate freezes a reader
mid-traversal, deterministically, while the test mutates the index
around it — which is exactly the "reader during an active maintenance
batch" window the snapshot-isolation contract is about.

**Simulated crashes.**  A process kill leaves the serving directory
with a possibly-torn WAL.  :func:`crashed_copy` reproduces any such
state exactly: it copies a live serving directory with the WAL
truncated at a chosen byte offset, and :func:`crash_offsets` enumerates
every interesting offset — each record boundary plus points *inside*
each frame (mid-header, mid-payload, one byte short).  Recovering every
copy and comparing against a from-scratch rebuild is the crash-recovery
acceptance test, and :mod:`repro.testing.crashfuzz` runs randomized
trials of the same shape in CI.
"""

from __future__ import annotations

import os
import shutil
import struct
import threading

from repro.serve.wal import FRAME_HEADER_SIZE, HEADER_SIZE, scan_wal


# ----------------------------------------------------------------------
# Scripted interleavings
# ----------------------------------------------------------------------
def run_threads(*targets, timeout: float = 30.0) -> list:
    """Run callables on parallel threads; re-raise the first failure.

    Returns each callable's return value, in argument order.  A thread
    still alive after ``timeout`` seconds is a deadlocked interleaving
    and fails the test rather than hanging the suite.
    """
    results = [None] * len(targets)
    failures: list = []
    lock = threading.Lock()

    def runner(index: int, fn) -> None:
        try:
            results[index] = fn()
        except BaseException as exc:  # repro: noqa[typed-errors] -- the harness must carry any failure (including SystemExit) across the thread boundary
            with lock:
                failures.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i, fn), daemon=True)
        for i, fn in enumerate(targets)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
        if thread.is_alive():
            raise TimeoutError(
                f"thread did not finish within {timeout}s "
                "(deadlocked interleaving?)"
            )
    if failures:
        raise failures[0]
    return results


class Rendezvous:
    """A named two-phase handshake between a worker and the test.

    The worker calls :meth:`arrive` (typically from inside a ``where=``
    predicate or a wrapped scoring function) and blocks; the test sees
    it arrive via :meth:`wait_arrived`, performs its mid-window actions,
    then :meth:`release`\\ s the worker.  ``arrive`` only blocks the
    first time unless ``once=False``, so predicates that fire per record
    pause once, not per row.
    """

    def __init__(self, once: bool = True) -> None:
        self._arrived = threading.Event()
        self._released = threading.Event()
        self._once = once
        self._fired = False
        self._lock = threading.Lock()

    def arrive(self, timeout: float = 30.0) -> None:
        """Signal arrival and block until released (worker side)."""
        with self._lock:
            if self._once and self._fired:
                return
            self._fired = True
        self._arrived.set()
        if not self._released.wait(timeout):
            raise TimeoutError("rendezvous was never released")

    def wait_arrived(self, timeout: float = 30.0) -> None:
        """Block until the worker is parked (test side)."""
        if not self._arrived.wait(timeout):
            raise TimeoutError("worker never arrived at the rendezvous")

    def release(self) -> None:
        """Let the parked worker continue (test side)."""
        self._released.set()


# ----------------------------------------------------------------------
# Simulated crashes
# ----------------------------------------------------------------------
def crash_offsets(wal_path: str) -> list:
    """Every WAL truncation point worth crashing at, in ascending order.

    Includes the bare header (all appends lost), every record boundary
    (clean kills), and for every record a cut mid-frame-header, one just
    past the frame header (zero payload bytes), and one a single byte
    short of complete — the torn-tail shapes an interrupted ``write``
    can leave.
    """
    scan = scan_wal(wal_path)
    size = os.path.getsize(wal_path)
    boundaries = [HEADER_SIZE]
    offset = HEADER_SIZE
    for _seq, _op in scan.records:
        # Reconstruct each frame's extent from the scan by re-reading
        # the length field.
        with open(wal_path, "rb") as handle:
            handle.seek(offset + 12)  # magic(4) + seq(8)
            length = struct.unpack("<I", handle.read(4))[0]
        record_end = offset + FRAME_HEADER_SIZE + length
        boundaries.extend(
            [
                offset + FRAME_HEADER_SIZE // 2,  # mid frame header
                offset + FRAME_HEADER_SIZE,       # header only, no payload
                record_end - 1,                   # one byte short
                record_end,                       # clean boundary
            ]
        )
        offset = record_end
    return sorted({b for b in boundaries if b <= size})


def crashed_copy(src_dir: str, dst_dir: str, wal_bytes: int) -> str:
    """Copy a serving directory as a crash at ``wal_bytes`` would leave it.

    Everything is copied verbatim except the WAL, which is truncated to
    ``wal_bytes`` — the on-disk state of a writer killed mid-append.
    Returns ``dst_dir`` for chaining into ``ServingIndex.open``.
    """
    from repro.serve.index import WAL_NAME

    os.makedirs(dst_dir, exist_ok=True)
    for name in os.listdir(src_dir):
        src = os.path.join(src_dir, name)
        if not os.path.isfile(src):
            continue
        shutil.copy2(src, os.path.join(dst_dir, name))
    wal = os.path.join(dst_dir, WAL_NAME)
    with open(wal, "rb+") as handle:
        handle.truncate(wal_bytes)
    return dst_dir
