"""Chaos control plane: scripted fault schedules against a live index.

Each scenario boots a real :class:`~repro.serve.index.ServingIndex`
(fabric workers, WAL, cache disabled so every query exercises the
engine), then runs a deterministic schedule of faults — stopped workers,
SIGKILL storms, unlinked shared-memory segments, failing ``fsync`` —
interleaved with query rounds and writer mutations.  Three invariants
are asserted over every round:

1. **Never a wrong answer.**  Every result is compared bit-for-bit
   against a :func:`~repro.serve.index.snapshot_scan` oracle of the
   snapshot *matching the result's epoch*; a typed
   :class:`~repro.errors.DeadlineExceeded` or a degraded-tier answer is
   acceptable, a silently different answer never is.
2. **Never a wedged query.**  Every call returns (answer or typed
   error) within the request deadline plus a scheduling grace; a query
   blocked past that is the hung-fabric bug this layer exists to kill.
3. **Bounded recovery.**  After the fault clears, the index must return
   to undegraded (``tier == "compiled"``) service within the recovery
   limit; the measured time is the scenario's MTTR.

``repro chaos`` runs the registry and emits ``BENCH_resilience.json``
(availability, p99-under-fault, recovery time per fault).  The same
scenarios back the regression tests in ``tests/test_chaos_scenarios.py``.
"""

from __future__ import annotations

import os
import signal
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    ParallelExecutionError,
    QueryBudgetExceeded,
    ServiceUnavailable,
)
from repro.resilience.policy import TimeoutPolicy
from repro.serve.index import ServingIndex, snapshot_scan


@dataclass
class ChaosConfig:
    """Knobs for one scenario run; defaults sized for CI (seconds each)."""

    records: int = 500
    dims: int = 3
    k: int = 10
    workers: int = 2
    deadline_ms: float = 1500.0
    grace_ms: float = 2000.0
    reply_timeout: float = 0.3
    rounds: int = 6
    batch: int = 4
    recovery_limit_ms: float = 15000.0


@dataclass
class ScenarioReport:
    """Outcome tallies, invariant verdicts, and the event log of one run."""

    name: str
    seed: int
    queries: int = 0
    ok: int = 0
    degraded: int = 0
    deadline_exceeded: int = 0
    unavailable: int = 0
    wrong: int = 0
    overruns: int = 0
    latencies_ms: list = field(default_factory=list)
    recovery_ms: "float | None" = None
    events: list = field(default_factory=list)
    recovery_limit_ms: float = 15000.0

    @property
    def availability(self) -> float:
        """Fraction of queries that returned a correct answer (any tier)."""
        if not self.queries:
            return 1.0
        return (self.ok + self.degraded) / self.queries

    @property
    def p99_ms(self) -> float:
        """99th-percentile latency across every call made under fault."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        return float(ordered[int(0.99 * (len(ordered) - 1))])

    def invariants(self) -> dict:
        """The three resilience invariants, each as a named verdict."""
        return {
            "never_wrong": self.wrong == 0,
            "never_wedged_past_deadline": self.overruns == 0,
            "bounded_recovery": (
                self.recovery_ms is not None
                and self.recovery_ms <= self.recovery_limit_ms
            ),
        }

    @property
    def passed(self) -> bool:
        """Whether every invariant held."""
        return all(self.invariants().values())

    def to_dict(self) -> dict:
        """JSON-ready form for ``BENCH_resilience.json``."""
        return {
            "name": self.name,
            "seed": self.seed,
            "queries": self.queries,
            "ok": self.ok,
            "degraded": self.degraded,
            "deadline_exceeded": self.deadline_exceeded,
            "unavailable": self.unavailable,
            "wrong": self.wrong,
            "overruns": self.overruns,
            "availability": round(self.availability, 4),
            "p99_ms": round(self.p99_ms, 2),
            "recovery_ms": (
                None if self.recovery_ms is None else round(self.recovery_ms, 2)
            ),
            "invariants": self.invariants(),
            "passed": self.passed,
            "events": list(self.events),
        }


class ChaosContext:
    """One scenario's live index plus fault and verification helpers.

    The context owns the oracle: an epoch-keyed map of every snapshot
    the index has published, so a result can always be checked against
    the exact index state it claims to have been computed from — even
    when a publish raced the query mid-flight.
    """

    def __init__(
        self,
        name: str,
        seed: int,
        config: ChaosConfig,
        directory: str,
    ) -> None:
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.report = ScenarioReport(
            name=name, seed=seed, recovery_limit_ms=config.recovery_limit_ms
        )
        self.directory = directory
        values = self.rng.uniform(0.0, 100.0, (config.records, config.dims))
        self.dataset = Dataset(values.tolist())
        self.index = self._boot(create=True)
        self.oracle: dict = {}
        self._register_epoch()
        self._deleted: list = []
        self._started = time.monotonic()

    # -- lifecycle -----------------------------------------------------

    def _boot(self, create: bool = False) -> ServingIndex:
        kwargs = dict(
            workers=self.config.workers,
            cache_size=0,
            timeout_policy=TimeoutPolicy(
                default_deadline_ms=self.config.deadline_ms,
                reply_timeout=self.config.reply_timeout,
            ),
        )
        if create:
            return ServingIndex.create(self.directory, self.dataset, **kwargs)
        return ServingIndex.open(self.directory, **kwargs)

    def reopen(self) -> float:
        """Close and recover the index; returns the reopen time in ms.

        Used by scenarios whose fault poisons the writer: restart-with-
        recovery is the documented repair, and its duration is the MTTR.
        """
        started = time.monotonic()
        self.index.close(checkpoint=False)
        self.index = self._boot(create=False)
        self.oracle.clear()
        self._register_epoch()
        elapsed_ms = 1000.0 * (time.monotonic() - started)
        self.log(f"reopened index in {elapsed_ms:.0f} ms")
        return elapsed_ms

    def close(self) -> None:
        """Tear the index down (idempotent; scenario runner calls it)."""
        try:
            self.index.close(checkpoint=False)
        except Exception:  # repro: noqa[typed-errors] -- teardown after a chaos schedule must not mask the scenario verdict, whatever state the index was left in
            pass

    def log(self, message: str) -> None:
        """Append a timestamped line to the scenario's event log."""
        offset = time.monotonic() - getattr(self, "_started", time.monotonic())
        self.report.events.append(f"+{offset:6.2f}s {message}")

    # -- oracle --------------------------------------------------------

    def _register_epoch(self) -> None:
        # The whole snapshot, not just its base: with the overlay
        # enabled an epoch's answers come from base+delta.  A compaction
        # republishes under the *same* epoch with content-identical
        # answers, so entries never go stale.
        snap = self.index.snapshot()
        self.oracle[snap.epoch] = snap

    def expected(self, function: LinearFunction, epoch: int) -> "tuple | None":
        """Oracle answer ``(ids, scores)`` for ``function`` at ``epoch``."""
        snap = self.oracle.get(epoch)
        if snap is None:
            return None
        result = snapshot_scan(
            snap.compiled, function, self.config.k, overlay=snap.overlay
        )
        return result.ids, result.scores

    # -- faults --------------------------------------------------------

    def worker_pids(self) -> list:
        """Live fabric worker PIDs, slot order (private-API reach-in)."""
        fabric = self.index._fabric
        if fabric is None:
            return []
        return [slot.process.pid for slot in fabric._slots]

    def _signal_worker(self, slot: int, signum: int, label: str) -> None:
        pids = self.worker_pids()
        if not pids:
            return
        pid = pids[slot % len(pids)]
        try:
            os.kill(pid, signum)
            self.log(f"{label} worker slot {slot} (pid {pid})")
        except ProcessLookupError:
            self.log(f"{label} worker slot {slot}: already gone")

    def stop_worker(self, slot: int) -> None:
        """SIGSTOP a fabric worker: alive for ``is_alive()``, silent forever."""
        self._signal_worker(slot, signal.SIGSTOP, "SIGSTOP")

    def cont_worker(self, slot: int) -> None:
        """SIGCONT a previously stopped worker (no-op if it was killed)."""
        self._signal_worker(slot, signal.SIGCONT, "SIGCONT")

    def kill_worker(self, slot: int) -> None:
        """SIGKILL a fabric worker outright."""
        self._signal_worker(slot, signal.SIGKILL, "SIGKILL")

    def unlink_segments(self) -> int:
        """Unlink the current snapshot's backing name (mappings live on).

        Dispatches on the fabric's transport: a shared-memory handle
        names a ``/dev/shm`` segment, a store handle names a spool file.
        Either way POSIX keeps existing mappings valid — only *new*
        attaches (worker respawns) see the missing name.
        """
        fabric = self.index._fabric
        if fabric is None:
            return 0
        handle = fabric._shared.handle
        segment = getattr(handle, "segment", None)
        if segment is not None:
            path = os.path.join("/dev/shm", segment)
        else:
            path = handle.path
        name = os.path.basename(path)
        try:
            os.unlink(path)
            self.log(f"unlinked snapshot backing {name}")
            return 1
        except FileNotFoundError:
            self.log(f"snapshot backing {name} already gone")
            return 0

    def _spool(self) -> "object | None":
        """The fabric's store-file spool (None on shm transport)."""
        fabric = self.index._fabric
        if fabric is None:
            return None
        return getattr(fabric, "_spool", None)

    def tamper_store_toc(self) -> "str | None":
        """Flip one TOC byte of the live spool generation on disk.

        The payload sections are untouched, so workers already mapping
        the file keep answering correctly — the TOC is only read at
        open time.  The damage surfaces at the *next* attach, where
        fast verification rejects the whole file (quarantine-not-serve)
        instead of mapping unverifiable bytes.
        """
        from repro.store.format import read_toc

        spool = self._spool()
        if spool is None:
            return None
        current = spool.read_current()
        if current is None:
            return None
        path, generation = current
        info = read_toc(path)
        offset = info.toc_bytes - 1  # last byte of the header digest
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
            handle.flush()
        self.log(
            f"flipped TOC byte at offset {offset} of generation "
            f"{generation}"
        )
        return path

    def plant_torn_publish(self) -> "tuple | None":
        """Leave the debris of a publish killed mid-write in the spool.

        Two artifacts, matching the two windows a ``durable=False``
        publish can die in: a stray ``.tmp.*`` file (killed during the
        serialize/write), and a torn next-generation store file (killed
        after the rename but before the page cache reached disk).
        ``CURRENT`` still names the intact generation, so nothing serves
        the debris; the next real publish must ride over it and the
        orphan collector must remove it.
        """
        spool = self._spool()
        if spool is None:
            return None
        current = spool.read_current()
        if current is None:
            return None
        path, generation = current
        with open(path, "rb") as handle:
            image = handle.read()
        torn = spool.path_for(generation + 1)
        with open(torn, "wb") as handle:
            handle.write(image[: max(1, len(image) // 2)])
        stray = f"{spool.path_for(generation + 2)}.tmp.999"
        with open(stray, "wb") as handle:
            handle.write(image[:64])
        self.log(
            f"planted torn generation {generation + 1} and stray temp "
            f"in the spool"
        )
        return torn, stray

    def mutate(self) -> None:
        """One writer operation (delete, or re-insert) → one publish.

        Scenarios use mutations to heal the fabric pool (\"the next
        publish writes a clean generation\"), but the O(changes) publish
        path deliberately does *not* republish workers — that happens at
        compaction.  So each chaos mutation is followed by a synchronous
        fold, which republishes the fabric under the same epoch and
        keeps every heal-by-publish scenario exercising the exact
        sequence production would: delta publish, then compaction.
        """
        if self._deleted and self.rng.random() < 0.5:
            rid = self._deleted.pop(0)
            self.index.insert(rid)
            self.log(f"insert({rid}) published epoch {self.index.epoch}")
        else:
            alive = self.index.snapshot().alive_ids().tolist()
            rid = int(alive[int(self.rng.integers(0, len(alive)))])
            self.index.delete(rid)
            self._deleted.append(rid)
            self.log(f"delete({rid}) published epoch {self.index.epoch}")
        if self.index.compact():
            self.log(f"compacted overlay at epoch {self.index.epoch}")
        self._register_epoch()

    # -- query rounds --------------------------------------------------

    def _functions(self, count: int) -> list:
        weights = self.rng.uniform(0.1, 1.0, (count, self.config.dims))
        return [LinearFunction(w.tolist()) for w in weights]

    def query_round(self, batches: "int | None" = None) -> None:
        """Issue query batches under deadline; classify and oracle-check."""
        config = self.config
        for _ in range(batches if batches is not None else 1):
            functions = self._functions(config.batch)
            started = time.monotonic()
            outcome = "ok"
            results = []
            try:
                results = self.index.query_batch(
                    functions, config.k, deadline_ms=config.deadline_ms
                )
            except DeadlineExceeded:
                outcome = "deadline"
            except (QueryBudgetExceeded, CircuitOpenError):
                outcome = "deadline"
            except (ServiceUnavailable, ParallelExecutionError):
                outcome = "unavailable"
            except Exception as exc:  # repro: noqa[typed-errors] -- an unexpected exception type is itself an invariant breach the report must record, not crash on
                outcome = "wrong"
                self.log(f"unexpected error: {type(exc).__name__}: {exc}")
            elapsed_ms = 1000.0 * (time.monotonic() - started)
            self.report.queries += config.batch
            self.report.latencies_ms.append(elapsed_ms)
            if elapsed_ms > config.deadline_ms + config.grace_ms:
                self.report.overruns += 1
                self.log(
                    f"OVERRUN: call took {elapsed_ms:.0f} ms against a "
                    f"{config.deadline_ms:.0f} ms deadline"
                )
            if outcome == "deadline":
                self.report.deadline_exceeded += config.batch
                continue
            if outcome == "unavailable":
                self.report.unavailable += config.batch
                continue
            if outcome == "wrong":
                self.report.wrong += config.batch
                continue
            for function, result in zip(functions, results):
                expected = self.expected(function, result.epoch)
                if expected is None:
                    self.report.wrong += 1
                    self.log(
                        f"WRONG: result claims unknown epoch {result.epoch}"
                    )
                    continue
                if (result.ids, result.scores) != expected:
                    self.report.wrong += 1
                    self.log(
                        f"WRONG: ids/scores diverge from oracle at "
                        f"epoch {result.epoch}"
                    )
                    continue
                if result.tier == "compiled":
                    self.report.ok += 1
                else:
                    self.report.degraded += 1

    def measure_recovery(self) -> None:
        """Time from now until an undegraded (compiled-tier) answer."""
        config = self.config
        started = time.monotonic()
        limit = config.recovery_limit_ms / 1000.0
        while time.monotonic() - started < limit:
            (function,) = self._functions(1)
            try:
                (result,) = self.index.query_batch(
                    [function], config.k, deadline_ms=config.deadline_ms
                )
            except Exception:  # repro: noqa[typed-errors] -- recovery probing rides through every transient failure mode the fault just injected; only the clock decides the verdict
                time.sleep(0.05)
                continue
            expected = self.expected(function, result.epoch)
            if (
                result.tier == "compiled"
                and expected == (result.ids, result.scores)
            ):
                self.report.recovery_ms = 1000.0 * (
                    time.monotonic() - started
                )
                self.log(
                    f"recovered to compiled tier in "
                    f"{self.report.recovery_ms:.0f} ms"
                )
                return
            time.sleep(0.05)
        self.log("recovery limit reached without an undegraded answer")


# ----------------------------------------------------------------------
# The scenarios
# ----------------------------------------------------------------------
def _scenario_hung_worker(ctx: ChaosContext) -> None:
    """A worker goes silent (SIGSTOP) mid-service but stays 'alive'."""
    ctx.query_round(2)
    ctx.stop_worker(0)
    for _ in range(ctx.config.rounds):
        ctx.query_round()
    ctx.cont_worker(0)  # no-op if the pool already SIGKILLed it
    ctx.measure_recovery()
    ctx.query_round(2)


def _scenario_sigkill_storm(ctx: ChaosContext) -> None:
    """Workers are SIGKILLed round after round; the pool keeps healing."""
    ctx.query_round(1)
    for index in range(ctx.config.rounds):
        ctx.kill_worker(index % ctx.config.workers)
        ctx.query_round()
    ctx.measure_recovery()
    ctx.query_round(2)


def _scenario_slow_jitter(ctx: ChaosContext) -> None:
    """Stop/continue pulses make replies arrive late and out of order."""
    ctx.query_round(1)
    for index in range(ctx.config.rounds):
        slot = index % ctx.config.workers
        ctx.stop_worker(slot)
        time.sleep(ctx.config.reply_timeout / 3.0)
        ctx.query_round()
        ctx.cont_worker(slot)
    ctx.measure_recovery()
    ctx.query_round(2)


def _scenario_store_tamper_section(ctx: ChaosContext) -> None:
    """A TOC byte of the live store generation rots on disk.

    Live mappings bypass the TOC, so in-flight service stays correct;
    the respawn of a killed worker must *reject* the tampered file at
    fast verification (quarantine-not-serve) rather than map it, and
    the next publish — a fresh generation — heals the pool.
    """
    ctx.query_round(2)
    ctx.tamper_store_toc()
    ctx.query_round(2)  # payload untouched: current mappings still right
    ctx.kill_worker(0)  # its replacement must refuse the tampered file
    for _ in range(ctx.config.rounds):
        ctx.query_round()
    ctx.mutate()  # publish writes a clean generation: the pool heals
    ctx.measure_recovery()
    ctx.query_round(2)


def _scenario_store_kill_mid_publish(ctx: ChaosContext) -> None:
    """A publish dies mid-write, leaving torn debris in the spool.

    ``CURRENT`` still names the intact generation, so service never
    touches the debris; worker respawns re-attach the intact file; the
    next real publish allocates past the torn generation and the orphan
    collector clears the wreckage.
    """
    ctx.query_round(2)
    debris = ctx.plant_torn_publish()
    ctx.query_round(2)  # CURRENT is intact: service is unaffected
    ctx.kill_worker(0)  # respawn re-attaches the intact generation
    ctx.query_round()
    ctx.mutate()  # publish must ride over the debris and remove it
    for path in debris or ():
        if os.path.exists(path):
            ctx.log(f"DEBRIS SURVIVED: {os.path.basename(path)}")
            ctx.report.wrong += 1
    for _ in range(ctx.config.rounds):
        ctx.query_round()
    ctx.measure_recovery()
    ctx.query_round(2)


def _scenario_shm_tamper(ctx: ChaosContext) -> None:
    """The snapshot's backing name vanishes; respawns fail until republish."""
    ctx.query_round(2)
    ctx.unlink_segments()
    ctx.query_round(2)  # mappings outlive the name: still served
    ctx.kill_worker(0)  # its replacement cannot attach the missing name
    for _ in range(ctx.config.rounds):
        ctx.query_round()
    ctx.mutate()  # publish exports a fresh segment: the pool heals
    ctx.measure_recovery()
    ctx.query_round(2)


def _scenario_wal_fsync_failure(ctx: ChaosContext) -> None:
    """Durability fails: fsync raises, the writer poisons, reads go on."""
    import repro.serve.wal as wal_module

    ctx.query_round(2)
    original = wal_module.os.fsync

    def failing_fsync(fd: int) -> None:
        raise OSError("chaos: fsync failed")

    wal_module.os.fsync = failing_fsync
    try:
        ctx.log("fsync now failing")
        try:
            ctx.mutate()
        except (OSError, ServiceUnavailable) as exc:
            ctx.log(f"mutation failed as expected: {type(exc).__name__}")
        for _ in range(ctx.config.rounds):
            ctx.query_round()  # reads must keep serving the last snapshot
        try:
            ctx.mutate()
        except ServiceUnavailable as exc:
            ctx.log(f"writer poisoned as expected: {exc}")
    finally:
        wal_module.os.fsync = original
    ctx.log("fsync restored")
    ctx.report.recovery_ms = ctx.reopen()
    ctx.query_round(2)
    if ctx.report.recovery_ms > ctx.config.recovery_limit_ms:
        ctx.log("reopen exceeded the recovery limit")


def _scenario_mid_publish_kill(ctx: ChaosContext) -> None:
    """Workers die at the publish barrier; epochs must never mix."""
    ctx.query_round(1)
    for index in range(ctx.config.rounds):
        ctx.kill_worker(index % ctx.config.workers)
        ctx.mutate()  # publish walks the pool with a corpse in it
        ctx.query_round()
    ctx.measure_recovery()
    ctx.query_round(2)


#: Registry: scenario name → script.  ``repro chaos`` runs these in order.
SCENARIOS: "dict[str, Callable[[ChaosContext], None]]" = {
    "hung_worker": _scenario_hung_worker,
    "sigkill_storm": _scenario_sigkill_storm,
    "slow_jitter": _scenario_slow_jitter,
    "shm_tamper": _scenario_shm_tamper,
    "wal_fsync_failure": _scenario_wal_fsync_failure,
    "mid_publish_kill": _scenario_mid_publish_kill,
    "store_tamper_section": _scenario_store_tamper_section,
    "store_kill_mid_publish": _scenario_store_kill_mid_publish,
}


def run_scenario(
    name: str,
    *,
    seed: int = 0,
    config: "ChaosConfig | None" = None,
) -> ScenarioReport:
    """Run one scenario end to end and return its report."""
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r} (choose from {sorted(SCENARIOS)})"
        )
    config = config or ChaosConfig()
    with tempfile.TemporaryDirectory(prefix=f"repro-chaos-{name}-") as tmp:
        ctx = ChaosContext(name, seed, config, os.path.join(tmp, "index"))
        try:
            SCENARIOS[name](ctx)
        finally:
            ctx.close()
        return ctx.report


def run_suite(
    names: "list[str] | None" = None,
    *,
    seeds: "list[int] | None" = None,
    config: "ChaosConfig | None" = None,
) -> "list[ScenarioReport]":
    """Run scenarios × seeds; returns every report (order: seed-major)."""
    names = list(SCENARIOS) if names is None else names
    seeds = [0] if seeds is None else seeds
    reports = []
    for seed in seeds:
        for name in names:
            reports.append(run_scenario(name, seed=seed, config=config))
    return reports
