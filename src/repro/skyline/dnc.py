"""Divide-and-Conquer skyline (Börzsönyi et al., paper ref [8]).

The record set is split at the median of the first dimension into a "high"
and a "low" half; each half's skyline is computed recursively, then merged:
every low-half skyline candidate survives only if no high-half skyline
record dominates it.  (High-half records cannot be dominated by low-half
ones in the classic formulation, because the split dimension already
separates them — ties on the split value are routed to the high half, so
the property holds exactly.)
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import dominators_of, maximal_mask


def dnc_skyline(values: np.ndarray, cutoff: int = 64) -> np.ndarray:
    """Sorted indices of the maximal rows via divide and conquer.

    Parameters
    ----------
    values:
        ``(n, m)`` record block.
    cutoff:
        Below this size a block is solved by direct scan (the "main-memory
        algorithm" of the original).

    Examples
    --------
    >>> dnc_skyline(np.array([[2.0, 2.0], [1.0, 1.0], [3.0, 0.0]])).tolist()
    [0, 2]
    """
    values = np.asarray(values, dtype=np.float64)
    indices = np.arange(values.shape[0], dtype=np.intp)
    result = _solve(values, indices, cutoff)
    return np.asarray(sorted(int(i) for i in result), dtype=np.intp)


def _solve(values: np.ndarray, indices: np.ndarray, cutoff: int) -> np.ndarray:
    block = values[indices]
    if indices.size <= cutoff:
        return indices[maximal_mask(block)]

    pivot = float(np.median(block[:, 0]))
    high = block[:, 0] >= pivot
    # A degenerate split (all values equal on dim 0) falls back to a scan.
    if high.all() or not high.any():
        return indices[maximal_mask(block)]

    high_sky = _solve(values, indices[high], cutoff)
    low_sky = _solve(values, indices[~high], cutoff)

    # Merge: a low-half skyline record survives unless dominated by a
    # high-half skyline record.  (Non-skyline high records cannot dominate
    # it either: they are themselves dominated by a high skyline record,
    # and dominance is transitive.)
    high_block = values[high_sky]
    keep = [
        rid for rid in low_sky if not dominators_of(values[rid], high_block).any()
    ]
    return np.concatenate([high_sky, np.asarray(keep, dtype=np.intp)])
