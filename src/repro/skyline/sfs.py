"""Sort-Filter Skyline: the repository's default layer-peeling routine.

Rows are visited in an order that is a topological order of dominance
(descending coordinate sum: a dominator always has a strictly larger sum),
so each row needs a single vectorized check against the accepted maximal
set.  Worst case O(n * s) where s is the skyline size; in practice the
fastest of the bundled algorithms on the paper's workloads, which is why
the DG builder defaults to it.
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import dominators_of


def sfs_skyline(values: np.ndarray) -> np.ndarray:
    """Sorted indices of the maximal rows of ``values``.

    Examples
    --------
    >>> sfs_skyline(np.array([[2.0, 2.0], [1.0, 1.0], [3.0, 0.0]])).tolist()
    [0, 2]
    """
    values = np.asarray(values, dtype=np.float64)
    n, m = values.shape
    if n == 0:
        return np.empty(0, dtype=np.intp)
    order = np.argsort(-values.sum(axis=1), kind="stable")
    buffer = np.empty((n, m), dtype=np.float64)
    filled = 0
    accepted: list = []
    for idx in order:
        point = values[idx]
        if filled and bool(dominators_of(point, buffer[:filled]).any()):
            continue
        buffer[filled] = point
        filled += 1
        accepted.append(int(idx))
    return np.asarray(sorted(accepted), dtype=np.intp)
