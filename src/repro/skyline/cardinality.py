"""Skyline cardinality estimation (paper refs [13], [14]; used by Thm 3.2).

Theorem 3.2 bounds the Basic Traveler's cost by ``k + |skyline(D)|`` and
points to estimators of the skyline cardinality.  For ``n`` i.i.d. records
with independent continuous marginals, the classic result (Bentley et al.;
Godfrey, FoIKS'04) is the generalized harmonic recurrence::

    T(n, 1) = 1
    T(n, d) = sum_{i=1..n} T(i, d-1) / i          ~  (ln n)^(d-1) / (d-1)!

The paper's integral form — ``n * ∫ f(x) (1 - F(x))^{n-1} dx`` — is
implemented for the uniform cube as a Monte-Carlo estimator, useful as a
cross-check and for non-harmonic settings.
"""

from __future__ import annotations

import math

import numpy as np


def expected_skyline_uniform(n: int, dims: int) -> float:
    """Expected skyline cardinality of n i.i.d. independent records.

    Exact harmonic recurrence, computed by d-1 cumulative sums in O(d*n).

    Examples
    --------
    >>> expected_skyline_uniform(100, 1)
    1.0
    >>> abs(expected_skyline_uniform(100, 2) - sum(1 / i for i in range(1, 101))) < 1e-9
    True
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if dims <= 0:
        raise ValueError("dims must be positive")
    if dims == 1:
        return 1.0
    inverse = 1.0 / np.arange(1, n + 1, dtype=np.float64)
    level = np.ones(n, dtype=np.float64)  # T(i, 1) for i = 1..n
    for _ in range(dims - 1):
        level = np.cumsum(level * inverse)
    return float(level[-1])


def harmonic_approximation(n: int, dims: int) -> float:
    """Closed-form approximation ``(ln n)^(d-1) / (d-1)!`` of the recurrence."""
    if n <= 0 or dims <= 0:
        raise ValueError("n and dims must be positive")
    return math.log(n) ** (dims - 1) / math.factorial(dims - 1)


def montecarlo_skyline_uniform(
    n: int, dims: int, samples: int = 20000, seed: int = 0
) -> float:
    """Monte-Carlo evaluation of the paper's integral for the uniform cube.

    A point ``x`` in [0,1]^d is maximal among n-1 other uniform points with
    probability ``(1 - prod_i (1 - x_i))^(n-1)``, so the expected skyline
    size is ``n * E_x[(1 - prod_i (1 - x_i))^(n-1)]`` — the max-preferring
    instance of ``n ∫ f(x)(1 - F(x))^{n-1} dx``.
    """
    if n <= 0 or dims <= 0:
        raise ValueError("n and dims must be positive")
    rng = np.random.default_rng(seed)
    x = rng.uniform(size=(samples, dims))
    weak_dominator_probability = np.prod(1.0 - x, axis=1)
    survive = (1.0 - weak_dominator_probability) ** (n - 1)
    return float(n * survive.mean())
