"""Branch-and-Bound Skyline (Papadias et al., paper ref [9]).

Textbook BBS on an R-tree: a min-heap is keyed by each entry's L1 MINDIST
to the preference-optimal corner (for max-preferring data, the
per-dimension maximum of the dataset).  Entries are expanded best-first;
an entry whose best corner is dominated by an already-accepted skyline
point is pruned — together with its entire subtree — and points reached
un-dominated are guaranteed skyline members because everything that could
dominate them has a smaller key and was processed first.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.core.dominance import dominators_of
from repro.spatial.rtree import RTree, RTreeNode


def bbs_skyline(values: np.ndarray, rtree: RTree | None = None) -> np.ndarray:
    """Sorted indices of the maximal rows via best-first R-tree traversal.

    Parameters
    ----------
    values:
        ``(n, m)`` record block.
    rtree:
        Optional pre-built R-tree over ``values`` (record ids = row
        indices); bulk-loaded on the fly when omitted.

    Examples
    --------
    >>> bbs_skyline(np.array([[2.0, 2.0], [1.0, 1.0], [3.0, 0.0]])).tolist()
    [0, 2]
    """
    values = np.asarray(values, dtype=np.float64)
    n, m = values.shape
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if rtree is None:
        rtree = RTree.bulk_load(values)

    corner = values.max(axis=0)
    counter = itertools.count()

    def entry_key(upper: np.ndarray) -> float:
        # L1 distance of the entry's best corner to the optimal corner.
        return float(np.sum(corner - upper))

    skyline: list = []
    skyline_block = np.empty((n, m), dtype=np.float64)
    filled = 0

    heap: list = []

    def push_node(node: RTreeNode) -> None:
        for entry in node.entries:
            key = entry_key(entry.mbr.upper)
            heapq.heappush(
                heap, (key, next(counter), entry.record_id, entry.child, entry.mbr.upper)
            )

    push_node(rtree.root)
    while heap:
        _, _, record_id, child, upper = heapq.heappop(heap)
        # Prune: if an accepted skyline point dominates the entry's best
        # corner, nothing inside the entry can be maximal.
        if filled and bool(dominators_of(upper, skyline_block[:filled]).any()):
            continue
        if record_id is not None:
            point = values[record_id]
            if filled and bool(dominators_of(point, skyline_block[:filled]).any()):
                continue
            skyline_block[filled] = point
            filled += 1
            skyline.append(int(record_id))
        else:
            push_node(child)

    return np.asarray(sorted(skyline), dtype=np.intp)
