"""Skyline substrate: every algorithm the paper cites for building DG layers.

"To build a DG in the offline phase, we can use any skyline algorithm to
find each layer of DG" (Section II).  This subpackage provides seven
interchangeable implementations, each exposing::

    skyline_indices(values: (n, m) array) -> sorted 1-d index array

of the *maximal* rows (max-preferring dominance, Definition 2.2), plus the
:func:`as_mask_function` adapter that turns any of them into the
``block -> boolean mask`` shape the layer builder consumes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.skyline.bbs import bbs_skyline
from repro.skyline.bitmap import bitmap_skyline
from repro.skyline.bnl import bnl_skyline
from repro.skyline.cardinality import (
    expected_skyline_uniform,
    montecarlo_skyline_uniform,
)
from repro.skyline.dnc import dnc_skyline
from repro.skyline.index_method import index_skyline
from repro.skyline.nn import nn_skyline
from repro.skyline.sfs import sfs_skyline
from repro.skyline.skyband import dominance_counts, k_skyband, skyband_sizes

#: Name -> skyline_indices function, for the ablation benchmark.
ALGORITHMS: dict = {
    "sfs": sfs_skyline,
    "bnl": bnl_skyline,
    "dnc": dnc_skyline,
    "bitmap": bitmap_skyline,
    "index": index_skyline,
    "nn": nn_skyline,
    "bbs": bbs_skyline,
}


def as_mask_function(skyline_indices: Callable) -> Callable:
    """Adapt a ``values -> indices`` skyline routine to ``values -> mask``.

    The returned callable matches
    :data:`repro.core.layers.SkylineFunction`, so any algorithm here can be
    plugged into :func:`repro.core.builder.build_dominant_graph`.
    """

    def mask_function(values: np.ndarray) -> np.ndarray:
        mask = np.zeros(values.shape[0], dtype=bool)
        mask[np.asarray(skyline_indices(values), dtype=np.intp)] = True
        return mask

    return mask_function


__all__ = [
    "ALGORITHMS",
    "as_mask_function",
    "bbs_skyline",
    "bitmap_skyline",
    "bnl_skyline",
    "dnc_skyline",
    "dominance_counts",
    "expected_skyline_uniform",
    "index_skyline",
    "k_skyband",
    "montecarlo_skyline_uniform",
    "nn_skyline",
    "sfs_skyline",
    "skyband_sizes",
]
