"""Bitmap skyline (Tan, Eng and Ooi, paper ref [10]).

Every record is encoded, per dimension, by the bitmap of records whose
value in that dimension is >= its own.  A record ``p`` is then maximal iff
the conjunction over dimensions of those bitmaps contains only records
*equal* to ``p`` in every dimension: anything else in the intersection
weakly dominates ``p`` with a strict inequality somewhere.

The original packs bits into machine words; numpy boolean arrays give the
same wide bitwise-AND behaviour with far simpler code.
"""

from __future__ import annotations

import numpy as np


def bitmap_skyline(values: np.ndarray) -> np.ndarray:
    """Sorted indices of the maximal rows via per-dimension bitmaps.

    Examples
    --------
    >>> bitmap_skyline(np.array([[2.0, 2.0], [1.0, 1.0], [3.0, 0.0]])).tolist()
    [0, 2]
    """
    values = np.asarray(values, dtype=np.float64)
    n, m = values.shape
    if n == 0:
        return np.empty(0, dtype=np.intp)

    # Rank-compress each dimension so the "value >= v" bitmap is a suffix
    # of the sorted order, as in the original bitmap organization.
    orders = [np.argsort(values[:, d], kind="stable") for d in range(m)]
    ranks = np.empty((n, m), dtype=np.intp)
    for d in range(m):
        ranks[orders[d], d] = np.arange(n)

    skyline: list = []
    for i in range(n):
        # AND over dimensions of "records with value >= mine in dim d".
        conjunction = np.ones(n, dtype=bool)
        equality = np.ones(n, dtype=bool)
        for d in range(m):
            ge = values[:, d] >= values[i, d]
            conjunction &= ge
            equality &= values[:, d] == values[i, d]
        # Maximal iff only exact duplicates (including itself) weakly
        # dominate in every dimension.
        if np.array_equal(conjunction, equality):
            skyline.append(i)
    return np.asarray(skyline, dtype=np.intp)
