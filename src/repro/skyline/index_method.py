"""Index skyline (Tan, Eng and Ooi, paper ref [10]).

Records are partitioned into ``m`` lists: a record lives in the list of its
*largest* coordinate (the max-preferring mirror of the original's minimum
coordinate), each list sorted descending by that coordinate.  Lists are
consumed best-head-first; each popped record is checked against the current
skyline, and the scan stops early once some accepted record strictly
dominates the vector ``(h, ..., h)`` where ``h`` is the best remaining head
value — every unseen record is bounded by ``h`` in all coordinates, so
nothing further can be maximal.
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import dominators_of, maximal_mask


def index_skyline(values: np.ndarray) -> np.ndarray:
    """Sorted indices of the maximal rows via sorted per-dimension lists.

    Examples
    --------
    >>> index_skyline(np.array([[2.0, 2.0], [1.0, 1.0], [3.0, 0.0]])).tolist()
    [0, 2]
    """
    values = np.asarray(values, dtype=np.float64)
    n, m = values.shape
    if n == 0:
        return np.empty(0, dtype=np.intp)

    home = np.argmax(values, axis=1)
    lists = []
    for d in range(m):
        members = np.flatnonzero(home == d)
        members = members[np.argsort(-values[members, d], kind="stable")]
        lists.append(list(members))
    cursors = [0] * m

    accepted: list = []
    accepted_block = np.empty((n, m), dtype=np.float64)
    filled = 0
    while True:
        # Best remaining head across lists (the value that bounds every
        # coordinate of every unseen record).
        best_dim, best_value = -1, -np.inf
        for d in range(m):
            if cursors[d] < len(lists[d]):
                head = lists[d][cursors[d]]
                value = values[head, d]
                if value > best_value:
                    best_dim, best_value = d, value
        if best_dim < 0:
            break
        if filled and bool(
            np.any(np.all(accepted_block[:filled] > best_value, axis=1))
        ):
            break  # early termination: a skyline point beats (h, ..., h)
        idx = lists[best_dim][cursors[best_dim]]
        cursors[best_dim] += 1
        point = values[idx]
        if filled and bool(dominators_of(point, accepted_block[:filled]).any()):
            continue
        accepted_block[filled] = point
        filled += 1
        accepted.append(int(idx))

    # Tie cleanup: with equal maximum coordinates a dominated record can be
    # popped before its dominator; one final scan over the (small) accepted
    # set removes such victims.
    accepted_ids = np.asarray(accepted, dtype=np.intp)
    keep = maximal_mask(accepted_block[:filled])
    return np.asarray(sorted(int(i) for i in accepted_ids[keep]), dtype=np.intp)
