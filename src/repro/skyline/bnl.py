"""Block Nested Loops skyline (Börzsönyi et al., paper ref [8]).

BNL scans the input keeping a bounded *window* of incomparable candidate
records.  A scanned record dominated by a window record is discarded;
window records it dominates are evicted; otherwise it joins the window or,
when the window is full, overflows to a temporary list that seeds the next
pass.  Records that survived a full pass against everything scanned after
them are emitted as skyline members; overflowed records are re-scanned in
subsequent passes, exactly mirroring the disk-based original (our
"temporary file" is an in-memory list).
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import dominates
from repro.errors import InvariantViolation


def bnl_skyline(values: np.ndarray, window_size: int = 256) -> np.ndarray:
    """Sorted indices of the maximal rows, computed with bounded memory.

    Parameters
    ----------
    values:
        ``(n, m)`` record block.
    window_size:
        Maximum number of candidates held in the window per pass (the
        original's main-memory budget).

    Examples
    --------
    >>> bnl_skyline(np.array([[2.0, 2.0], [1.0, 1.0], [3.0, 0.0]])).tolist()
    [0, 2]
    """
    values = np.asarray(values, dtype=np.float64)
    if window_size < 1:
        raise ValueError("window_size must be positive")
    pending = list(range(values.shape[0]))
    skyline: list = []

    while pending:
        window: list = []  # [(index, inserted_at_position_in_pass)]
        overflow: list = []
        emitted_this_pass: list = []
        for position, idx in enumerate(pending):
            point = values[idx]
            dominated = False
            survivors: list = []
            for w_idx, w_pos in window:
                if dominates(values[w_idx], point):
                    dominated = True
                    survivors.append((w_idx, w_pos))
                elif dominates(point, values[w_idx]):
                    continue  # evicted
                else:
                    survivors.append((w_idx, w_pos))
                if dominated:
                    # Keep the remaining window intact and stop comparing.
                    seen = {s[0] for s in survivors}
                    survivors.extend(
                        entry for entry in window if entry[0] not in seen
                    )
                    break
            window = survivors
            if dominated:
                continue
            if len(window) < window_size:
                window.append((idx, position))
            else:
                overflow.append(idx)
        # A window record is certainly maximal if it was compared against
        # every record that entered after it; with an in-memory pass that
        # is every window survivor (they each met all later arrivals).
        emitted_this_pass = [w_idx for w_idx, _ in window]
        if not emitted_this_pass and overflow:
            raise InvariantViolation(
                "BNL made no progress; window_size too small?"
            )
        skyline.extend(emitted_this_pass)
        # Overflowed records must still be checked against each other and
        # against records after them — and against the emitted skyline of
        # this pass (they may be dominated by it).
        next_pending: list = []
        for idx in overflow:
            point = values[idx]
            if any(dominates(values[s], point) for s in emitted_this_pass):
                continue
            next_pending.append(idx)
        pending = next_pending

    return np.asarray(sorted(skyline), dtype=np.intp)
