"""k-skyband and dominance-count queries.

The k-skyband of a record set is the set of records dominated by fewer
than k others.  Its connection to top-k queries is the reason it belongs
in this repository: for *every* aggregate monotone function, the top-k
answer is contained in the k-skyband (each of a record's dominators
outranks it under every monotone F, so a record with >= k dominators can
never place).  The 1-skyband is the skyline, i.e. the DG's first layer.

The skyband therefore bounds the answer of the whole query class the DG
serves, and `skyband_sizes` gives the function-free analogue of Theorem
3.2's cost curve.
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import dominators_of


def dominance_counts(values: np.ndarray) -> np.ndarray:
    """Number of dominators of each record (O(n^2) vectorized rows).

    Examples
    --------
    >>> dominance_counts(np.array([[3.0, 3.0], [2.0, 2.0], [1.0, 9.0]])).tolist()
    [0, 1, 0]
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    counts = np.empty(n, dtype=np.intp)
    for i in range(n):
        counts[i] = int(dominators_of(values[i], values).sum())
    return counts


def k_skyband(values: np.ndarray, k: int) -> np.ndarray:
    """Sorted indices of records with fewer than ``k`` dominators.

    ``k_skyband(values, 1)`` is the skyline.  For any aggregate monotone
    F, the top-k answer set is a subset of ``k_skyband(values, k)``.

    Examples
    --------
    >>> k_skyband(np.array([[3.0, 3.0], [2.0, 2.0], [1.0, 1.0]]), 2).tolist()
    [0, 1]
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    counts = dominance_counts(values)
    return np.flatnonzero(counts < k)


def skyband_sizes(values: np.ndarray, ks) -> list:
    """|k-skyband| for each k — the function-free top-k answer envelope."""
    counts = dominance_counts(values)
    return [int(np.sum(counts < k)) for k in ks]
