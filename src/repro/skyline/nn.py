"""Nearest-Neighbor skyline (Kossmann, Ramsak and Rost, paper ref [11]).

The NN point to the *ideal corner* (the per-dimension maximum of the data)
under L2 is always maximal: dominating a record moves you coordinate-wise
toward the corner.  That point partitions the remaining search space into
``m`` overlapping open regions — "strictly better than the NN in dimension
i" — which alone can hold further skyline points; each region goes on a
to-do list and is solved by a constrained NN query against the R-tree,
recursively.

Implementation notes:

- Regions are *open* boxes ``{x : x_d > low_d for every d}`` (the initial
  ``low`` sits below the data, so it never binds).  Openness in every
  raised dimension is what makes each recursion step strictly raise one
  lower bound through actual data values, so the traversal terminates even
  on tie-heavy data.
- Regions overlap for m > 2, so duplicates are merged, identical regions
  reached via different parents are deduplicated, and a final dominance
  filter over the (small) candidate set guarantees exactness — mirroring
  the duplicate elimination the original authors describe.
- Complexity caveat (also from the original paper): the region count grows
  exponentially with dimensionality; NN is practical for m <= 3 and the
  ablation benchmark exercises it there.
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import maximal_mask
from repro.spatial.rtree import RTree


def nn_skyline(values: np.ndarray, rtree: RTree | None = None) -> np.ndarray:
    """Sorted indices of the maximal rows via recursive NN queries.

    Parameters
    ----------
    values:
        ``(n, m)`` record block.
    rtree:
        Optional pre-built R-tree over ``values`` (record ids = row
        indices); bulk-loaded on the fly when omitted.

    Examples
    --------
    >>> nn_skyline(np.array([[2.0, 2.0], [1.0, 1.0], [3.0, 0.0]])).tolist()
    [0, 2]
    """
    values = np.asarray(values, dtype=np.float64)
    n, m = values.shape
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if rtree is None:
        rtree = RTree.bulk_load(values)

    corner = values.max(axis=0)
    base_low = values.min(axis=0) - 1.0  # strictly below every record

    candidates: set = set()
    todo: list = [base_low]
    visited: set = set()
    while todo:
        low = todo.pop()
        key = low.tobytes()
        if key in visited:
            continue
        visited.add(key)
        nearest = _constrained_nn(rtree, values, corner, low)
        if nearest is None:
            continue
        candidates.add(nearest)
        nn_point = values[nearest]
        for d in range(m):
            # Open sub-region d: strictly better than the NN in dimension d.
            if nn_point[d] >= corner[d]:
                continue  # nothing can exceed the data maximum
            new_low = low.copy()
            new_low[d] = nn_point[d]
            todo.append(new_low)

    # Exact duplicates of a maximal record are maximal too (Definition 2.2
    # needs a strict inequality somewhere), but the NN query surfaces only
    # one copy per vector — gather the rest before the final filter.
    for rid in list(candidates):
        same = np.flatnonzero(np.all(values == values[rid], axis=1))
        candidates.update(int(i) for i in same)

    ids = np.asarray(sorted(candidates), dtype=np.intp)
    keep = maximal_mask(values[ids])
    return ids[keep]


def _constrained_nn(
    rtree: RTree,
    values: np.ndarray,
    corner: np.ndarray,
    low: np.ndarray,
) -> int | None:
    """Nearest record to ``corner`` strictly above ``low`` in every dim."""
    for record_id, _ in rtree.nearest_iter(corner):
        if bool(np.all(values[record_id] > low)):
            return int(record_id)
    return None
