"""Generic experiment harness: run algorithm sweeps, collect series.

Every figure in the paper is a set of *series* (one per algorithm) over a
shared x-axis (k, database size, or batch size).  :func:`sweep` runs a
callable per (algorithm, x) pair and collects whatever metric the caller
extracts; :class:`ExperimentResult` carries the series plus axis labels so
the reporting layer can print the same rows the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence


@dataclass
class Series:
    """One algorithm's curve: y values over the experiment's x axis."""

    label: str
    y: list = field(default_factory=list)


@dataclass
class ExperimentResult:
    """A reproduced figure: labelled series over a common x axis."""

    title: str
    x_label: str
    x: list
    series: list
    y_label: str = "value"

    def series_by_label(self, label: str) -> Series:
        """The series with the given label (KeyError when absent)."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in {self.title!r}")

    def as_rows(self) -> list:
        """Rows of (x, y_1, ..., y_S) ready for tabulation."""
        return [
            [x] + [s.y[i] for s in self.series]
            for i, x in enumerate(self.x)
        ]


def sweep(
    title: str,
    x_label: str,
    xs: Sequence,
    runners: dict,
    y_label: str = "value",
) -> ExperimentResult:
    """Run ``runners[label](x)`` for every label and x; collect the numbers.

    Parameters
    ----------
    runners:
        Mapping ``label -> callable(x) -> float``.  Each callable performs
        one measurement (a query, a build, a maintenance batch) and
        returns the metric value to record.
    """
    series = [Series(label=label) for label in runners]
    for x in xs:
        for s, runner in zip(series, runners.values()):
            s.y.append(float(runner(x)))
    return ExperimentResult(
        title=title, x_label=x_label, x=list(xs), series=series, y_label=y_label
    )
