"""Benchmark harness: experiment definitions reproducing the paper's
figures, plus series/table reporting shared by `benchmarks/`."""

from repro.bench.harness import ExperimentResult, Series, sweep
from repro.bench.report import format_table, save_result

__all__ = ["ExperimentResult", "Series", "format_table", "save_result", "sweep"]
