"""Workload-level algorithm comparison: the evaluation matrix as a library.

``compare_algorithms`` runs every registered top-k algorithm over a batch
of queries and reports mean accessed records and mean wall-clock time per
query — the two panels of the paper's Figs. 6–7, averaged over a query
workload instead of a single canonical function.  Exposed on the CLI as
``python -m repro compare``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.appri import AppRIIndex
from repro.baselines.ca import CombinedAlgorithm
from repro.baselines.onion import OnionIndex
from repro.baselines.prefer import PreferIndex
from repro.baselines.rankcube import RankCubeIndex
from repro.baselines.ta import ThresholdAlgorithm
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_extended_graph
from repro.core.compiled import CompiledAdvancedTraveler
from repro.core.dataset import Dataset
from repro.metrics.timing import Timer


@dataclass(frozen=True)
class AlgorithmReport:
    """One algorithm's aggregate behaviour over a query workload."""

    name: str
    build_seconds: float
    mean_accessed: float
    mean_seconds: float
    correct: bool


def default_suite(
    dataset: Dataset,
    theta: int | None = None,
    seed: int = 0,
    engine: str = "reference",
) -> dict:
    """Build the standard algorithm suite over a dataset.

    Returns ``name -> (build_seconds, top_k callable)``.  ``engine``
    selects what serves the DG entry: the ``"reference"`` Traveler over
    the mutable graph, or the ``"compiled"`` flat-array kernel
    (:mod:`repro.core.compiled`); its build time then includes the
    compilation step.
    """
    if engine not in ("reference", "compiled"):
        raise ValueError(f"unknown engine {engine!r}")
    suite: dict = {}

    def register(name, builder):
        with Timer() as timer:
            instance = builder()
        suite[name] = (timer.elapsed, instance.top_k)

    def build_dg():
        graph = build_extended_graph(dataset, theta=theta, seed=seed)
        if engine == "compiled":
            return CompiledAdvancedTraveler(graph.compile())
        return AdvancedTraveler(graph)

    register("DG", build_dg)
    register("TA", lambda: ThresholdAlgorithm(dataset))
    register("CA", lambda: CombinedAlgorithm(dataset))
    register("ONION", lambda: OnionIndex(dataset))
    register("AppRI", lambda: AppRIIndex(dataset, seed=seed))
    register("PREFER", lambda: PreferIndex(dataset))
    register("RankCube", lambda: RankCubeIndex(dataset))
    return suite


def compare_algorithms(
    dataset: Dataset,
    queries: Sequence,
    k: int,
    suite: dict | None = None,
    theta: int | None = None,
    seed: int = 0,
    engine: str = "reference",
) -> list:
    """Run every algorithm over every query; return per-algorithm reports.

    Correctness is cross-checked per query: each algorithm's score
    multiset must match a brute-force scan (``correct`` is the AND over
    the workload).  CA's ``mean_accessed`` counts random accesses, per
    the paper's convention; everything else counts scored records.
    ``engine`` picks the DG entry's implementation (see
    :func:`default_suite`).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if not queries:
        raise ValueError("need at least one query")
    if suite is None:
        suite = default_suite(dataset, theta=theta, seed=seed, engine=engine)

    expected = []
    for query in queries:
        scores = query.score_many(dataset.values)
        expected.append(np.sort(scores)[::-1][: min(k, len(dataset))])

    reports = []
    for name, (build_seconds, top_k) in suite.items():
        accessed: list = []
        seconds: list = []
        correct = True
        for query, truth in zip(queries, expected):
            with Timer() as timer:
                result = top_k(query, k)
            seconds.append(timer.elapsed)
            if name == "CA":
                accessed.append(result.stats.random)
            else:
                accessed.append(result.stats.computed)
            if not np.allclose(result.score_multiset(), truth, atol=1e-9):
                correct = False
        reports.append(
            AlgorithmReport(
                name=name,
                build_seconds=build_seconds,
                mean_accessed=float(np.mean(accessed)),
                mean_seconds=float(np.mean(seconds)),
                correct=correct,
            )
        )
    return reports


def format_report(reports: Sequence, k: int, n_queries: int) -> str:
    """Aligned table of a comparison run."""
    header = (
        f"algorithm comparison: top-{k}, {n_queries} queries "
        "(CA counts random accesses)"
    )
    lines = [
        header,
        f"{'algorithm':<10} {'build(s)':>9} {'accessed':>10} "
        f"{'query(ms)':>10} {'correct':>8}",
    ]
    for report in sorted(reports, key=lambda r: r.mean_accessed):
        lines.append(
            f"{report.name:<10} {report.build_seconds:>9.3f} "
            f"{report.mean_accessed:>10.1f} "
            f"{1000 * report.mean_seconds:>10.3f} "
            f"{str(report.correct):>8}"
        )
    return "\n".join(lines)
