"""Experiment definitions — one per figure of the paper's Section VI.

Every function returns :class:`~repro.bench.harness.ExperimentResult`
objects holding the same series the paper plots.  The paper ran 1,000K
records in C++ on 2008 hardware; defaults here are pure-Python-sized and
multiply by the ``REPRO_BENCH_SCALE`` environment variable, so
``REPRO_BENCH_SCALE=10 pytest benchmarks/`` reruns everything an order of
magnitude larger.  Comparisons are relative between algorithms at equal
scale, which is what the figures show (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import os
import random
from typing import Callable, Sequence

from repro.baselines.appri import AppRIIndex
from repro.baselines.ca import CombinedAlgorithm
from repro.baselines.onion import OnionIndex
from repro.baselines.prefer import PreferIndex
from repro.baselines.rankcube import RankCubeIndex
from repro.baselines.ta import ThresholdAlgorithm
from repro.bench.harness import ExperimentResult, sweep
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.cost import estimated_cost, predicted_cost
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.maintenance import delete_record, insert_record
from repro.core.nway import NWayTraveler
from repro.core.pseudo import extend_with_pseudo_levels
from repro.core.traveler import BasicTraveler
from repro.data.generators import all_skyline, make_dataset
from repro.data.server import server_dataset
from repro.metrics.timing import Timer

#: The k sweep every query figure uses (paper x axes run 10..100).
DEFAULT_KS = (10, 25, 50, 75, 100)

#: Pseudo-level threshold used by the experiments.  The paper's page-sized
#: θ (~85-128) matches million-record first layers; at reproduction scale
#: the first layer holds a few hundred records, so θ is scaled down to
#: keep the pseudo hierarchy multi-level (same L1/θ ratio regime).
DEFAULT_THETA = 16


def scale(n: int, floor: int = 100) -> int:
    """Apply the REPRO_BENCH_SCALE multiplier to a default record count."""
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return max(floor, int(n * factor))


def canonical_query(dims: int) -> LinearFunction:
    """The evaluation's canonical linear query: descending weights.

    Deliberately asymmetric — equal weights would coincide with PREFER's
    centroid view (an unrealistically perfect match) and would tie every
    record of the all-skyline worst-case dataset (whose rows share one
    coordinate sum).
    """
    weights = list(range(dims, 0, -1))
    total = float(sum(weights))
    return LinearFunction([w / total for w in weights])


def _best_time(run: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-N wall-clock seconds for a query-sized operation."""
    best = float("inf")
    for _ in range(repeats):
        with Timer() as timer:
            run()
        best = min(best, timer.elapsed)
    return best


# ----------------------------------------------------------------------
# Experiment 1 — Fig. 5: Basic vs Advanced Traveler (pseudo records)
# ----------------------------------------------------------------------
def fig5_pseudo_records(
    kind: str,
    n: int | None = None,
    dims: int = 5,
    ks: Sequence[int] = DEFAULT_KS,
    seed: int = 0,
) -> ExperimentResult:
    """Accessed records, Basic vs Advanced Traveler, on U5/G5/R5."""
    n = n if n is not None else scale(2000)
    dataset = make_dataset(kind, n, dims, seed=seed)
    function = canonical_query(dims)
    basic = BasicTraveler(build_dominant_graph(dataset))
    advanced = AdvancedTraveler(build_extended_graph(dataset, theta=DEFAULT_THETA, seed=seed))
    return sweep(
        title=f"Fig.5 ({kind}{dims}, n={n}): accessed records vs k",
        x_label="k",
        xs=list(ks),
        runners={
            "B-Traveler": lambda k: basic.top_k(function, k).stats.computed,
            "A-Traveler": lambda k: advanced.top_k(function, k).stats.computed,
        },
        y_label="number of accessed records",
    )


# ----------------------------------------------------------------------
# Experiment 2 — Fig. 6: comparison with layer-based indexes
# ----------------------------------------------------------------------
def fig6_construction(
    sizes: Sequence[int] | None = None,
    dims: int = 3,
    use_server: bool = False,
    seed: int = 0,
) -> ExperimentResult:
    """Index construction time: DG vs ONION vs AppRI, varying |D|."""
    if sizes is None:
        base = scale(500)
        sizes = [base, base * 2, base * 4]
    sizes = [int(s) for s in sizes]

    def dataset_for(n: int) -> Dataset:
        if use_server:
            return server_dataset(n, seed=seed)
        return make_dataset("U", n, dims, seed=seed)

    def build_dg(n: int) -> float:
        ds = dataset_for(n)
        with Timer() as timer:
            build_extended_graph(ds, theta=DEFAULT_THETA, seed=seed)
        return timer.elapsed

    def build_onion(n: int) -> float:
        ds = dataset_for(n)
        with Timer() as timer:
            OnionIndex(ds)
        return timer.elapsed

    def build_appri(n: int) -> float:
        ds = dataset_for(n)
        with Timer() as timer:
            AppRIIndex(ds, seed=seed)
        return timer.elapsed

    name = "Server" if use_server else f"U{dims}"
    return sweep(
        title=f"Fig.6(a/b) ({name}): construction time vs |D|",
        x_label="|D|",
        xs=sizes,
        runners={"DG": build_dg, "ONION": build_onion, "AppRI": build_appri},
        y_label="construction time (seconds)",
    )


def fig6_query(
    n: int | None = None,
    dims: int = 3,
    ks: Sequence[int] = DEFAULT_KS,
    use_server: bool = False,
    metric: str = "accessed",
    seed: int = 0,
) -> ExperimentResult:
    """Accessed records (Fig. 6c/d) or response time (Fig. 6e/f) vs k."""
    n = n if n is not None else scale(2000)
    dataset = server_dataset(n, seed=seed) if use_server else make_dataset(
        "U", n, dims, seed=seed
    )
    function = canonical_query(dataset.dims)
    dg = AdvancedTraveler(build_extended_graph(dataset, theta=DEFAULT_THETA, seed=seed))
    onion = OnionIndex(dataset)
    appri = AppRIIndex(dataset, seed=seed)
    name = "Server" if use_server else f"U{dims}"

    if metric == "accessed":
        runners = {
            "DG": lambda k: dg.top_k(function, k).stats.computed,
            "ONION": lambda k: onion.top_k(function, k).stats.computed,
            "AppRI": lambda k: appri.top_k(function, k).stats.computed,
        }
        y_label = "number of accessed records"
        fig = "Fig.6(c/d)"
    elif metric == "time":
        runners = {
            "DG": lambda k: _best_time(lambda: dg.top_k(function, k)),
            "ONION": lambda k: _best_time(lambda: onion.top_k(function, k)),
            "AppRI": lambda k: _best_time(lambda: appri.top_k(function, k)),
        }
        y_label = "query response time (seconds)"
        fig = "Fig.6(e/f)"
    else:
        raise ValueError(f"unknown metric {metric!r}")
    return sweep(
        title=f"{fig} ({name}, n={n}): {y_label} vs k",
        x_label="k",
        xs=list(ks),
        runners=runners,
        y_label=y_label,
    )


# ----------------------------------------------------------------------
# Experiment 2 — Fig. 7: comparison with non-layer-based algorithms
# ----------------------------------------------------------------------
def fig7_nonlayer(
    n: int | None = None,
    dims: int = 3,
    ks: Sequence[int] = DEFAULT_KS,
    use_server: bool = False,
    metric: str = "accessed",
    seed: int = 0,
) -> ExperimentResult:
    """DG vs TA / CA / RankCube / PREFER (Fig. 7a-d).

    Per the paper, TA's metric counts its scored records, while "in CA, we
    only count the number of random access times".
    """
    n = n if n is not None else scale(2000)
    dataset = server_dataset(n, seed=seed) if use_server else make_dataset(
        "U", n, dims, seed=seed
    )
    function = canonical_query(dataset.dims)
    dg = AdvancedTraveler(build_extended_graph(dataset, theta=DEFAULT_THETA, seed=seed))
    ta = ThresholdAlgorithm(dataset)
    ca = CombinedAlgorithm(dataset, lists=ta.lists)
    rankcube = RankCubeIndex(dataset)
    prefer = PreferIndex(dataset)
    name = "Server" if use_server else f"U{dims}"

    if metric == "accessed":
        runners = {
            "DG": lambda k: dg.top_k(function, k).stats.computed,
            "TA": lambda k: ta.top_k(function, k).stats.computed,
            "CA": lambda k: ca.top_k(function, k).stats.random,
            "RCube": lambda k: rankcube.top_k(function, k).stats.computed,
            "PREFER": lambda k: prefer.top_k(function, k).stats.computed,
        }
        y_label = "number of accessed records"
        fig = "Fig.7(a/b)"
    elif metric == "time":
        runners = {
            "DG": lambda k: _best_time(lambda: dg.top_k(function, k)),
            "TA": lambda k: _best_time(lambda: ta.top_k(function, k)),
            "CA": lambda k: _best_time(lambda: ca.top_k(function, k)),
            "RCube": lambda k: _best_time(lambda: rankcube.top_k(function, k)),
            "PREFER": lambda k: _best_time(lambda: prefer.top_k(function, k)),
        }
        y_label = "query response time (seconds)"
        fig = "Fig.7(c/d)"
    else:
        raise ValueError(f"unknown metric {metric!r}")
    return sweep(
        title=f"{fig} ({name}, n={n}): {y_label} vs k",
        x_label="k",
        xs=list(ks),
        runners=runners,
        y_label=y_label,
    )


# ----------------------------------------------------------------------
# Experiment 3 — Fig. 8: DG maintenance
# ----------------------------------------------------------------------
def fig8_maintenance(
    operation: str,
    kinds: Sequence[str] = ("U", "G", "R"),
    n: int | None = None,
    batches: Sequence[int] | None = None,
    dims: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Cumulative insertion/deletion time vs batch size (Fig. 8a/b).

    The paper inserts/deletes 1K..10K records into 1,000K-record datasets
    (0.1%..1%); the scaled default touches the same fractions of the
    scaled base.
    """
    if operation not in ("insert", "delete"):
        raise ValueError("operation must be 'insert' or 'delete'")
    n = n if n is not None else scale(2000)
    if batches is None:
        step = max(2, n // 100)
        batches = [step * i for i in range(1, 6)]
    batches = sorted(int(b) for b in batches)
    max_batch = batches[-1]

    def runner_for(kind: str) -> Callable[[int], float]:
        # One graph per dataset kind; checkpoints record cumulative time,
        # like the paper's "running time vs number of operations" curves.
        if operation == "insert":
            dataset = make_dataset(kind, n + max_batch, dims, seed=seed)
            graph = build_dominant_graph(dataset, record_ids=range(n))
            pending = list(range(n, n + max_batch))
        else:
            dataset = make_dataset(kind, n, dims, seed=seed)
            graph = build_dominant_graph(dataset)
            rng = random.Random(seed)
            pending = rng.sample(range(n), max_batch)
        state = {"done": 0, "elapsed": 0.0}

        def run(batch: int) -> float:
            while state["done"] < batch:
                rid = pending[state["done"]]
                with Timer() as timer:
                    if operation == "insert":
                        insert_record(graph, rid)
                    else:
                        delete_record(graph, rid)
                state["elapsed"] += timer.elapsed
                state["done"] += 1
            return state["elapsed"]

        return run

    return sweep(
        title=f"Fig.8 ({operation}, n={n}, m={dims}): cumulative time vs batch",
        x_label=f"records {operation}d",
        xs=batches,
        runners={f"{kind}_{dims}": runner_for(kind) for kind in kinds},
        y_label="processing time (seconds)",
    )


def fig8_rebuild_comparison(
    n: int | None = None,
    batch: int | None = None,
    dims: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """DG incremental maintenance vs ONION/AppRI re-construction.

    Reproduces the paper's closing numbers for Experiment 3 (19,000s ONION
    vs 14s DG for the same insertion batch, at their scale): the layer
    baselines have no incremental path, so each insertion re-peels/re-ranks
    the affected suffix (ONION) or the full index (AppRI).
    """
    n = n if n is not None else scale(400)
    batch = batch if batch is not None else max(5, n // 40)
    dataset = make_dataset("U", n + batch, dims, seed=seed)

    def dg_time(b: int) -> float:
        graph = build_dominant_graph(dataset, record_ids=range(n))
        with Timer() as timer:
            for rid in range(n, n + b):
                insert_record(graph, rid)
        return timer.elapsed

    def onion_time(b: int) -> float:
        onion = OnionIndex(
            Dataset(dataset.values[: n + b], attribute_names=dataset.attribute_names),
            record_ids=range(n),
        )
        with Timer() as timer:
            for rid in range(n, n + b):
                onion.insert_and_rebuild(rid)
        return timer.elapsed

    def appri_time(b: int) -> float:
        with Timer() as timer:
            for extra in range(1, b + 1):
                AppRIIndex(
                    Dataset(dataset.values[: n + extra]), extra_queries=16, seed=seed
                )
        return timer.elapsed

    # ONION indexes only the pre-batch records, inserting the rest; AppRI
    # (no documented incremental path) rebuilds per insertion.
    return sweep(
        title=f"Experiment 3 (U{dims}, n={n}): maintenance vs re-construction",
        x_label="records inserted",
        xs=[batch],
        runners={"DG": dg_time, "ONION": onion_time, "AppRI-rebuild": appri_time},
        y_label="processing time (seconds)",
    )


# ----------------------------------------------------------------------
# Experiment 4 — Fig. 9: high dimension and the worst case
# ----------------------------------------------------------------------
def fig9_highdim(
    n: int | None = None,
    dims: int = 10,
    ways: int = 2,
    ks: Sequence[int] = DEFAULT_KS,
    metric: str = "accessed",
    seed: int = 0,
) -> ExperimentResult:
    """N-Way Traveler vs TA/CA on 10-dimensional uniform data (Fig. 9a/b)."""
    n = n if n is not None else scale(1000)
    dataset = make_dataset("U", n, dims, seed=seed)
    function = canonical_query(dims)
    nway = NWayTraveler(
        dataset, NWayTraveler.even_split(dims, ways), theta=DEFAULT_THETA, seed=seed
    )
    ta = ThresholdAlgorithm(dataset)
    ca = CombinedAlgorithm(dataset, lists=ta.lists)
    return _traveler_vs_lists(
        f"Fig.9(a/b) (U{dims}, n={n}, {ways}-way)",
        nway, ta, ca, function, ks, metric, traveler_label="N-Way",
    )


def fig9_worstcase(
    n: int | None = None,
    dims: int = 5,
    ks: Sequence[int] = DEFAULT_KS,
    metric: str = "accessed",
    seed: int = 0,
) -> ExperimentResult:
    """Advanced Traveler vs TA/CA when every record is a skyline point."""
    n = n if n is not None else scale(1000)
    dataset = all_skyline(n, dims, seed=seed)
    function = canonical_query(dims)
    advanced = AdvancedTraveler(build_extended_graph(dataset, theta=DEFAULT_THETA, seed=seed))
    ta = ThresholdAlgorithm(dataset)
    ca = CombinedAlgorithm(dataset, lists=ta.lists)
    return _traveler_vs_lists(
        f"Fig.9(c/d) (all-skyline, n={n}, m={dims})",
        advanced, ta, ca, function, ks, metric, traveler_label="A-Traveler",
    )


def _traveler_vs_lists(
    title: str,
    traveler,
    ta: ThresholdAlgorithm,
    ca: CombinedAlgorithm,
    function: LinearFunction,
    ks: Sequence[int],
    metric: str,
    traveler_label: str,
) -> ExperimentResult:
    if metric == "accessed":
        runners = {
            traveler_label: lambda k: traveler.top_k(function, k).stats.computed,
            "TA": lambda k: ta.top_k(function, k).stats.computed,
            "CA": lambda k: ca.top_k(function, k).stats.random,
        }
        y_label = "number of accessed records"
    elif metric == "time":
        runners = {
            traveler_label: lambda k: _best_time(lambda: traveler.top_k(function, k)),
            "TA": lambda k: _best_time(lambda: ta.top_k(function, k)),
            "CA": lambda k: _best_time(lambda: ca.top_k(function, k)),
        }
        y_label = "query response time (seconds)"
    else:
        raise ValueError(f"unknown metric {metric!r}")
    return sweep(
        title=f"{title}: {y_label} vs k",
        x_label="k",
        xs=list(ks),
        runners=runners,
        y_label=y_label,
    )


# ----------------------------------------------------------------------
# Cost-model validation (Theorems 3.1 / 3.2)
# ----------------------------------------------------------------------
def cost_model(
    n: int | None = None,
    dims: int = 3,
    ks: Sequence[int] = DEFAULT_KS,
    seed: int = 0,
) -> ExperimentResult:
    """Measured Basic-Traveler cost vs Theorem 3.1/3.2 predictions."""
    n = n if n is not None else scale(2000)
    dataset = make_dataset("U", n, dims, seed=seed)
    function = canonical_query(dims)
    basic = BasicTraveler(build_dominant_graph(dataset))
    return sweep(
        title=f"Theorem 3.2 validation (U{dims}, n={n})",
        x_label="k",
        xs=list(ks),
        runners={
            "measured": lambda k: basic.top_k(function, k).stats.computed,
            "thm3.1-exact": lambda k: predicted_cost(dataset, function, k),
            "thm3.2-estimate": lambda k: estimated_cost(n, dims, k),
        },
        y_label="number of accessed records",
    )


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def ablation_theta(
    thetas: Sequence[int] = (8, 32, 128, 512),
    n: int | None = None,
    dims: int = 5,
    k: int = 50,
    seed: int = 0,
) -> ExperimentResult:
    """Pseudo-level threshold θ vs accessed records (Section IV-A choice)."""
    n = n if n is not None else scale(2000)
    dataset = make_dataset("U", n, dims, seed=seed)
    function = canonical_query(dims)
    base = build_dominant_graph(dataset)

    def run(theta: int) -> float:
        graph = build_dominant_graph(dataset)
        extend_with_pseudo_levels(graph, theta=theta, seed=seed)
        return AdvancedTraveler(graph).top_k(function, k).stats.computed

    result = sweep(
        title=f"Ablation: θ (U{dims}, n={n}, k={k}), first layer={len(base.layer(0))}",
        x_label="theta",
        xs=list(thetas),
        runners={"A-Traveler": run},
        y_label="number of accessed records",
    )
    return result


def ablation_nway(
    ways_options: Sequence[int] = (1, 2, 5),
    n: int | None = None,
    dims: int = 10,
    k: int = 50,
    seed: int = 0,
) -> ExperimentResult:
    """Dimension-partition width ablation (Section IV-C choice).

    Two series expose the trade-off: full-record F evaluations (the
    TA-comparable "random access" count) grow with the number of ways —
    more streams surface more distinct candidates before the combined
    bound β converges — while the records *touched* by graph traversal
    show the 1-way degeneration: a single 10-d DG has almost no dominance,
    so its stream walks essentially the whole dataset.
    """
    n = n if n is not None else scale(800)
    dataset = make_dataset("U", n, dims, seed=seed)
    function = canonical_query(dims)
    cache: dict = {}

    def stats_for(ways: int):
        if ways not in cache:
            traveler = NWayTraveler(
                dataset, NWayTraveler.even_split(dims, ways),
                theta=DEFAULT_THETA, seed=seed,
            )
            cache[ways] = traveler.top_k(function, k).stats
        return cache[ways]

    return sweep(
        title=f"Ablation: N-way split (U{dims}, n={n}, k={k})",
        x_label="ways",
        xs=list(ways_options),
        runners={
            "F-computed": lambda ways: stats_for(ways).computed,
            "touched": lambda ways: stats_for(ways).computed
            + stats_for(ways).examined,
        },
        y_label="records (full F evaluations / total touched)",
    )
