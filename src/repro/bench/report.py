"""Plain-text reporting for reproduced figures.

Benchmarks print each figure as an aligned table (x column + one column
per algorithm) and append it to ``benchmarks/results/<name>.txt`` so the
numbers that EXPERIMENTS.md cites are regenerable artifacts.
"""

from __future__ import annotations

import os

from repro.bench.harness import ExperimentResult


def format_table(result: ExperimentResult) -> str:
    """Render an experiment as an aligned plain-text table."""
    headers = [result.x_label] + [s.label for s in result.series]
    rows = [[_fmt(v) for v in row] for row in result.as_rows()]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = [
        f"== {result.title} ==",
        f"   ({result.y_label})",
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def save_result(result: ExperimentResult, directory: str, name: str) -> str:
    """Write the table to ``directory/name.txt``; return the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(format_table(result) + "\n")
    return path


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)
