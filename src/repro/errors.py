"""Typed error hierarchy for the serving layer.

A production deployment of the Dominant Graph index must never turn a
damaged file, a runaway query, or an engine bug into either a crash deep
inside numpy or — worse — a silently wrong answer.  Every failure the
serving layer can detect is surfaced through one of the classes below, so
callers can catch :class:`ReproError` and know they have covered every
structured failure mode, or catch a specific subclass to react to one.

Hierarchy
---------
``ReproError``
    Base class.  Also mixes into the stdlib types callers historically
    caught, so tightening an ``except ValueError`` to
    ``except IndexCorruptionError`` is a refinement, not a migration.

``IndexCorruptionError`` (also a ``ValueError``)
    A persisted index failed integrity checks: unreadable archive,
    checksum mismatch, missing/ill-shaped arrays, inconsistent id ranges,
    or an unsupported format version.  Carries ``path`` and the name of
    the offending ``array`` when known.  Raised by
    :mod:`repro.core.io` before any damaged byte can reach a query.

``StaleSnapshotError`` (also a ``RuntimeError``)
    A :class:`~repro.core.compiled.CompiledDG` was queried after its
    source graph mutated.  Recompile, or let
    :func:`repro.core.guard.run_query` do it for you.

``InvariantViolation`` (also a ``RuntimeError``)
    An internal invariant the paper's correctness argument relies on
    (Definition 2.3/2.4 layer and edge properties, the Extended DG
    pseudo cover, the guard's tier chain) was found broken at runtime.
    Always a bug — in this codebase or in a caller that mutated
    structures behind the index's back — never a recoverable condition.

``QueryBudgetExceeded``
    A guarded query ran past its wall-clock deadline or its
    accessed-record budget (see :mod:`repro.core.guard`).  Carries the
    budget ``kind`` (``"records"`` or ``"time"``), the ``limit``, and
    what was actually ``spent``.

``DeadlineExceeded`` (a ``QueryBudgetExceeded``)
    An end-to-end request deadline (:class:`repro.resilience.Deadline`)
    expired before the request finished.  Subclasses
    :class:`QueryBudgetExceeded` with ``kind="time"`` so every existing
    budget handler — the guard's never-degrade-around-budgets path, the
    retry loop's fatal set, the CLI's exit code 3 — applies unchanged.

``CircuitOpenError`` (also a ``RuntimeError``)
    A circuit breaker (:class:`repro.resilience.CircuitBreaker`) is open
    for the requested dependency: recent calls failed at a rate past the
    threshold, and the cooldown has not elapsed.  The call was rejected
    *before* doing any work; callers degrade to the next tier or retry
    after the breaker's cooldown.

``WALCorruptionError`` (also a ``ValueError``)
    A write-ahead log failed an integrity check beyond the torn tail a
    crash legitimately leaves behind (see :mod:`repro.serve.wal`).
    Carries the ``path`` and byte ``offset`` of the damage when known.

``StoreCorruptionError`` (an ``IndexCorruptionError``)
    A memory-mapped store file (:mod:`repro.store`) failed an integrity
    check: bad magic, a header/TOC digest mismatch, a truncated payload,
    or a section whose SHA-256 no longer matches its bytes.  Carries the
    ``path`` and the offending ``section`` when the damage is localized.
    Subclasses :class:`IndexCorruptionError` so every existing
    corruption handler (``repro doctor``, recovery, the degradation
    ladder) applies unchanged.

``StoreStaleError`` (also a ``RuntimeError``)
    A store file is intact but no longer matches the source it claims to
    index: its staleness stamp (source dataset version, applied WAL
    sequence, or format version) disagrees with what the opener
    expected.  Serving it would be consistent-but-outdated, which the
    stamp discipline exists to prevent; rebuild or republish instead.

``ServiceUnavailable`` (also a ``RuntimeError``)
    A :class:`~repro.serve.index.ServingIndex` cannot take the request:
    it is draining for shutdown, already closed, or its writer was
    poisoned by a mid-mutation fault and needs a restart-with-recovery.

``ServiceOverloaded`` (a ``ServiceUnavailable``)
    Query admission shed the request: too many queries were already
    running or waiting.  The request was rejected *before* doing any
    work, so retrying after a backoff is safe.

``DegradedResultWarning`` (also a ``UserWarning``)
    Not an error: emitted via :mod:`warnings` when the serving layer
    answered, but from a lower tier than requested (engine fallback) or
    from a repaired index.  The answer is still correct — the warning
    records that redundancy, not luck, produced it.

``ParallelExecutionError`` (also a ``RuntimeError``)
    The multi-process query fabric (:mod:`repro.parallel`) could not
    complete a task: a worker reported a query error, or workers kept
    dying faster than the pool could respawn them.  Single-process
    engines remain available; callers typically retry without the
    fabric.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every typed error raised by the serving layer."""


class IndexCorruptionError(ReproError, ValueError):
    """A persisted index failed an integrity check and was not loaded.

    Parameters
    ----------
    reason:
        Human-readable description of the first check that failed.
    path:
        The archive being loaded, when known.
    array:
        Name of the offending npz array, when the damage is localized.
    """

    def __init__(
        self,
        reason: str,
        *,
        path: str | None = None,
        array: str | None = None,
    ) -> None:
        self.reason = reason
        self.path = path
        self.array = array
        detail = reason
        if array is not None:
            detail = f"{detail} [array={array!r}]"
        if path is not None:
            detail = f"{detail} ({path})"
        super().__init__(detail)


class StaleSnapshotError(ReproError, RuntimeError):
    """A compiled snapshot was queried after its source graph mutated."""


class InvariantViolation(ReproError, RuntimeError):
    """An internal structural invariant was found broken at runtime.

    Raised where the code proves itself wrong: a skyline routine that
    makes no progress, a pseudo-cover repair that fails to cover, a
    degradation chain that ran no tier.  Subclasses ``RuntimeError`` so
    pre-PR-2 callers that caught the builtin keep working.
    """


class QueryBudgetExceeded(ReproError):
    """A guarded query exceeded its record or wall-clock budget.

    Attributes
    ----------
    kind:
        ``"records"`` (accessed-record budget) or ``"time"`` (deadline).
    limit:
        The configured budget (record count, or milliseconds).
    spent:
        What the query had consumed when the budget tripped.
    tier:
        Which serving tier was running (set by the guard).
    """

    def __init__(
        self, kind: str, limit: float, spent: float, tier: str = ""
    ) -> None:
        self.kind = kind
        self.limit = limit
        self.spent = spent
        self.tier = tier
        unit = "records" if kind == "records" else "ms"
        super().__init__(
            f"query exceeded its {kind} budget: "
            f"spent {spent:g} of {limit:g} {unit}"
        )


class DeadlineExceeded(QueryBudgetExceeded):
    """An end-to-end request deadline expired before the request finished.

    Attributes
    ----------
    stage:
        The pipeline stage that observed the expiry (``"admission"``,
        ``"guard"``, ``"fabric"``, ``"kernel"``, ...) — for debugging
        which layer the time went to, not for control flow.

    ``kind``/``limit``/``spent``/``tier`` follow the
    :class:`QueryBudgetExceeded` contract with ``kind="time"``: the
    limit is the request's total deadline in milliseconds and ``spent``
    is the wall-clock elapsed when the expiry was observed.
    """

    def __init__(
        self,
        limit_ms: float,
        spent_ms: float,
        *,
        stage: str = "",
        tier: str = "",
    ) -> None:
        super().__init__("time", limit_ms, spent_ms, tier=tier)
        self.stage = stage
        if stage:
            self.args = (f"{self.args[0]} [stage={stage}]",)


class CircuitOpenError(ReproError, RuntimeError):
    """A circuit breaker rejected the call before any work was done.

    Attributes
    ----------
    name:
        The breaker's name (e.g. ``"tier:compiled"``, ``"worker:2"``).
    retry_after:
        Seconds until the breaker will admit a half-open probe.
    """

    def __init__(self, name: str, retry_after: float) -> None:
        self.name = name
        self.retry_after = retry_after
        super().__init__(
            f"circuit {name!r} is open; retry after {retry_after:.3f}s"
        )


class WALCorruptionError(ReproError, ValueError):
    """A write-ahead log is damaged beyond its (tolerated) torn tail.

    A crash mid-append legitimately leaves a partial final record; the
    WAL reader silently drops that.  This error covers everything else:
    a missing or mangled file header, a record whose CRC fails with
    further valid records behind it, or a sequence number that moves
    backwards — all signs the log was corrupted, not merely torn.

    Parameters
    ----------
    reason:
        Human-readable description of the first check that failed.
    path:
        The log file being read, when known.
    offset:
        Byte offset of the damage within the file, when localized.
    """

    def __init__(
        self,
        reason: str,
        *,
        path: str | None = None,
        offset: int | None = None,
    ) -> None:
        self.reason = reason
        self.path = path
        self.offset = offset
        detail = reason
        if offset is not None:
            detail = f"{detail} [offset={offset}]"
        if path is not None:
            detail = f"{detail} ({path})"
        super().__init__(detail)


class StoreCorruptionError(IndexCorruptionError):
    """A memory-mapped store file failed an integrity check.

    Parameters
    ----------
    reason:
        Human-readable description of the first check that failed.
    path:
        The store file being opened or scrubbed, when known.
    section:
        Name of the damaged section, when the damage is localized
        (also exposed as :attr:`IndexCorruptionError.array` so generic
        corruption tooling reports it).
    """

    def __init__(
        self,
        reason: str,
        *,
        path: str | None = None,
        section: str | None = None,
    ) -> None:
        super().__init__(reason, path=path, array=section)
        self.section = section


class StoreStaleError(ReproError, RuntimeError):
    """A store file is intact but stamped for a different source state.

    Attributes
    ----------
    field:
        Which stamp field disagreed (``"source_version"``,
        ``"applied_seq"``, ``"format_version"``, or ``"generation"``).
    expected / found:
        The value the opener required versus the one in the file.
    path:
        The store file, when known.
    """

    def __init__(
        self,
        field: str,
        expected: object,
        found: object,
        *,
        path: str | None = None,
    ) -> None:
        self.field = field
        self.expected = expected
        self.found = found
        self.path = path
        detail = (
            f"store stamp mismatch on {field}: expected {expected!r}, "
            f"file carries {found!r}"
        )
        if path is not None:
            detail = f"{detail} ({path})"
        super().__init__(detail)


class ServiceUnavailable(ReproError, RuntimeError):
    """The serving index cannot take this request right now.

    Attributes
    ----------
    reason:
        Why: ``"draining"`` (shutdown in progress), ``"closed"``, or
        ``"poisoned"`` (a mid-mutation fault left the in-memory graph
        suspect; reads still serve from the last published snapshot,
        writes need a restart-with-recovery).
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        message = f"serving index unavailable: {reason}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class ServiceOverloaded(ServiceUnavailable):
    """Query admission shed the request before any work was done.

    Attributes
    ----------
    active:
        Queries running when the request was shed.
    waiting:
        Queries queued for admission when the request was shed.
    """

    def __init__(self, active: int, waiting: int) -> None:
        self.active = active
        self.waiting = waiting
        ReproError.__init__(
            self,
            f"query admission shed the request: {active} running, "
            f"{waiting} waiting",
        )
        self.reason = "overloaded"


class ParallelExecutionError(ReproError, RuntimeError):
    """The multi-process query fabric could not complete a task.

    Raised by :class:`repro.parallel.ParallelQueryExecutor` when a worker
    reports a query-time error (the message carries the worker-side
    exception summary) or when the pool exhausts its respawn budget while
    trying to heal crashed workers mid-batch.
    """


class DegradedResultWarning(ReproError, UserWarning):
    """The answer is correct but was produced by a degraded path.

    Emitted (via :func:`warnings.warn`) when a query engine failed and a
    lower tier answered, or when a corrupt index was repaired on load.
    """
