"""The ``.dgs`` on-disk format: header, section table, checksums.

A store file is a versioned container of named numpy arrays laid out for
``mmap`` serving (see ``docs/storage.md`` for the byte-level spec):

- a fixed little-endian **header** (magic, format version, section
  count, TOC size, total file size, and the staleness stamp binding the
  file to its source: generation, source dataset version, applied WAL
  sequence, first-layer size, payload kind);
- a **section table** of fixed-size entries (name, dtype, shape, byte
  offset, byte length, SHA-256 of the section bytes);
- a 32-byte **header digest** (SHA-256 over every header+table byte
  before it), closing the TOC;
- the section payloads, each starting on a :data:`ALIGNMENT`-byte
  boundary so mapped views are SIMD- and cacheline-aligned.

Two verification tiers fall out of the layout.  *Fast* verification
(:func:`read_toc`) reads only the TOC — magic, version, header digest,
and a file-size check — so a multi-gigabyte index opens in O(header)
time without touching a single section page.  *Deep* verification
(:meth:`repro.store.mapped.MappedStore.verify`) re-hashes every section
against its table digest and attributes any damage to the specific
section, the same per-array discipline as the ``.npz`` manifest in
:mod:`repro.core.io`.

Writes are crash-safe by protocol, not by luck: :func:`write_store`
assembles the full byte image, writes it to a temp file in the target
directory, fsyncs, atomically ``os.replace``\\ s it over the target, and
fsyncs the directory — the same temp+rename+dirsync dance as the WAL
checkpoints, so a reader can never observe a torn file under the final
name.  :func:`serialize_store` exposes the exact byte stream so the
crash tests can truncate it at every offset.
"""

from __future__ import annotations

import hashlib
import os
import struct
from dataclasses import dataclass

import numpy as np

from repro.core.io import fsync_directory
from repro.errors import StoreCorruptionError

#: First eight bytes of every store file; the trailing digit is the
#: major layout revision (bumped only on incompatible layout changes).
MAGIC = b"DGSTORE1"

#: Format version of files this build writes.
FORMAT_VERSION = 1

#: Versions this build can read.
SUPPORTED_VERSIONS = (1,)

#: Section payloads start on this byte boundary inside the file
#: (matches :data:`repro.parallel.shm.ALIGNMENT` so a mapped view has
#: the same alignment guarantees as a shared-memory one).
ALIGNMENT = 64

#: SHA-256 digest size, used for both section and header digests.
DIGEST_SIZE = 32

#: magic, format_version, section_count, toc_bytes, file_bytes,
#: generation, source_version, applied_seq, first_layer_size, kind.
_HEADER = struct.Struct("<8sIIQQQQQQ16s")

#: name, dtype, ndim, reserved, shape[4], offset, nbytes, sha256.
_SECTION = struct.Struct("<32s16sIIQQQQQQ32s")

#: Longest section name / dtype string the fixed-width table can hold.
_NAME_BYTES = 32
_DTYPE_BYTES = 16
_MAX_NDIM = 4


@dataclass(frozen=True)
class SectionSpec:
    """Location, type, and digest of one section inside a store file."""

    name: str
    dtype: str
    shape: tuple
    offset: int
    nbytes: int
    sha256: bytes


@dataclass(frozen=True)
class StoreStamp:
    """The staleness stamp binding a store file to its source.

    ``kind`` names the payload vocabulary (``"compiled"`` for the flat
    :class:`~repro.core.compiled.CompiledDG` arrays, ``"graph"`` for a
    full checkpoint payload).  ``source_version`` is the source graph's
    mutation counter at serialization time and ``applied_seq`` the WAL
    sequence the payload includes — together they decide whether the
    file still describes the data it claims to index.
    """

    kind: str
    generation: int = 0
    source_version: int = 0
    applied_seq: int = 0
    first_layer_size: int = 0
    format_version: int = FORMAT_VERSION

    def to_dict(self) -> dict:
        """JSON-ready form for audits and health probes."""
        return {
            "kind": self.kind,
            "generation": self.generation,
            "source_version": self.source_version,
            "applied_seq": self.applied_seq,
            "first_layer_size": self.first_layer_size,
            "format_version": self.format_version,
        }


@dataclass(frozen=True)
class StoreInfo:
    """Everything fast verification learns: stamp, TOC, and extents."""

    stamp: StoreStamp
    sections: tuple
    toc_bytes: int
    file_bytes: int

    def spec(self, name: str) -> SectionSpec:
        """The table entry for ``name``; raises ``KeyError`` if absent."""
        for section in self.sections:
            if section.name == name:
                return section
        raise KeyError(name)

    @property
    def section_names(self) -> tuple:
        """Section names in file order."""
        return tuple(section.name for section in self.sections)


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def section_digest(array: np.ndarray) -> bytes:
    """SHA-256 over a section's raw bytes (C-contiguous, as stored)."""
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(array).tobytes())
    return digest.digest()


def _encode_name(name: str, width: int, label: str) -> bytes:
    raw = name.encode("ascii")
    if not raw or len(raw) > width:
        raise ValueError(
            f"store {label} {name!r} must be 1..{width} ASCII bytes"
        )
    return raw.ljust(width, b"\x00")


def _pack_toc(
    specs: "tuple[SectionSpec, ...]", stamp: StoreStamp, file_bytes: int
) -> bytes:
    toc_bytes = _HEADER.size + len(specs) * _SECTION.size + DIGEST_SIZE
    head = _HEADER.pack(
        MAGIC,
        int(stamp.format_version),
        len(specs),
        toc_bytes,
        int(file_bytes),
        int(stamp.generation),
        int(stamp.source_version),
        int(stamp.applied_seq),
        int(stamp.first_layer_size),
        _encode_name(stamp.kind, 16, "kind"),
    )
    body = bytearray(head)
    for spec in specs:
        shape = tuple(spec.shape) + (0,) * (_MAX_NDIM - len(spec.shape))
        body += _SECTION.pack(
            _encode_name(spec.name, _NAME_BYTES, "section name"),
            _encode_name(spec.dtype, _DTYPE_BYTES, "dtype"),
            len(spec.shape),
            0,
            *[int(dim) for dim in shape],
            int(spec.offset),
            int(spec.nbytes),
            spec.sha256,
        )
    body += hashlib.sha256(bytes(body)).digest()
    return bytes(body)


def plan_sections(
    arrays: "dict[str, np.ndarray]",
) -> "tuple[tuple[SectionSpec, ...], int, int]":
    """``(specs, toc_bytes, file_bytes)`` for a payload, in input order.

    Section payloads start at the first :data:`ALIGNMENT` boundary past
    the TOC, and every section start is re-aligned, mirroring the
    shared-memory layout in :mod:`repro.parallel.shm`.
    """
    names = list(arrays)
    toc_bytes = _HEADER.size + len(names) * _SECTION.size + DIGEST_SIZE
    cursor = _aligned(toc_bytes)
    specs = []
    for name in names:
        array = np.ascontiguousarray(arrays[name])
        if array.ndim > _MAX_NDIM:
            raise ValueError(
                f"section {name!r} is {array.ndim}-d; the table holds "
                f"at most {_MAX_NDIM} dimensions"
            )
        cursor = _aligned(cursor)
        specs.append(
            SectionSpec(
                name=name,
                dtype=array.dtype.str,
                shape=tuple(int(dim) for dim in array.shape),
                offset=cursor,
                nbytes=int(array.nbytes),
                sha256=section_digest(array),
            )
        )
        cursor += int(array.nbytes)
    return tuple(specs), toc_bytes, cursor


def serialize_store(
    arrays: "dict[str, np.ndarray]", stamp: StoreStamp
) -> bytes:
    """The complete byte image of a store file for this payload.

    This is the exact stream :func:`write_store` puts on disk; the
    torn-write tests truncate it at every offset to enumerate the crash
    states a killed publish can leave behind.
    """
    specs, _toc_bytes, file_bytes = plan_sections(arrays)
    image = bytearray(file_bytes)
    toc = _pack_toc(specs, stamp, file_bytes)
    image[: len(toc)] = toc
    for spec in specs:
        raw = np.ascontiguousarray(arrays[spec.name]).tobytes()
        image[spec.offset : spec.offset + spec.nbytes] = raw
    return bytes(image)


def write_store(
    path: str,
    arrays: "dict[str, np.ndarray]",
    stamp: StoreStamp,
    *,
    durable: bool = True,
) -> str:
    """Crash-safely write a store file; returns the path written.

    Temp file in the target directory, optional fsync, atomic
    ``os.replace``, optional directory fsync — a reader can never
    observe a torn file under the final name, and with ``durable=True``
    the finished file also survives power loss.  ``durable=False`` skips
    both fsyncs for derived data whose loss a restart can regenerate
    (the fabric's snapshot spool).
    """
    image = serialize_store(arrays, stamp)
    directory = os.path.dirname(os.path.abspath(path))
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(image)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if durable:
            fsync_directory(directory)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path


def _decode_name(raw: bytes, path: str, label: str) -> str:
    try:
        return raw.rstrip(b"\x00").decode("ascii")
    except UnicodeDecodeError as exc:
        raise StoreCorruptionError(
            f"non-ASCII {label} in section table: {exc}", path=path
        ) from exc


def read_toc(path: str, *, expected_size: "int | None" = None) -> StoreInfo:
    """Fast verification: read and check the TOC without touching sections.

    Validates the magic, format version, header digest, and the stated
    file size against the real one — O(header) work however large the
    payload is, which is what makes multi-gigabyte cold opens cheap.
    Raises :class:`~repro.errors.StoreCorruptionError` on any mismatch
    and ``FileNotFoundError`` when the file is simply absent.
    """
    with open(path, "rb") as handle:
        head = handle.read(_HEADER.size)
        if len(head) < _HEADER.size:
            raise StoreCorruptionError(
                f"file is {len(head)} bytes, shorter than the "
                f"{_HEADER.size}-byte header",
                path=path,
            )
        (
            magic,
            format_version,
            section_count,
            toc_bytes,
            file_bytes,
            generation,
            source_version,
            applied_seq,
            first_layer_size,
            kind_raw,
        ) = _HEADER.unpack(head)
        if magic != MAGIC:
            raise StoreCorruptionError(
                f"bad magic {magic!r} (expected {MAGIC!r})", path=path
            )
        if format_version not in SUPPORTED_VERSIONS:
            raise StoreCorruptionError(
                f"unsupported store format version {format_version} "
                f"(this build reads {SUPPORTED_VERSIONS})",
                path=path,
            )
        expected_toc = (
            _HEADER.size + section_count * _SECTION.size + DIGEST_SIZE
        )
        if toc_bytes != expected_toc:
            raise StoreCorruptionError(
                f"TOC claims {toc_bytes} bytes but {section_count} "
                f"sections need {expected_toc}",
                path=path,
            )
        rest = handle.read(toc_bytes - _HEADER.size)
        if len(rest) < toc_bytes - _HEADER.size:
            raise StoreCorruptionError(
                "file ends inside the section table", path=path
            )
    table, digest = rest[:-DIGEST_SIZE], rest[-DIGEST_SIZE:]
    if hashlib.sha256(head + table).digest() != digest:
        raise StoreCorruptionError(
            "header digest mismatch (TOC bytes were altered)", path=path
        )
    real_size = (
        os.path.getsize(path) if expected_size is None else expected_size
    )
    if real_size != file_bytes:
        raise StoreCorruptionError(
            f"file is {real_size} bytes but the header states "
            f"{file_bytes} (torn or truncated write)",
            path=path,
        )
    sections = []
    for index in range(section_count):
        entry = _SECTION.unpack_from(table, index * _SECTION.size)
        name = _decode_name(entry[0], path, "section name")
        dtype = _decode_name(entry[1], path, "dtype")
        ndim = int(entry[2])
        if ndim > _MAX_NDIM:
            raise StoreCorruptionError(
                f"section table entry claims {ndim} dimensions",
                path=path,
                section=name,
            )
        shape = tuple(int(dim) for dim in entry[4 : 4 + ndim])
        offset, nbytes, sha256 = int(entry[8]), int(entry[9]), entry[10]
        if offset + nbytes > file_bytes or offset < toc_bytes:
            raise StoreCorruptionError(
                "section extent falls outside the file",
                path=path,
                section=name,
            )
        try:
            itemsize = np.dtype(dtype).itemsize
        except TypeError as exc:
            raise StoreCorruptionError(
                f"unparseable dtype {dtype!r}: {exc}",
                path=path,
                section=name,
            ) from exc
        count = 1
        for dim in shape:
            count *= dim
        if count * itemsize != nbytes:
            raise StoreCorruptionError(
                f"shape {shape} x dtype {dtype} is {count * itemsize} "
                f"bytes, table says {nbytes}",
                path=path,
                section=name,
            )
        sections.append(
            SectionSpec(
                name=name,
                dtype=dtype,
                shape=shape,
                offset=offset,
                nbytes=nbytes,
                sha256=sha256,
            )
        )
    stamp = StoreStamp(
        kind=_decode_name(kind_raw, path, "kind"),
        generation=int(generation),
        source_version=int(source_version),
        applied_seq=int(applied_seq),
        first_layer_size=int(first_layer_size),
        format_version=int(format_version),
    )
    return StoreInfo(
        stamp=stamp,
        sections=tuple(sections),
        toc_bytes=int(toc_bytes),
        file_bytes=int(file_bytes),
    )
