"""Delta-overlay sidecars in the binary store container.

The base+delta overlay (:mod:`repro.core.overlay`) keeps the durable
truth in the WAL — recovery replays operations and recompiles, which
*is* a compaction — so the overlay sidecar is derived data: a
``kind="delta"`` store file spooled next to the checkpoint on every
delta publish, letting ``repro doctor`` and offline tooling inspect the
unfolded changes without replaying the log.  Losing, tearing, or
corrupting the sidecar therefore costs nothing: the serving index
ignores a sidecar it cannot read and removes it after every compaction
(the overlay it described has been folded into the base).

Staleness stamps bind the sidecar to its position in the store
rotation: ``generation`` is the base generation the overlay applies to
and ``applied_seq`` the WAL sequence of the last folded-in operation —
a sidecar whose stamps do not match the live base is stale by
definition and discarded on sight.
"""

from __future__ import annotations

import numpy as np

from repro.core.overlay import DeltaOverlay
from repro.errors import StoreCorruptionError
from repro.store.format import StoreStamp, write_store
from repro.store.mapped import open_store

#: Payload vocabulary of ``kind="delta"`` files, in layout order.
DELTA_SECTIONS = (
    "delta_ids",
    "delta_values",
    "deleted_rows",
)


def save_delta_store(
    overlay: DeltaOverlay,
    path: str,
    *,
    base_generation: int = 0,
    applied_seq: int = 0,
    durable: bool = False,
) -> str:
    """Write an overlay sidecar as a ``.dgs`` store file.

    Non-durable by default: the sidecar is derived data rewritten on
    every delta publish, and an O(changes) publish path cannot afford
    an fsync per mutation for a file recovery never needs.  The rename
    is still atomic, so readers only ever see a complete sidecar.
    """
    if not path.endswith(".dgs"):
        path = path + ".dgs"
    arrays = {
        "delta_ids": np.asarray(overlay.delta_ids, dtype=np.int64),
        "delta_values": np.asarray(overlay.delta_values, dtype=np.float64),
        "deleted_rows": np.asarray(overlay.deleted_rows, dtype=np.int64),
    }
    write_store(
        path,
        arrays,
        StoreStamp(
            kind="delta",
            generation=int(base_generation),
            source_version=0,
            applied_seq=int(applied_seq),
        ),
        durable=durable,
    )
    return path


def load_delta_store(path: str) -> "tuple[DeltaOverlay, StoreStamp]":
    """Load an overlay sidecar written by :func:`save_delta_store`.

    Runs the container's deep verification (sidecars are tiny); returns
    the reconstructed overlay together with its stamp so callers can
    check ``generation`` / ``applied_seq`` against the live base before
    trusting it.  Raises the container's typed corruption errors on any
    damage — callers treat that as "no sidecar", never as fatal.
    """
    with open_store(path, deep=True) as store:
        stamp = store.info.stamp
        payload = {
            name: np.array(view, copy=True)
            for name, view in store.sections().items()
        }
    missing = [name for name in DELTA_SECTIONS if name not in payload]
    if missing:
        raise StoreCorruptionError(
            f"delta sidecar {path} is missing sections: {missing}"
        )
    overlay = DeltaOverlay(
        delta_ids=payload["delta_ids"],
        delta_values=payload["delta_values"],
        deleted_rows=payload["deleted_rows"],
    )
    return overlay, stamp
