"""Crash-safe, checksummed, memory-mapped index storage.

The durable home of a precomputed Dominant Graph: a versioned binary
container (:mod:`repro.store.format`) written atomically and served
zero-copy through read-only ``mmap`` views (:mod:`repro.store.mapped`),
rotated as generation-numbered files behind a ``CURRENT`` pointer with
quarantine-based recovery (:mod:`repro.store.directory`), re-verified
continuously by a background scrubber (:mod:`repro.store.scrub`), and
able to carry either a compiled snapshot (``kind="compiled"``, for the
parallel fabric) or a full graph checkpoint (``kind="graph"``, for the
serving index — :mod:`repro.store.graphstore`).

See ``docs/storage.md`` for the byte-level format specification and the
recovery matrix.
"""

from repro.store.directory import (
    CURRENT_NAME,
    QUARANTINE_DIR,
    STORE_FMT,
    StoreDirectory,
)
from repro.store.format import (
    ALIGNMENT,
    FORMAT_VERSION,
    MAGIC,
    SectionSpec,
    StoreInfo,
    StoreStamp,
    plan_sections,
    read_toc,
    section_digest,
    serialize_store,
    write_store,
)
from repro.store.graphstore import (
    GRAPH_SECTIONS,
    load_graph_store,
    save_graph_store,
)
from repro.store.mapped import (
    COMPILED_SECTIONS,
    MappedSnapshot,
    MappedStore,
    StoreSnapshotHandle,
    attach_store,
    open_store,
)
from repro.store.scrub import StoreScrubber

__all__ = [
    "ALIGNMENT",
    "COMPILED_SECTIONS",
    "CURRENT_NAME",
    "FORMAT_VERSION",
    "GRAPH_SECTIONS",
    "MAGIC",
    "MappedSnapshot",
    "MappedStore",
    "QUARANTINE_DIR",
    "STORE_FMT",
    "SectionSpec",
    "StoreDirectory",
    "StoreInfo",
    "StoreScrubber",
    "StoreSnapshotHandle",
    "StoreStamp",
    "attach_store",
    "load_graph_store",
    "open_store",
    "plan_sections",
    "read_toc",
    "save_graph_store",
    "section_digest",
    "serialize_store",
    "write_store",
]
