"""Generation-numbered store files behind an atomic ``CURRENT`` pointer.

A :class:`StoreDirectory` manages one directory of ``store-<gen>.dgs``
files the way the serving index manages its checkpoints: every publish
writes a brand-new generation crash-safely, then atomically repoints a
small ``CURRENT`` file at it, so readers always find either the old
complete generation or the new complete generation — never a torn one.
Superseded generations are unlinked after the pointer moves; POSIX keeps
them readable for any process still mapping them.

Recovery discipline: a file that fails verification is never served and
never silently deleted — :meth:`StoreDirectory.open_current` moves it
into ``quarantine/`` (evidence for ``repro doctor``) and raises the
typed error, letting the caller fall down the degradation ladder
(recompile from source, republish).  :meth:`StoreDirectory.audit` is the
doctor's read-only sweep: orphaned generations, a missing or dangling
``CURRENT``, stamp mismatches, and quarantined files.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.io import fsync_directory
from repro.errors import StoreCorruptionError
from repro.store.format import StoreInfo, StoreStamp, read_toc, write_store
from repro.store.mapped import (
    COMPILED_SECTIONS,
    MappedStore,
    StoreSnapshotHandle,
    open_store,
)

#: The pointer file naming the live generation.
CURRENT_NAME = "CURRENT"

#: Store files are named ``store-<generation>.dgs``.
STORE_FMT = "store-{generation:016d}.dgs"
STORE_SUFFIX = ".dgs"

#: Damaged files are moved here, never deleted or served.
QUARANTINE_DIR = "quarantine"


def _is_store_name(name: str) -> bool:
    return name.startswith("store-") and name.endswith(STORE_SUFFIX)


def _generation_of(name: str) -> "int | None":
    if not _is_store_name(name):
        return None
    stem = name[len("store-") : -len(STORE_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        return None


class StoreDirectory:
    """One directory of generation-numbered store files.

    Parameters
    ----------
    root:
        The directory (created if absent).
    keep:
        Completed generations to retain behind the current one; older
        ones are unlinked after each publish.  ``0`` keeps only the
        current generation — the fabric's snapshot spool uses that.
    """

    def __init__(self, root: str, *, keep: int = 0) -> None:
        self.root = os.path.abspath(root)
        self.keep = int(keep)
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths and pointer management
    # ------------------------------------------------------------------
    def path_for(self, generation: int) -> str:
        """Absolute path of a generation's store file."""
        return os.path.join(self.root, STORE_FMT.format(generation=generation))

    @property
    def current_path(self) -> str:
        """Absolute path of the ``CURRENT`` pointer file."""
        return os.path.join(self.root, CURRENT_NAME)

    def read_current(self) -> "tuple[str, int] | None":
        """``(path, generation)`` from ``CURRENT``, or None when absent.

        A present-but-unreadable pointer raises
        :class:`~repro.errors.StoreCorruptionError` — a missing pointer
        means "no generation published yet", a mangled one means damage.
        """
        try:
            with open(self.current_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            name = payload["store"]
            generation = int(payload["generation"])
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise StoreCorruptionError(
                f"unreadable CURRENT pointer: {exc}", path=self.current_path
            ) from exc
        if _generation_of(name) != generation:
            raise StoreCorruptionError(
                f"CURRENT names {name!r} but claims generation {generation}",
                path=self.current_path,
            )
        return os.path.join(self.root, name), generation

    def _write_current(self, generation: int, *, durable: bool) -> None:
        payload = {
            "store": STORE_FMT.format(generation=generation),
            "generation": generation,
        }
        tmp = f"{self.current_path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                if durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, self.current_path)
            if durable:
                fsync_directory(self.root)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def _next_generation(self) -> int:
        generations = [
            gen
            for name in os.listdir(self.root)
            if (gen := _generation_of(name)) is not None
        ]
        current = self.read_current()
        if current is not None:
            generations.append(current[1])
        return max(generations, default=0) + 1

    # ------------------------------------------------------------------
    # Publish
    # ------------------------------------------------------------------
    def publish(
        self,
        arrays: "dict[str, np.ndarray]",
        stamp: StoreStamp,
        *,
        durable: bool = True,
    ) -> "tuple[str, int]":
        """Write the next generation and repoint ``CURRENT`` at it.

        Returns ``(path, generation)``.  The sequence — crash-safe store
        write, atomic pointer flip, then orphan collection — means a
        kill at *any* byte offset leaves the directory serving exactly
        the previous generation (the torn-write tests enumerate every
        offset to prove it).  ``durable=False`` drops the fsyncs for
        spool directories whose contents a restart regenerates.
        """
        generation = self._next_generation()
        path = self.path_for(generation)
        write_store(
            path,
            arrays,
            StoreStamp(
                kind=stamp.kind,
                generation=generation,
                source_version=stamp.source_version,
                applied_seq=stamp.applied_seq,
                first_layer_size=stamp.first_layer_size,
                format_version=stamp.format_version,
            ),
            durable=durable,
        )
        self._write_current(generation, durable=durable)
        self.collect_orphans()
        return path, generation

    def publish_compiled(
        self,
        compiled: "object",
        *,
        epoch: int = 0,
        applied_seq: int = 0,
        durable: bool = True,
    ) -> StoreSnapshotHandle:
        """Publish a :class:`CompiledDG` as the next generation.

        Returns the picklable handle the parallel fabric ships to
        workers in place of a shared-memory one.
        """
        arrays = {
            name: getattr(compiled, name) for name in COMPILED_SECTIONS
        }
        path, generation = self.publish(
            arrays,
            StoreStamp(
                kind="compiled",
                source_version=int(getattr(compiled, "source_version", 0)),
                applied_seq=int(applied_seq),
                first_layer_size=int(compiled.first_layer_size),
            ),
            durable=durable,
        )
        return StoreSnapshotHandle(
            path=path, epoch=int(epoch), generation=generation
        )

    # ------------------------------------------------------------------
    # Open / recovery
    # ------------------------------------------------------------------
    def open_current(
        self,
        *,
        deep: bool = False,
        expect: "StoreStamp | None" = None,
    ) -> MappedStore:
        """Open the live generation; quarantine it if verification fails.

        Raises ``FileNotFoundError`` when no generation has been
        published, :class:`~repro.errors.StoreCorruptionError` after
        moving a damaged file to ``quarantine/`` (it is never served and
        never destroyed), and :class:`~repro.errors.StoreStaleError`
        when ``expect`` disagrees with the stamp (stale files are *not*
        quarantined — they are intact, just outdated).
        """
        current = self.read_current()
        if current is None:
            raise FileNotFoundError(
                f"no CURRENT pointer in {self.root}; nothing published yet"
            )
        path, _generation = current
        try:
            return open_store(path, deep=deep, expect=expect)
        except StoreCorruptionError:
            self.quarantine(path)
            raise

    def quarantine(self, path: str) -> "str | None":
        """Move a damaged file into ``quarantine/``; returns the new path.

        Keeps the evidence for post-mortem (``repro doctor`` lists it)
        while guaranteeing no later open can serve it.  Returns None if
        the file disappeared meanwhile.
        """
        if not os.path.exists(path):
            return None
        pen = os.path.join(self.root, QUARANTINE_DIR)
        os.makedirs(pen, exist_ok=True)
        target = os.path.join(pen, os.path.basename(path))
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(
                pen, f"{os.path.basename(path)}.{suffix}"
            )
        os.replace(path, target)
        fsync_directory(self.root)
        return target

    def quarantined(self) -> "list[str]":
        """Basenames currently held in ``quarantine/``, sorted."""
        pen = os.path.join(self.root, QUARANTINE_DIR)
        if not os.path.isdir(pen):
            return []
        return sorted(os.listdir(pen))

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def generations(self) -> "list[int]":
        """Generation numbers present on disk, ascending."""
        return sorted(
            gen
            for name in os.listdir(self.root)
            if (gen := _generation_of(name)) is not None
        )

    def collect_orphans(self) -> "list[str]":
        """Unlink generations older than ``CURRENT`` minus ``keep``.

        Also removes stray ``.tmp.*`` files a killed publish left
        behind.  Never touches the current generation, newer ones (a
        concurrent publisher may be mid-flip), or quarantine.  Returns
        the basenames removed.
        """
        current = self.read_current()
        removed: "list[str]" = []
        for name in sorted(os.listdir(self.root)):
            full = os.path.join(self.root, name)
            if ".tmp." in name and os.path.isfile(full):
                os.unlink(full)
                removed.append(name)
                continue
            generation = _generation_of(name)
            if generation is None or current is None:
                continue
            if generation <= current[1] - 1 - self.keep:
                os.unlink(full)
                removed.append(name)
        return removed

    def clear(self) -> None:
        """Remove every store file, the pointer, and quarantine."""
        pen = os.path.join(self.root, QUARANTINE_DIR)
        if os.path.isdir(pen):
            for name in os.listdir(pen):
                os.unlink(os.path.join(pen, name))
            os.rmdir(pen)
        for name in os.listdir(self.root):
            full = os.path.join(self.root, name)
            if name == CURRENT_NAME or _is_store_name(name) or ".tmp." in name:
                if os.path.isfile(full):
                    os.unlink(full)

    # ------------------------------------------------------------------
    # Audit (repro doctor)
    # ------------------------------------------------------------------
    def audit(self) -> dict:
        """Read-only health sweep for ``repro doctor --json``.

        Returns a JSON-ready dict: the live generation and its stamp (or
        the typed error that kept it from opening), generations on disk,
        orphans (present but unreferenced by ``CURRENT``), stray temp
        files, and quarantined basenames.  Never mutates the directory.
        """
        report: dict = {
            "root": self.root,
            "current": None,
            "generation": None,
            "stamp": None,
            "generations": self.generations(),
            "orphans": [],
            "temp_files": sorted(
                name for name in os.listdir(self.root) if ".tmp." in name
            ),
            "quarantined": self.quarantined(),
            "issues": [],
        }
        def close_out(report: dict) -> dict:
            # Hygiene findings are appended whatever state the CURRENT
            # chain was left in — a quarantine backlog next to a corrupt
            # pointer is exactly when the operator needs to see both.
            if report["quarantined"]:
                report["issues"].append(
                    f"{len(report['quarantined'])} quarantined file(s) "
                    "awaiting inspection"
                )
            if report["temp_files"]:
                report["issues"].append(
                    f"{len(report['temp_files'])} stray temp file(s) from "
                    "an interrupted publish"
                )
            return report

        try:
            current = self.read_current()
        except StoreCorruptionError as exc:
            report["issues"].append(f"CURRENT pointer corrupt: {exc}")
            return close_out(report)
        if current is None:
            if report["generations"]:
                report["issues"].append(
                    "store files present but CURRENT is missing"
                )
                report["orphans"] = [
                    STORE_FMT.format(generation=gen)
                    for gen in report["generations"]
                ]
            return close_out(report)
        path, generation = current
        report["current"] = os.path.basename(path)
        report["generation"] = generation
        report["orphans"] = [
            STORE_FMT.format(generation=gen)
            for gen in report["generations"]
            if gen != generation and gen <= generation - 1 - self.keep
        ]
        if not os.path.exists(path):
            report["issues"].append(
                f"CURRENT points at missing file {os.path.basename(path)}"
            )
            return close_out(report)
        try:
            info: StoreInfo = read_toc(path)
        except StoreCorruptionError as exc:
            report["issues"].append(f"current generation corrupt: {exc}")
            return close_out(report)
        report["stamp"] = info.stamp.to_dict()
        if info.stamp.generation != generation:
            report["issues"].append(
                f"stamp mismatch: CURRENT claims generation {generation}, "
                f"file is stamped {info.stamp.generation}"
            )
        return close_out(report)
