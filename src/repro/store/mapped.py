"""Zero-copy, read-only ``mmap`` serving of store files.

:class:`MappedStore` maps a verified ``.dgs`` file and exposes each
section as a read-only numpy view straight into the page cache — no
section bytes are read until a query touches them, and N processes
mapping the same file share one physical copy (the same property the
shared-memory fabric gets from ``/dev/shm``, now with durability).

The mapping is created with ``mmap.ACCESS_READ``, so every view is
born read-only: a stray write through a mapped array raises at the
interpreter level instead of silently corrupting the file for every
process sharing it.  The ``mmap-discipline`` lint rule holds this module
(and every consumer of its views) to that contract statically.

POSIX semantics carry the fabric's rotation trick over unchanged: an
unlinked-but-mapped file stays fully readable until the last mapping
closes, so a publisher may unlink a superseded generation immediately
while workers finish in-flight queries on it.

:func:`attach_store` adapts a mapped file to the worker-side
:class:`~repro.parallel.shm.AttachedSnapshot` interface (``.compiled``,
``.epoch``, ``.close``) so the parallel fabric can serve from a file
handle exactly as it serves from a shared-memory one.
"""

from __future__ import annotations

import mmap
import weakref
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.compiled import CompiledDG
from repro.errors import StoreCorruptionError, StoreStaleError
from repro.store.format import (
    SectionSpec,
    StoreInfo,
    StoreStamp,
    read_toc,
    section_digest,
)

#: Section vocabulary of ``kind="compiled"`` files, in layout order —
#: deliberately identical to :data:`repro.parallel.shm.ARRAY_FIELDS` so
#: the two transports describe the same snapshot the same way.
COMPILED_SECTIONS = (
    "values",
    "record_ids",
    "layer_index",
    "pseudo_mask",
    "children_indptr",
    "children_indices",
    "parents_indptr",
    "parents_indices",
    "indegree",
)


def _view(buffer: mmap.mmap, spec: SectionSpec) -> np.ndarray:
    """A read-only numpy view of one section (no copy, no page reads)."""
    count = 1
    for dim in spec.shape:
        count *= dim
    flat = np.frombuffer(
        buffer, dtype=np.dtype(spec.dtype), count=count, offset=spec.offset
    )
    return flat.reshape(spec.shape)


def _release(mapping: mmap.mmap) -> None:
    """Drop the mapping; tolerates live views (reclaimed at exit)."""
    try:
        mapping.close()
    except BufferError:
        # A numpy view outlived the store object; the mapping stays
        # until the process exits rather than crashing the closer.
        pass


class MappedStore:
    """A verified store file served through a read-only mapping.

    Construction runs fast verification (:func:`repro.store.format.read_toc`)
    and maps the file ``ACCESS_READ``; no section page is touched until a
    view is dereferenced, which is what keeps multi-gigabyte cold opens
    at O(header).  :meth:`verify` re-hashes sections on demand — the deep
    check the open path deliberately skips.
    """

    def __init__(self, path: str, info: StoreInfo, mapping: mmap.mmap) -> None:
        self.path = path
        self.info = info
        self._mapping: Optional[mmap.mmap] = mapping
        self._finalizer = weakref.finalize(self, _release, mapping)

    @property
    def stamp(self) -> StoreStamp:
        """The staleness stamp read (and digest-verified) at open time."""
        return self.info.stamp

    @property
    def closed(self) -> bool:
        """True once the mapping has been released."""
        return self._mapping is None

    def close(self) -> None:
        """Release the mapping (invalidates all views).  Idempotent."""
        self._mapping = None
        self._finalizer()

    def __enter__(self) -> "MappedStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _buffer(self) -> mmap.mmap:
        if self._mapping is None:
            raise ValueError(f"mapped store {self.path} is closed")
        return self._mapping

    def section(self, name: str) -> np.ndarray:
        """Read-only view of a section; ``KeyError`` if absent."""
        return _view(self._buffer(), self.info.spec(name))

    def sections(self) -> "dict[str, np.ndarray]":
        """Read-only views of every section, in file order."""
        buffer = self._buffer()
        return {
            spec.name: _view(buffer, spec) for spec in self.info.sections
        }

    def verify_section(self, name: str) -> None:
        """Re-hash one section against its table digest.

        Raises :class:`~repro.errors.StoreCorruptionError` naming the
        section on mismatch.  This is the scrubber's unit of work.
        """
        spec = self.info.spec(name)
        if section_digest(_view(self._buffer(), spec)) != spec.sha256:
            raise StoreCorruptionError(
                "section checksum mismatch (bytes differ from the "
                "digest recorded at write time)",
                path=self.path,
                section=name,
            )

    def verify(self) -> None:
        """Deep verification: re-hash every section.  O(file size)."""
        for spec in self.info.sections:
            self.verify_section(spec.name)

    def compiled(self) -> CompiledDG:
        """The mapped :class:`CompiledDG` (``kind="compiled"`` files only).

        Arrays are views into the mapping — zero copies, shared pages —
        and read-only by construction.
        """
        stamp = self.info.stamp
        if stamp.kind != "compiled":
            raise StoreCorruptionError(
                f"file holds a {stamp.kind!r} payload, not a compiled "
                "snapshot",
                path=self.path,
            )
        missing = [
            name
            for name in COMPILED_SECTIONS
            if name not in self.info.section_names
        ]
        if missing:
            raise StoreCorruptionError(
                "compiled payload is missing required sections",
                path=self.path,
                section=missing[0],
            )
        arrays = {name: self.section(name) for name in COMPILED_SECTIONS}
        return CompiledDG(
            values=arrays["values"],
            record_ids=arrays["record_ids"],
            layer_index=arrays["layer_index"],
            pseudo_mask=arrays["pseudo_mask"],
            children_indptr=arrays["children_indptr"],
            children_indices=arrays["children_indices"],
            parents_indptr=arrays["parents_indptr"],
            parents_indices=arrays["parents_indices"],
            indegree=arrays["indegree"],
            first_layer_size=stamp.first_layer_size,
            source_version=stamp.source_version,
        )

    def __repr__(self) -> str:
        return (
            f"MappedStore(path={self.path!r}, "
            f"kind={self.info.stamp.kind!r}, "
            f"generation={self.info.stamp.generation}, closed={self.closed})"
        )


def open_store(
    path: str,
    *,
    deep: bool = False,
    expect: "StoreStamp | None" = None,
) -> MappedStore:
    """Open a store file: fast-verify the TOC, map it read-only.

    Parameters
    ----------
    path:
        The ``.dgs`` file.
    deep:
        Also re-hash every section before returning (O(file size); the
        default fast path is O(header) and never reads section pages).
    expect:
        When given, the file's stamp must agree on ``kind``,
        ``source_version``, and ``applied_seq`` (non-zero expectations
        only) or :class:`~repro.errors.StoreStaleError` is raised —
        this is the staleness discipline that keeps a stale-but-intact
        file from being served as current.
    """
    info = read_toc(path)
    if expect is not None:
        _check_stamp(info.stamp, expect, path)
    with open(path, "rb") as handle:
        mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    store = MappedStore(path, info, mapping)
    if deep:
        try:
            store.verify()
        except StoreCorruptionError:
            store.close()
            raise
    return store


def _check_stamp(found: StoreStamp, expect: StoreStamp, path: str) -> None:
    if found.kind != expect.kind:
        raise StoreStaleError("kind", expect.kind, found.kind, path=path)
    if expect.source_version and found.source_version != expect.source_version:
        raise StoreStaleError(
            "source_version",
            expect.source_version,
            found.source_version,
            path=path,
        )
    if expect.applied_seq and found.applied_seq != expect.applied_seq:
        raise StoreStaleError(
            "applied_seq", expect.applied_seq, found.applied_seq, path=path
        )


@dataclass(frozen=True)
class StoreSnapshotHandle:
    """Picklable pointer to a published compiled-snapshot store file.

    The file-backed twin of :class:`repro.parallel.shm.SnapshotHandle`:
    ship it to worker processes and :func:`attach_store` turns it back
    into a read-only :class:`CompiledDG` with zero copies.  It carries
    the path rather than a layout — the layout lives in the file's own
    verified TOC, so a worker can never map with a stale description.
    """

    path: str
    epoch: int
    generation: int


class MappedSnapshot:
    """Worker-side view of a file-published snapshot.

    Interface-compatible with
    :class:`~repro.parallel.shm.AttachedSnapshot` (``compiled``,
    ``epoch``, ``close``, ``closed``) so the fabric's workers hot-swap
    between shared-memory and file transports without caring which one
    delivered the epoch.
    """

    def __init__(self, store: MappedStore, epoch: int) -> None:
        self._store = store
        self._compiled: Optional[CompiledDG] = store.compiled()
        self.epoch = epoch

    @property
    def compiled(self) -> CompiledDG:
        """The mapped snapshot; raises after :meth:`close`."""
        if self._compiled is None:
            raise ValueError("snapshot attachment is closed")
        return self._compiled

    @property
    def closed(self) -> bool:
        """True once the mapping has been released."""
        return self._compiled is None

    def close(self) -> None:
        """Release the mapping (drops the views first).  Idempotent."""
        self._compiled = None
        self._store.close()

    def __enter__(self) -> "MappedSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"MappedSnapshot(path={self._store.path!r}, "
            f"epoch={self.epoch}, closed={self.closed})"
        )


def attach_store(handle: StoreSnapshotHandle) -> MappedSnapshot:
    """Map a published store file in the current process, read-only.

    Fast verification runs on every attach, so a worker can never serve
    from a file whose TOC was tampered with or torn — it fails with
    :class:`~repro.errors.StoreCorruptionError` and the fabric's healing
    machinery takes over.  Raises ``FileNotFoundError`` when the
    generation was already unlinked by a newer publish (the same benign
    race the shared-memory transport tolerates).
    """
    store = open_store(handle.path)
    return MappedSnapshot(store, handle.epoch)
