"""Background scrubbing: catch bit rot before a query does.

Checksums only help if someone re-checks them: a section that rots
*after* a deep verify passes would otherwise be served until the next
restart.  :class:`StoreScrubber` is a daemon thread that walks the
current store's sections round-robin, re-hashing one section per tick
against its TOC digest, so the whole file is re-verified every
``sections x interval`` seconds at a bounded, configurable I/O cost.

On a mismatch it does three things, in order:

1. records a failure on the store's circuit breaker (the existing
   :class:`~repro.resilience.breaker.BreakerBoard` machinery — repeated
   hits open the breaker and the serving layer stops routing to the
   mapped tier);
2. invokes the ``on_corruption`` callback with the typed
   :class:`~repro.errors.StoreCorruptionError` (the serving index uses
   this to quarantine the file and republish from source — the
   mmap → recompile-from-source → reference ladder);
3. stops scrubbing the damaged store (the callback replaces it; serving
   a corpse twice teaches nothing).

The scrubber never raises into its host: a typed corruption error is a
*detection*, handled through the callback, and any other failure is
recorded on the breaker and counted in :meth:`StoreScrubber.stats`.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.errors import StoreCorruptionError
from repro.store.mapped import MappedStore


class StoreScrubber:
    """Re-checksum a mapped store's sections, one per tick, forever.

    Parameters
    ----------
    store:
        The mapped store to scrub.  Replaceable at runtime via
        :meth:`replace` (after recovery republishes a clean file).
    interval:
        Seconds between section checks.  One *section* — not the whole
        file — is hashed per tick, keeping steady-state I/O small.
    breaker:
        Optional circuit breaker recording scrub outcomes; corruption
        records a failure, a clean pass over a full cycle a success.
    on_corruption:
        Callback invoked (from the scrubber thread) with the
        :class:`~repro.errors.StoreCorruptionError` when a section fails.
    """

    def __init__(
        self,
        store: "MappedStore | None",
        *,
        interval: float = 1.0,
        breaker: "object | None" = None,
        on_corruption: Optional[
            Callable[[StoreCorruptionError], None]
        ] = None,
    ) -> None:
        self.interval = float(interval)
        self._breaker = breaker
        self._on_corruption = on_corruption
        self._lock = threading.Lock()
        self._store: Optional[MappedStore] = store
        self._cursor = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._checks = 0
        self._cycles = 0
        self._corruptions = 0
        self._errors = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "StoreScrubber":
        """Start the daemon thread.  Idempotent."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="store-scrubber", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the thread to exit and join it.  Idempotent."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def replace(self, store: "MappedStore | None") -> None:
        """Swap in a new store (or None to pause) after recovery."""
        with self._lock:
            self._store = store
            self._cursor = 0

    # ------------------------------------------------------------------
    # The scrub loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.scrub_once()

    def scrub_once(self) -> "str | None":
        """Check the next section; returns its name, or None when idle.

        Public so tests (and ``repro doctor``) can drive a full cycle
        synchronously instead of waiting out the interval.
        """
        with self._lock:
            store = self._store
            cursor = self._cursor
        if store is None or store.closed:
            return None
        names = store.info.section_names
        if not names:
            return None
        name = names[cursor % len(names)]
        try:
            store.verify_section(name)
        except StoreCorruptionError as exc:
            self._note_corruption(store, exc)
            return name
        except ValueError:
            # The store was closed between the check above and the hash;
            # the replacement will be scrubbed on the next tick.
            return None
        with self._lock:
            self._checks += 1
            self._cursor = cursor + 1
            if self._cursor % len(names) == 0:
                self._cycles += 1
                if self._breaker is not None:
                    self._breaker.record_success()
        return name

    def _note_corruption(
        self, store: MappedStore, exc: StoreCorruptionError
    ) -> None:
        with self._lock:
            self._checks += 1
            self._corruptions += 1
            # Stop scrubbing the corpse; recovery installs a fresh store.
            if self._store is store:
                self._store = None
        if self._breaker is not None:
            self._breaker.record_failure()
        if self._on_corruption is not None:
            try:
                self._on_corruption(exc)
            except StoreCorruptionError:
                # Recovery re-raising the detection is redundant, not a
                # scrubber failure.
                pass
            except (OSError, RuntimeError, ValueError):
                with self._lock:
                    self._errors += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready counters for health probes and BENCH reports."""
        with self._lock:
            store = self._store
            return {
                "running": bool(
                    self._thread is not None and self._thread.is_alive()
                ),
                "path": None if store is None else store.path,
                "checks": self._checks,
                "full_cycles": self._cycles,
                "corruptions_detected": self._corruptions,
                "callback_errors": self._errors,
                "interval_s": self.interval,
            }
