"""Full graph checkpoints in the binary store container.

The serving index's checkpoints must round-trip the *mutable*
:class:`~repro.core.graph.DominantGraph` (WAL replay resumes mutation on
it), so a ``kind="graph"`` store file carries the same seven-array
payload as the npz format — produced by
:func:`repro.core.io.payload_from_graph` and reconstructed through the
same validation pipeline — inside the checksummed, crash-safe, mmap-able
container.  Compared to ``.npz`` the container adds the staleness stamp
(``applied_seq`` binds the checkpoint to its WAL position, in the file
itself rather than only in the ``CURRENT`` pointer), per-section SHA-256
instead of zip CRCs, and an O(header) fast-verification path.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import DominantGraph
from repro.core.io import graph_from_payload, payload_from_graph
from repro.store.format import StoreStamp, write_store
from repro.store.mapped import open_store

#: Payload vocabulary of ``kind="graph"`` files, in layout order.
GRAPH_SECTIONS = (
    "values",
    "attribute_names",
    "record_ids",
    "layer_of",
    "edges",
    "pseudo_ids",
    "pseudo_vectors",
)


def save_graph_store(
    graph: DominantGraph,
    path: str,
    *,
    applied_seq: int = 0,
    generation: int = 0,
    durable: bool = True,
) -> str:
    """Write a graph checkpoint as a ``.dgs`` store file.

    Crash-safe like :func:`repro.core.io.save_graph` (temp + rename,
    plus fsyncs when ``durable``); ``applied_seq`` is stamped into the
    header so the checkpoint itself records which WAL prefix it
    contains.  Returns the path written (``.dgs`` appended if missing).
    """
    if not path.endswith(".dgs"):
        path = path + ".dgs"
    payload = payload_from_graph(graph)
    arrays = {name: payload[name] for name in GRAPH_SECTIONS}
    write_store(
        path,
        arrays,
        StoreStamp(
            kind="graph",
            generation=int(generation),
            source_version=int(graph.version),
            applied_seq=int(applied_seq),
        ),
        durable=durable,
    )
    return path


def load_graph_store(path: str) -> DominantGraph:
    """Load a graph checkpoint written by :func:`save_graph_store`.

    Every load runs fast TOC verification, the full per-section SHA-256
    check (a checkpoint is read once at startup and fully materialized,
    so deep verification costs nothing extra), and the same structural
    validation as the npz loader.  Any failure raises a typed
    :class:`~repro.errors.StoreCorruptionError` /
    :class:`~repro.errors.IndexCorruptionError` naming the damaged
    section; a damaged checkpoint can never reach query code.
    """
    with open_store(path, deep=True) as store:
        # Materialize before the mapping closes: graph reconstruction
        # owns its arrays, the container only transports them.
        payload = {
            name: np.array(view, copy=True)
            for name, view in store.sections().items()
        }
    return graph_from_payload(payload, path)
