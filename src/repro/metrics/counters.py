"""Access accounting shared by every top-k algorithm in the repository.

The paper's evaluation (Section VI) compares algorithms by "the number of
accessed records": every record retrieved from the record set and evaluated
by the query function counts once (Definition 3.1).  Pseudo records count
too ("accessed pseudo records also count", Experiment 1).  The sorted-list
algorithms (TA/CA/NRA) additionally distinguish *sequential* accesses (a
step down one ranked list) from *random* accesses (a direct lookup of a full
record), because Fig. 7 counts only random accesses for CA.

:class:`AccessCounter` is a small mutable record of those event counts.  It
is deliberately dumb: algorithms call the ``count_*`` methods at the point
where the paper's cost model would charge the access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class AccessCounter:
    """Mutable tally of the record accesses an algorithm performed.

    Attributes
    ----------
    computed:
        Number of records evaluated by the query function F.  This is the
        paper's primary "accessed records" metric for layer-based methods
        (Definition 3.1); for the Traveler family it equals |S1|.
    pseudo_computed:
        Subset of ``computed`` that were pseudo records (Extended DG only).
    sequential:
        Sorted-list sequential accesses (TA/CA/NRA, PREFER, LPTA view scans).
    random:
        Random accesses of full records (TA/CA; the metric plotted for CA in
        Fig. 7).
    examined:
        Records touched without being scored (e.g. dominance tests during
        maintenance or skyline computation).  Not part of the paper's query
        metric, but useful for the maintenance experiments.
    """

    computed: int = 0
    pseudo_computed: int = 0
    sequential: int = 0
    random: int = 0
    examined: int = 0
    _computed_ids: set = field(default_factory=set, repr=False, compare=False)
    # Batch charges are kept as int64 array chunks and only folded into the
    # set when computed_ids is actually read: the parallel fabric ships
    # counters across process boundaries on every reply, and pickling a
    # few array buffers is ~10x cheaper than pickling thousands of ints.
    _id_chunks: list = field(default_factory=list, repr=False, compare=False)

    def count_computed(self, record_id: int | None = None, pseudo: bool = False) -> None:
        """Charge one query-function evaluation (the paper's unit of cost)."""
        self.computed += 1
        if pseudo:
            self.pseudo_computed += 1
        if record_id is not None:
            self._computed_ids.add(record_id)

    def count_computed_batch(self, record_ids, pseudo: int = 0) -> None:
        """Charge one evaluation per id in ``record_ids`` in a single call.

        ``pseudo`` is how many of them were pseudo records.  Equivalent to
        calling :meth:`count_computed` once per record; the compiled engine
        (:mod:`repro.core.compiled`) scores unlocked records in batches and
        charges them here so the tallies stay identical to the reference
        Travelers' per-record accounting.  An owning ndarray argument is
        stored by reference (callers must not mutate it afterwards); a
        *view* is copied so the counter never pins someone else's buffer
        — in particular a worker's shared-memory mapping, which must be
        closable the moment the snapshot is released.
        """
        if isinstance(record_ids, np.ndarray):
            ids = record_ids if record_ids.flags.owndata else record_ids.copy()
        else:
            ids = np.asarray(list(record_ids), dtype=np.int64)
        self.computed += int(ids.size)
        self.pseudo_computed += pseudo
        if ids.size:
            self._id_chunks.append(ids)

    def count_sequential(self, n: int = 1) -> None:
        """Charge ``n`` sequential (sorted-list) accesses."""
        self.sequential += n

    def count_random(self, n: int = 1) -> None:
        """Charge ``n`` random (full-record) accesses."""
        self.random += n

    def count_examined(self, n: int = 1) -> None:
        """Charge ``n`` records examined without scoring."""
        self.examined += n

    @property
    def accessed(self) -> int:
        """Total records charged to the paper's "accessed records" metric.

        For layer-based methods this is the number of score computations;
        for sorted-list methods the paper plots sequential+random accesses
        for TA and random accesses for CA — those are read directly off the
        ``sequential`` / ``random`` fields by the harness.
        """
        return self.computed

    @property
    def computed_ids(self) -> frozenset:
        """Identifiers of records that were scored, when callers supplied them."""
        if self._id_chunks:
            self._computed_ids.update(
                int(i) for i in np.concatenate(self._id_chunks)
            )
            self._id_chunks.clear()
        return frozenset(self._computed_ids)

    def merge(self, other: "AccessCounter") -> None:
        """Fold another counter's tallies into this one (N-Way sub-travelers)."""
        self.computed += other.computed
        self.pseudo_computed += other.pseudo_computed
        self.sequential += other.sequential
        self.random += other.random
        self.examined += other.examined
        self._computed_ids |= other._computed_ids
        self._id_chunks.extend(other._id_chunks)

    def reset(self) -> None:
        """Zero every tally (reuse one counter across benchmark repetitions)."""
        self.computed = 0
        self.pseudo_computed = 0
        self.sequential = 0
        self.random = 0
        self.examined = 0
        self._computed_ids = set()
        self._id_chunks = []

    def __getstate__(self) -> dict:
        """Compact pickle form: all charged ids as one int64 buffer.

        Counters cross process boundaries on every parallel-fabric reply;
        one consolidated array pickles as a single buffer copy instead of
        one varint per id, and unpickling stays lazy (the set is only
        rebuilt if ``computed_ids`` is read on the receiving side).
        """
        state = dict(self.__dict__)
        chunks = list(state.pop("_id_chunks"))
        ids = state.pop("_computed_ids")
        if ids:
            chunks.append(np.fromiter(ids, dtype=np.int64, count=len(ids)))
        if chunks:
            merged = np.concatenate(chunks)
            if merged.size and -(2**31) <= int(merged.min()) and (
                int(merged.max()) < 2**31
            ):
                merged = merged.astype(np.int32)  # halves the wire size
            state["_id_chunks"] = [merged]
        else:
            state["_id_chunks"] = []
        state["_computed_ids"] = set()
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
