"""Minimal wall-clock timing helper used by the benchmark harness."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        """Begin (or restart) timing outside a ``with`` block."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop timing and return the elapsed seconds."""
        assert self._start is not None, "Timer.stop() called before start()"
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed
