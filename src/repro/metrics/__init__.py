"""Instrumentation substrate: access counters and timing helpers.

Every algorithm in this repository reports its work through an
:class:`~repro.metrics.counters.AccessCounter`, which is how the paper's
primary metric ("the number of accessed records", Definition 3.1) is
measured uniformly across the Dominant Graph algorithms and all baselines.
"""

from repro.metrics.counters import AccessCounter
from repro.metrics.timing import Timer

__all__ = ["AccessCounter", "Timer"]
