"""K-Means clustering (Lloyd's algorithm with k-means++ seeding).

Section IV-A clusters the records of an oversized DG layer "by K-Means
algorithm according to Euclidean distance" before introducing one pseudo
parent per cluster.  No clustering library is assumed; this is a compact,
deterministic, numpy-vectorized implementation sufficient for that use
(layer sizes are at most a few thousand points).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a K-Means run.

    Attributes
    ----------
    centers:
        ``(k, m)`` final cluster centers.
    assignments:
        ``(n,)`` cluster index per input point.
    inertia:
        Sum of squared distances of points to their assigned center.
    iterations:
        Lloyd iterations performed before convergence or the cap.
    """

    centers: np.ndarray
    assignments: np.ndarray
    inertia: float
    iterations: int

    @property
    def n_clusters(self) -> int:
        return self.centers.shape[0]

    def members(self, cluster: int) -> np.ndarray:
        """Indices of the points assigned to one cluster."""
        return np.flatnonzero(self.assignments == cluster)


def _plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by squared-distance sampling."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0.0:
            # All remaining points coincide with a chosen center; any pick works.
            centers[i] = points[int(rng.integers(n))]
            continue
        probabilities = closest_sq / total
        choice = int(rng.choice(n, p=probabilities))
        centers[i] = points[choice]
        closest_sq = np.minimum(
            closest_sq, np.sum((points - centers[i]) ** 2, axis=1)
        )
    return centers


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    max_iter: int = 100,
    tol: float = 1e-8,
    seed: int = 0,
) -> KMeansResult:
    """Cluster ``points`` into ``n_clusters`` groups by Euclidean distance.

    Parameters
    ----------
    points:
        ``(n, m)`` array of points.
    n_clusters:
        Desired cluster count; clipped to ``n`` when larger.  Empty clusters
        (possible under Lloyd updates) are re-seeded with the point farthest
        from its current center, so every returned cluster is non-empty.
    max_iter, tol:
        Lloyd iteration cap and center-movement convergence threshold.
    seed:
        Seed for the deterministic RNG used by k-means++ and re-seeding.

    Returns
    -------
    KMeansResult with non-empty clusters covering all points.

    Examples
    --------
    >>> pts = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
    >>> result = kmeans(pts, 2)
    >>> sorted(len(result.members(c)) for c in range(result.n_clusters))
    [2, 2]
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, m) array")
    n = points.shape[0]
    k = max(1, min(int(n_clusters), n))
    rng = np.random.default_rng(seed)

    centers = _plus_plus_init(points, k, rng)
    assignments = np.zeros(n, dtype=np.intp)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        # Squared distances point->center via (a-b)^2 = a^2 - 2ab + b^2.
        sq = (
            np.sum(points**2, axis=1)[:, None]
            - 2.0 * points @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        assignments = np.argmin(sq, axis=1)

        new_centers = centers.copy()
        for c in range(k):
            members = assignments == c
            if members.any():
                new_centers[c] = points[members].mean(axis=0)
            else:
                # Re-seed an empty cluster with the worst-served point.
                worst = int(np.argmax(np.min(sq, axis=1)))
                new_centers[c] = points[worst]
        shift = float(np.max(np.sum((new_centers - centers) ** 2, axis=1)))
        centers = new_centers
        if shift <= tol:
            break

    sq = (
        np.sum(points**2, axis=1)[:, None]
        - 2.0 * points @ centers.T
        + np.sum(centers**2, axis=1)[None, :]
    )
    assignments = np.argmin(sq, axis=1)
    inertia = float(np.take_along_axis(sq, assignments[:, None], axis=1).sum())

    # Guarantee non-empty clusters for the caller (pseudo-record builder
    # creates one parent per cluster and expects members).
    for c in range(k):
        if not (assignments == c).any():
            donor = int(np.argmax(np.bincount(assignments, minlength=k)))
            donors = np.flatnonzero(assignments == donor)
            assignments[donors[0]] = c
    return KMeansResult(
        centers=centers,
        assignments=assignments,
        inertia=inertia,
        iterations=iterations,
    )
