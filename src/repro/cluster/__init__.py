"""Clustering substrate: K-Means, used to group first-layer records into
clusters when introducing pseudo records (paper Section IV-A)."""

from repro.cluster.kmeans import KMeansResult, kmeans

__all__ = ["KMeansResult", "kmeans"]
