"""Domain-aware static analysis for the Dominant Graph codebase.

The engine layers (PR 1), the robustness contracts (PR 2), and the
serving discipline (PR 3) all rest on code-level conventions — snapshot
immutability, stats threading, typed errors, deterministic tie-breaking,
single-writer WAL access, explicit dtypes, guard coverage, documented
public APIs.  This package makes those conventions machine-checked:

- :mod:`repro.analysis.engine` — the rule engine: file walker, per-rule
  AST dispatch, :class:`~repro.analysis.engine.Finding` objects, and
  ``# repro: noqa[rule-id] -- reason`` suppressions.
- :mod:`repro.analysis.rules` — the domain rules themselves, one module
  per rule.

Run it as ``repro lint`` (text or JSON output, ``--strict`` exit codes);
see ``docs/static_analysis.md`` for the rule catalog and the rationale
tying each rule to a paper invariant or PR contract.
"""

from repro.analysis.engine import (
    Finding,
    LintRun,
    ModuleContext,
    Rule,
    default_rules,
    flow_rules,
    format_json,
    format_text,
    lint_paths,
    lint_source,
    lint_tree,
)

__all__ = [
    "Finding",
    "LintRun",
    "ModuleContext",
    "Rule",
    "default_rules",
    "flow_rules",
    "format_json",
    "format_text",
    "lint_paths",
    "lint_source",
    "lint_tree",
]
