"""Rule: public APIs carry docstrings and complete annotations.

``core/`` and ``serve/`` are the contract surface other layers (CLI,
benchmarks, tests, future subsystems) build on; ``mypy --strict`` runs
over exactly these two packages in CI.  A public function without
annotations is a hole in that gate — mypy infers ``Any`` and checks
nothing downstream — and one without a docstring leaves the *semantic*
contract (what the paper calls it, what the invariants are) unwritten.

Detection: every public module-level function, and every public method
of a public class, must have a docstring, a return annotation, and an
annotation on each parameter (``self``/``cls`` excepted).  Private
helpers (leading underscore) and dunders other than ``__init__`` are
exempt — ``__init__`` must annotate its parameters (docstring optional;
the class docstring covers construction).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule


def _missing_param_annotations(args: ast.arguments) -> list[str]:
    params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    missing = [
        a.arg
        for a in params
        if a.annotation is None and a.arg not in ("self", "cls")
    ]
    for star in (args.vararg, args.kwarg):
        if star is not None and star.annotation is None:
            missing.append(star.arg)
    return missing


class PublicApiRule(Rule):
    """Public functions need docstrings and full annotations."""

    id = "public-api"
    summary = (
        "public core/serve functions must have docstrings and complete "
        "type annotations (the mypy --strict surface)"
    )
    hint = (
        "annotate every parameter and the return type, and document the "
        "contract in a docstring"
    )
    paths = ("core/", "serve/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for under-documented / under-annotated APIs."""
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node, method=False)
            elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield from self._check_function(ctx, member, method=True)

    def _check_function(
        self,
        ctx: ModuleContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        method: bool,
    ) -> Iterator[Finding]:
        name = node.name
        is_init = name == "__init__"
        if name.startswith("_") and not is_init:
            return
        label = "method" if method else "function"
        if not is_init and ast.get_docstring(node) is None:
            yield self.finding(
                ctx, node, f"public {label} {name}() has no docstring"
            )
        if not is_init and node.returns is None:
            yield self.finding(
                ctx, node, f"public {label} {name}() has no return annotation"
            )
        missing = _missing_param_annotations(node.args)
        if missing:
            listed = ", ".join(missing)
            yield self.finding(
                ctx,
                node,
                f"public {label} {name}() has un-annotated parameter(s):"
                f" {listed}",
            )
