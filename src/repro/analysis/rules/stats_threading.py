"""Rule: public query entry points accept and forward ``stats=``.

The robustness layer (PR 2) enforces record and wall-clock budgets by
handing every engine a :class:`~repro.core.guard.BudgetedAccessCounter`
through the ``stats=`` parameter — no hooks inside traversal kernels.
That only works if *every* public query entry point accepts a caller
counter and actually threads it into the traversal.  An entry point that
silently constructs its own counter is invisible to budgets (and to the
paper's Definition 3.1 accessed-records accounting the experiments
report).

Detection: a public function/method named like a query entry point in
``core/`` or ``serve/`` must declare a ``stats`` parameter and reference
it somewhere in its body.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: Query entry points that must thread ``stats=``.  ``run_query`` and
#: ``ServingIndex.query`` are deliberately absent: they *own* budget
#: enforcement and must construct the BudgetedAccessCounter themselves —
#: accepting a caller counter there would bypass the budget contract.
ENTRY_POINTS = {"top_k", "top_k_progressive", "iter_ranked", "snapshot_scan"}


def _param_names(args: ast.arguments) -> set[str]:
    names = {a.arg for a in args.posonlyargs}
    names |= {a.arg for a in args.args}
    names |= {a.arg for a in args.kwonlyargs}
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


class StatsThreadingRule(Rule):
    """Query entry points must accept — and use — a ``stats`` counter."""

    id = "stats-threading"
    summary = "public query entry points must accept and forward stats="
    hint = (
        "add `stats: AccessCounter | None = None` and pass it into the "
        "traversal so budget-enforcing counters reach every scored record"
    )
    paths = ("core/", "serve/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield a finding per entry point missing or ignoring ``stats``."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in ENTRY_POINTS or node.name.startswith("_"):
                continue
            if "stats" not in _param_names(node.args):
                yield self.finding(
                    ctx,
                    node,
                    f"query entry point {node.name}() does not accept stats=",
                )
                continue
            if not self._uses_stats(node):
                yield self.finding(
                    ctx,
                    node,
                    f"query entry point {node.name}() accepts stats= but"
                    " never forwards it",
                )

    @staticmethod
    def _uses_stats(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for stmt in func.body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Name)
                    and node.id == "stats"
                    and isinstance(node.ctx, ast.Load)
                ):
                    return True
        return False
