"""Rule: flat-array code states its dtypes explicitly.

The compiled engine (PR 1) is bit-identical to the reference only
because every array it builds has a pinned dtype: ``float64`` values,
``int32`` CSR indices, ``int64`` record ids.  A bare ``np.array(...)``
lets numpy infer — ``int64`` on Linux, ``int32`` on Windows, ``object``
for ragged input — and the persistence layer (PR 2) then round-trips
whatever it was handed, so an inferred dtype silently becomes an
on-disk format change.  In dtype-critical modules (the compiled
snapshot, the serving layer, the persistence code) every array
constructor must say what it means.

A second discipline rides the same scope since the two-precision fast
lane (PR 6): **float32 containment**.  The engine's exactness argument
allows reduced precision only inside the designated fast-lane functions
of ``core/compiled.py`` — the ``_f32``-prefixed helpers whose every
float32 result is covered by the proven error margin and the exact
float64 boundary re-check.  A float32 array anywhere else in the scoped
modules (a cast "for speed" in serving code, a float32 default leaking
into the persistence layer) silently breaks the bit-identical answer
contract, so it is flagged at the reference site.

Detection: ``np.array``/``asarray``/``zeros``/``ones``/``empty``/
``full``/``arange``/``fromiter``/``frombuffer`` without a ``dtype=``
keyword (``fromiter``/``frombuffer`` may pass dtype as the second
positional argument) in the scoped modules; plus any ``np.float32``
attribute or exact ``"float32"`` string literal outside a function whose
name starts with ``_f32``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: Constructors that infer a dtype when none is given.
CONSTRUCTORS = {
    "array", "asarray", "zeros", "ones", "empty", "full", "arange",
    "fromiter", "frombuffer",
}

#: Constructors whose second positional argument is the dtype.
DTYPE_SECOND_POSITIONAL = {"fromiter", "frombuffer"}

#: Functions allowed to touch float32: the fast lane's designated
#: helpers in core/compiled.py, whose reduced-precision results are all
#: covered by the error margin + exact float64 re-check.
FAST_LANE_PREFIX = "_f32"


def _is_float32_reference(node: ast.AST) -> bool:
    """``np.float32`` or an exact ``"float32"`` string literal."""
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "float32"
        and isinstance(node.value, ast.Name)
        and node.value.id == "np"
    ):
        return True
    return isinstance(node, ast.Constant) and node.value == "float32"


class DtypeDisciplineRule(Rule):
    """Array constructors in flat-array modules must pin their dtype."""

    id = "dtype-discipline"
    summary = (
        "flat-array modules must construct arrays with explicit dtypes, "
        "and keep float32 inside the designated _f32 fast-lane functions"
    )
    hint = (
        "pass dtype= explicitly (float64 values, int32 CSR indices, "
        "int64 record ids) so layouts cannot drift by platform or input; "
        "reduced-precision float32 belongs only in the _f32* fast-lane "
        "helpers of core/compiled.py, whose results are margin-checked"
    )
    paths = ("core/compiled.py", "core/io.py", "serve/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for dtype-less constructors and stray float32."""
        fast_lane_spans = [
            (node.lineno, node.end_lineno or node.lineno)
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name.startswith(FAST_LANE_PREFIX)
        ]
        for node in ast.walk(ctx.tree):
            if _is_float32_reference(node) and not any(
                lo <= node.lineno <= hi for lo, hi in fast_lane_spans
            ):
                yield self.finding(
                    ctx,
                    node,
                    "float32 outside a designated fast-lane (_f32*) "
                    "function breaks the bit-identical answer contract; "
                    "only the margin-checked fast lane may reduce precision",
                )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in CONSTRUCTORS
                and isinstance(func.value, ast.Name)
                and func.value.id == "np"
            ):
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if func.attr in DTYPE_SECOND_POSITIONAL and len(node.args) >= 2:
                continue
            yield self.finding(
                ctx,
                node,
                f"np.{func.attr}(...) without an explicit dtype lets the"
                " array layout depend on input and platform",
            )
