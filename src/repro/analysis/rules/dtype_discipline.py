"""Rule: flat-array code states its dtypes explicitly.

The compiled engine (PR 1) is bit-identical to the reference only
because every array it builds has a pinned dtype: ``float64`` values,
``int32`` CSR indices, ``int64`` record ids.  A bare ``np.array(...)``
lets numpy infer — ``int64`` on Linux, ``int32`` on Windows, ``object``
for ragged input — and the persistence layer (PR 2) then round-trips
whatever it was handed, so an inferred dtype silently becomes an
on-disk format change.  In dtype-critical modules (the compiled
snapshot, the serving layer, the persistence code) every array
constructor must say what it means.

Detection: ``np.array``/``asarray``/``zeros``/``ones``/``empty``/
``full``/``arange``/``fromiter``/``frombuffer`` without a ``dtype=``
keyword (``fromiter``/``frombuffer`` may pass dtype as the second
positional argument) in the scoped modules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: Constructors that infer a dtype when none is given.
CONSTRUCTORS = {
    "array", "asarray", "zeros", "ones", "empty", "full", "arange",
    "fromiter", "frombuffer",
}

#: Constructors whose second positional argument is the dtype.
DTYPE_SECOND_POSITIONAL = {"fromiter", "frombuffer"}


class DtypeDisciplineRule(Rule):
    """Array constructors in flat-array modules must pin their dtype."""

    id = "dtype-discipline"
    summary = (
        "flat-array modules must construct arrays with explicit dtypes, "
        "never bare np.array(...)"
    )
    hint = (
        "pass dtype= explicitly (float64 values, int32 CSR indices, "
        "int64 record ids) so layouts cannot drift by platform or input"
    )
    paths = ("core/compiled.py", "core/io.py", "serve/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield a finding per dtype-less array constructor call."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in CONSTRUCTORS
                and isinstance(func.value, ast.Name)
                and func.value.id == "np"
            ):
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if func.attr in DTYPE_SECOND_POSITIONAL and len(node.args) >= 2:
                continue
            yield self.finding(
                ctx,
                node,
                f"np.{func.attr}(...) without an explicit dtype lets the"
                " array layout depend on input and platform",
            )
