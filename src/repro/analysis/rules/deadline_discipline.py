"""Rule: a serving/fabric function that accepts a deadline must use it.

The end-to-end deadline contract (PR 7) only holds if every layer that
*accepts* a request :class:`~repro.resilience.deadline.Deadline` (or a
``deadline_ms`` budget) also *propagates* it — threads it into a
downstream call, enforces it (``deadline.check()``), clamps a wait with
it, or stores/returns it for a later stage.  A function that takes the
parameter and then drops it is worse than one that never took it: the
caller believes its time budget is being honoured while the work below
runs unbounded, which is exactly the silent-wedge failure mode the
deadline machinery exists to kill.

What counts as propagation:

- the name used anywhere inside a call's arguments
  (``top_k(..., deadline=deadline)``, ``Deadline.after_ms(deadline_ms)``);
- a method/attribute access on it (``deadline.check()``,
  ``deadline.clamp(timeout)``, ``deadline.remaining_ms()``);
- storing it (``self._deadline = deadline``) or returning/yielding it —
  handing the obligation to a later stage is propagation.

What does **not** count: a bare truthiness or ``is None`` test.
``if deadline is not None: pass`` inspects the deadline without ever
spending, enforcing, or forwarding it.

Scope: ``serve/`` and ``parallel/`` modules — the layers a request's
deadline must traverse on its way from admission to the kernel.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: Parameter names that carry a request's time budget.
_PARAM_NAMES = ("deadline", "deadline_ms")


def _parameters(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> list[str]:
    """Deadline-carrying parameter names of ``func``, in signature order."""
    args = func.args
    every = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    return [arg.arg for arg in every if arg.arg in _PARAM_NAMES]


def _names_in(node: ast.AST, name: str) -> bool:
    """Whether ``name`` is loaded anywhere inside ``node``'s subtree."""
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name) and inner.id == name:
            return True
    return False


class DeadlineDisciplineRule(Rule):
    """Deadline parameters in serve/parallel code must be propagated."""

    id = "deadline-discipline"
    summary = (
        "a serving/fabric function accepting a deadline must propagate, "
        "enforce, or hand it off — never silently drop it"
    )
    hint = (
        "thread the deadline into the downstream call, enforce it with "
        "deadline.check()/clamp(), or store/return it for a later stage; "
        "a bare `if deadline:` test strands the caller's time budget"
    )
    paths = ("serve/", "parallel/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield a finding per deadline parameter that is never used."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for name in _parameters(node):
                if not self._propagates(node, name):
                    yield self.finding(
                        ctx,
                        node,
                        f"function {node.name!r} accepts {name!r} but "
                        "never propagates or enforces it; the caller's "
                        "time budget is silently dropped",
                    )

    def _propagates(
        self, func: "ast.FunctionDef | ast.AsyncFunctionDef", name: str
    ) -> bool:
        # Closures count: a nested `attempt()` that calls
        # `deadline.check()` is how the retry pattern propagates the
        # outer function's deadline, so the walk deliberately descends
        # into nested function bodies.
        for stmt in func.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Attribute):
                    value = node.value
                    if isinstance(value, ast.Name) and value.id == name:
                        return True
                elif isinstance(node, ast.Call):
                    operands = [
                        *node.args,
                        *[keyword.value for keyword in node.keywords],
                    ]
                    if any(
                        _names_in(operand, name) for operand in operands
                    ) and self._callee_can_receive(func, node):
                        return True
                elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    if node.value is not None and not isinstance(
                        node.value, ast.Compare
                    ):
                        if _names_in(node.value, name):
                            return True
                elif isinstance(node, (ast.Return, ast.Yield)):
                    if node.value is not None and _names_in(node.value, name):
                        return True
        return False

    def _callee_can_receive(
        self,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        call: ast.Call,
    ) -> bool:
        """Whole-program refinement: does the callee take a deadline?

        Passing ``deadline`` into a resolved project function that has
        no deadline-shaped parameter (and no ``**kwargs``) is not
        propagation — the value lands in some unrelated positional slot
        or not at all.  Unresolved and external callees keep the benefit
        of the doubt, and without a project (plain ``repro lint``) the
        line-local behaviour stands unchanged.
        """
        project = self.project
        if project is None:
            return True
        info = project.function_for_node(func)
        if info is None:
            return True
        resolution = project.callgraph.resolve_call(info, call)
        target = resolution.target
        if target is None:
            return True
        if target.has_kwargs or any(
            param in _PARAM_NAMES for param in target.params
        ):
            return True
        # Converters that *consume* the budget (Deadline.after_ms,
        # TimeoutPolicy.deadline_for, clamp) propagate by construction.
        return target.name in ("after_ms", "deadline_for", "clamp", "__init__")
