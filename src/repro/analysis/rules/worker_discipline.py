"""Rule: fabric workers are stateless readers of the shared snapshot.

The parallel query fabric (PR 5) keeps every worker process disposable:
the executor may SIGKILL-heal a worker at any instant and re-dispatch
its tasks elsewhere, and all workers map the *same* physical snapshot
pages.  Two properties make that safe, and this rule pins both:

- **No mutation through an attached snapshot.**  Every byte a worker can
  reach through :func:`~repro.parallel.shm.attach_snapshot` is shared
  with the owner and every sibling worker; a single in-place store would
  corrupt answers pool-wide.  The arrays are frozen at runtime
  (``setflags(write=False)``), but ``setflags(write=True)`` and attribute
  rebinding would reopen the door — the same hole
  ``snapshot-immutability`` closes for in-process snapshots.
- **No module-global RNG state.**  A worker's answer must depend only on
  the task and the snapshot epoch, or bit-identical parity across
  re-dispatches (and the duplicate-reply dedup in the executor) breaks.
  Module-level ``default_rng``/``RandomState``/``Random`` bindings or
  ``seed`` calls create exactly the cross-task state that would make a
  healed worker answer differently than its predecessor.

Scope: ``parallel/`` modules — the only code that runs inside workers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: Call names that create or reseed process-wide random state.
_RNG_CALLS = {"default_rng", "RandomState", "Random", "seed"}


def _call_name(node: ast.expr) -> str | None:
    """Terminal name of a call target (``np.random.default_rng`` -> that)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_attach_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and _call_name(node.func) == "attach_snapshot"
    )


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class WorkerDisciplineRule(Rule):
    """Workers neither mutate shared snapshots nor hold global RNG state."""

    id = "worker-discipline"
    summary = (
        "fabric workers must not mutate attached snapshots or keep "
        "module-global RNG state"
    )
    hint = (
        "treat attach_snapshot() views as frozen (copy before writing) and "
        "create RNGs locally, seeded from the task, not at module scope"
    )
    paths = ("parallel/",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield a finding per shared-state hazard in a worker module."""
        yield from self._check_global_rng(ctx)
        tracked = self._tracked_names(ctx.tree)
        tracked |= self._project_tracked(ctx)
        if not tracked:
            return
        for node in ast.walk(ctx.tree):
            yield from self._check_mutation(ctx, node, tracked)

    # -- module-global RNG state --------------------------------------

    def _check_global_rng(self, ctx: ModuleContext) -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # locals made per call are task-scoped, not global
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and (
                    _call_name(node.func) in _RNG_CALLS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"module-level {_call_name(node.func)}() creates "
                        "global RNG state a healed worker would not share",
                    )

    # -- mutation through attached snapshots --------------------------

    def _tracked_names(self, tree: ast.Module) -> set[str]:
        tracked: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_attach_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tracked.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_attach_call(node.value) and isinstance(
                    node.target, ast.Name
                ):
                    tracked.add(node.target.id)
        return tracked

    def _project_tracked(self, ctx: ModuleContext) -> set[str]:
        """Whole-program refinement: attachments via resolved helpers.

        ``view = attach_snapshot(h)`` is visible line-locally, but
        ``view = attach_handle(h)`` (the dispatcher) or any project
        helper that *returns* an attachment is not.  With the call
        graph available, every name assigned from a function in the
        transitive attach set is tracked for the mutation checks.
        """
        project = self.project
        if project is None:
            return set()
        from repro.analysis.flow.resources import transitive_acquirers

        seeds = frozenset({"attach_snapshot", "attach_handle"})
        attachers = transitive_acquirers(project, seeds)
        tracked: set[str] = set()
        for func in project.functions.values():
            if func.relpath != ctx.relpath:
                continue
            for node in func.body_nodes():
                if not (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                resolution = project.callgraph.resolve_call(func, node.value)
                if (
                    resolution.target is not None
                    and resolution.target.qualname in attachers
                    and resolution.target.name not in ("close", "destroy")
                ):
                    tracked.update(
                        target.id
                        for target in node.targets
                        if isinstance(target, ast.Name)
                    )
        return tracked

    def _check_mutation(
        self, ctx: ModuleContext, node: ast.AST, tracked: set[str]
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if root in tracked:
                        yield self.finding(
                            ctx,
                            node,
                            "assignment mutates shared snapshot "
                            f"{root!r} mapped by every worker",
                        )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "setflags"
                and _root_name(func.value) in tracked
                and self._enables_write(node)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "setflags(write=True) re-opens a shared snapshot array "
                    f"of {_root_name(func.value)!r}",
                )

    @staticmethod
    def _enables_write(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg == "write":
                return not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is False
                )
        return bool(call.args)
