"""The domain rule catalog, one module per rule.

Every rule checks one convention the codebase's correctness arguments
rely on; ``docs/static_analysis.md`` ties each to the paper invariant or
PR contract it protects.  Order here is catalog order (report order is
by file/line regardless).
"""

from repro.analysis.rules.snapshot_immutability import SnapshotImmutabilityRule
from repro.analysis.rules.stats_threading import StatsThreadingRule
from repro.analysis.rules.typed_errors import TypedErrorsRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.writer_discipline import WriterDisciplineRule
from repro.analysis.rules.dtype_discipline import DtypeDisciplineRule
from repro.analysis.rules.guard_coverage import GuardCoverageRule
from repro.analysis.rules.public_api import PublicApiRule
from repro.analysis.rules.worker_discipline import WorkerDisciplineRule
from repro.analysis.rules.deadline_discipline import DeadlineDisciplineRule
from repro.analysis.rules.mmap_discipline import MmapDisciplineRule
from repro.analysis.rules.overlay_discipline import OverlayDisciplineRule

#: Shipped rules, in catalog order.
ALL_RULES = (
    SnapshotImmutabilityRule,
    StatsThreadingRule,
    TypedErrorsRule,
    DeterminismRule,
    WriterDisciplineRule,
    DtypeDisciplineRule,
    GuardCoverageRule,
    PublicApiRule,
    WorkerDisciplineRule,
    DeadlineDisciplineRule,
    MmapDisciplineRule,
    OverlayDisciplineRule,
)

__all__ = [
    "ALL_RULES",
    "DeadlineDisciplineRule",
    "DeterminismRule",
    "DtypeDisciplineRule",
    "GuardCoverageRule",
    "MmapDisciplineRule",
    "OverlayDisciplineRule",
    "PublicApiRule",
    "SnapshotImmutabilityRule",
    "StatsThreadingRule",
    "TypedErrorsRule",
    "WorkerDisciplineRule",
    "WriterDisciplineRule",
]
