"""Rule: the typed-error discipline (PR 2) holds everywhere.

The robustness contract says a caller can catch
:class:`~repro.errors.ReproError` and know it has covered every
structured failure mode.  Two code patterns erode that contract:

- **broad handlers** — ``except:`` / ``except Exception`` /
  ``except BaseException`` swallow typed errors (including
  ``QueryBudgetExceeded``, which must *never* be silently absorbed)
  together with genuine bugs.  The few intentional sites (the guard's
  degrade-never-crash path, best-effort salvage in ``io.py``, writer
  poisoning in the serving index, the fault-injection harness) carry a
  ``# repro: noqa[typed-errors] -- reason`` each.
- **builtin raises** — ``raise RuntimeError(...)`` in ``core/`` or
  ``serve/`` where :mod:`repro.errors` has a type (invariant breaches
  should raise :class:`~repro.errors.InvariantViolation`).  ``ValueError``
  / ``TypeError`` for argument validation remain idiomatic and allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: Exception names considered too broad to catch.
BROAD = {"Exception", "BaseException"}

#: Builtins that must not be raised where a repro.errors type exists.
BANNED_RAISES = {"RuntimeError", "Exception", "BaseException"}


def _exception_names(node: ast.expr | None) -> list[tuple[str, ast.expr]]:
    """Flatten an except clause's type expression into (name, node) pairs."""
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        pairs: list[tuple[str, ast.expr]] = []
        for elt in node.elts:
            pairs.extend(_exception_names(elt))
        return pairs
    if isinstance(node, ast.Name):
        return [(node.id, node)]
    if isinstance(node, ast.Attribute):
        return [(node.attr, node)]
    return []


class TypedErrorsRule(Rule):
    """No bare/broad ``except``; no builtin raises where typed ones exist."""

    id = "typed-errors"
    summary = (
        "catch specific exceptions and raise repro.errors types, so "
        "`except ReproError` covers every structured failure"
    )
    hint = (
        "catch the specific exception(s), or raise a repro.errors class "
        "(InvariantViolation for broken internal invariants)"
    )
    paths = ()  # broad handlers are suspect anywhere in the package

    #: Where builtin raises are flagged (repro.errors types exist there).
    raise_paths = ("core/", "serve/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for broad handlers and builtin raises."""
        check_raises = any(
            ctx.relpath.startswith(prefix) for prefix in self.raise_paths
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield self.finding(
                        ctx, node, "bare `except:` swallows every failure"
                    )
                    continue
                for name, expr in _exception_names(node.type):
                    if name in BROAD:
                        if self._handler_translates(node):
                            continue
                        yield self.finding(
                            ctx,
                            node,
                            f"broad `except {name}` hides typed errors and"
                            " real bugs alike",
                        )
            elif check_raises and isinstance(node, ast.Raise):
                name = self._raised_builtin(node.exc)
                if name is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"raises builtin {name} where a typed repro.errors"
                        " class belongs",
                    )

    def _handler_translates(self, handler: ast.ExceptHandler) -> bool:
        """Whole-program refinement: a broad handler that re-raises is fine.

        Catching ``Exception`` only to re-raise it (bare ``raise`` /
        ``raise exc``) or to translate it (``raise Typed(...) from exc``
        with ``Typed`` anywhere in the project's ``repro.errors``
        hierarchy) swallows nothing — it is the boundary-translation
        idiom the error contract asks for.  Only applied when the
        project call graph is available: recognising ``Typed`` needs
        the whole-program class hierarchy, and the two exemptions must
        move together or plain-mode findings would differ unpredictably
        from flow-mode ones.
        """
        project = self.project
        if project is None:
            return False
        typed = project.repro_error_names()
        for node in ast.walk(handler):
            if not isinstance(node, ast.Raise):
                continue
            if node.exc is None:
                return True
            if (
                isinstance(node.exc, ast.Name)
                and handler.name is not None
                and node.exc.id == handler.name
            ):
                return True
            if node.cause is not None:
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                name = (
                    target.attr
                    if isinstance(target, ast.Attribute)
                    else target.id if isinstance(target, ast.Name) else ""
                )
                if name in typed:
                    return True
        return False

    @staticmethod
    def _raised_builtin(exc: ast.expr | None) -> str | None:
        if exc is None:
            return None
        target = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(target, ast.Name) and target.id in BANNED_RAISES:
            return target.id
        return None
