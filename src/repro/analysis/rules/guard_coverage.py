"""Rule: every scoring site charges the access counter.

Two contracts ride on the counter: the paper's accessed-records cost
metric (Definition 3.1 — the quantity every experiment reports), and the
budget enforcement of PR 2, where
:class:`~repro.core.guard.BudgetedAccessCounter` aborts a runaway query
from *inside* ``count_computed``/``count_computed_batch``.  A traversal
that scores records without charging the counter is invisible to both:
its cost is under-reported and a record budget cannot stop it.

Detection: within the engine modules, any function whose body evaluates
the scoring function — a ``function(...)``/``_function(...)`` call or a
``.score_many(...)``/``.score(...)`` call — must also touch a counter
method (``count_computed``, ``count_computed_batch``, or
``count_examined`` for sub-function scans like the N-Way streams).
Nested helpers are analyzed as their own scope: the charge must sit next
to the scoring call, not somewhere up the call chain where a refactor
can separate them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: Names whose call means "a record was scored".
SCORING_NAMES = {"function"}
SCORING_ATTRS = {"score_many", "score", "_function"}

#: AccessCounter methods that charge the access.
COUNTER_ATTRS = {"count_computed", "count_computed_batch", "count_examined"}


def _is_scoring_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name) and func.id in SCORING_NAMES:
        return True
    return isinstance(func, ast.Attribute) and func.attr in SCORING_ATTRS


class GuardCoverageRule(Rule):
    """Scoring without counting is invisible to budgets and cost metrics."""

    id = "guard-coverage"
    summary = (
        "engine code that scores records must charge the access counter "
        "in the same scope"
    )
    hint = (
        "call stats.count_computed(...) / count_computed_batch(...) "
        "beside the scoring call so BudgetedAccessCounter can enforce"
    )
    paths = (
        "core/traveler.py",
        "core/advanced.py",
        "core/compiled.py",
        "core/nway.py",
        "core/progressive.py",
        "core/guard.py",
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for scoring calls in counter-free scopes."""
        yield from self._walk(ctx, ctx.tree)

    def _walk(self, ctx: ModuleContext, node: ast.AST) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, child)
                yield from self._walk(ctx, child)
            else:
                yield from self._walk(ctx, child)

    def _check_scope(
        self, ctx: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        scoring: list[ast.Call] = []
        counted = False
        for node in self._own_nodes(func):
            if isinstance(node, ast.Call) and _is_scoring_call(node):
                scoring.append(node)
            if isinstance(node, ast.Attribute) and node.attr in COUNTER_ATTRS:
                counted = True
        if scoring and not counted and not self._delegates_counting(func):
            for call in scoring:
                yield self.finding(
                    ctx,
                    call,
                    f"{func.name}() scores records without charging an"
                    " access counter",
                )

    def _delegates_counting(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        """Whole-program refinement: a resolved callee may charge for us.

        ``batch_top_k``-style kernels charge ``count_computed_batch``
        inside the helper the wrapper dispatches to; with the call graph
        available, a scope is covered when any directly-called resolved
        project function touches a counter method itself.  Without a
        project (plain ``repro lint``) the line-local rule stands.
        """
        project = self.project
        if project is None:
            return False
        info = project.function_for_node(func)
        if info is None:
            return False
        for edge in project.callgraph.callees(info.qualname):
            callee = project.functions.get(edge.callee)
            if callee is None:
                continue
            if any(
                isinstance(node, ast.Attribute)
                and node.attr in COUNTER_ATTRS
                for node in callee.body_nodes()
            ):
                return True
        return False

    @staticmethod
    def _own_nodes(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[ast.AST]:
        """Walk the function body, excluding nested function scopes."""
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))
