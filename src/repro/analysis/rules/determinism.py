"""Rule: no unordered iteration or unseeded randomness in query paths.

Bit-identical parity between engines (PR 1) and the crash-recovery
equivalence proofs (PR 3) compare *exact* results, including tie order.
:class:`~repro.core.graph.DominantGraph` stores adjacency as frozensets,
so iterating ``layer()`` / ``children_of()`` / ``parents_of()`` directly
feeds Python's arbitrary set order into candidate lists, edge rebuilds,
and reports — the classic source of answers that differ between runs
with equal scores.  Every such loop must impose an explicit order
(``sorted(...)``) unless the consumer is order-insensitive
(``any``/``all``/``min``/``max``/``sum``/``len``/``set``/``frozenset``).

Unseeded randomness is the time-dependent cousin: library code must take
an explicit ``seed``/``rng`` so reruns reproduce; only application
entry points may roll dice.

Detection:

- ``for``/comprehension iteration whose iterable is a direct call to a
  set-returning graph accessor, except as the sole generator argument of
  an order-insensitive builtin;
- iteration over ``<expr>.keys()`` in the same positions (iterate the
  dict itself — insertion-ordered — or sort);
- ``default_rng()`` / legacy ``np.random.*`` global-state calls with no
  seed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: DominantGraph accessors returning frozensets (arbitrary iteration order).
SET_ACCESSORS = {"children_of", "parents_of", "layer", "layers"}

#: Builtins whose result does not depend on iteration order.
ORDER_INSENSITIVE = {
    "any", "all", "sum", "len", "min", "max", "set", "frozenset", "sorted",
}

#: Legacy numpy global-RNG functions (stateful, unseedable per-call).
LEGACY_NP_RANDOM = {"rand", "randn", "randint", "random", "shuffle", "choice"}


def _unordered_iterable(node: ast.expr) -> str | None:
    """Describe why iterating ``node`` is order-unstable, or None."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in SET_ACCESSORS:
            return f"set-returning accessor .{node.func.attr}()"
        if node.func.attr == "keys" and not node.args:
            return ".keys() view"
    return None


class DeterminismRule(Rule):
    """Explicit order for set iteration; explicit seeds for randomness."""

    id = "determinism"
    summary = (
        "query/maintenance paths must not depend on set iteration order "
        "or unseeded randomness"
    )
    hint = (
        "wrap the iterable in sorted(...) (ties break by id), or seed the "
        "RNG from an explicit parameter"
    )
    paths = ("core/", "serve/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for unordered iteration and unseeded RNG."""
        exempt = self._order_insensitive_generators(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                reason = _unordered_iterable(node.iter)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"loop iterates a {reason}: tie order varies by"
                        " run",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                if id(node) in exempt:
                    continue
                for gen in node.generators:
                    reason = _unordered_iterable(gen.iter)
                    if reason is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"comprehension iterates a {reason}: element"
                            " order varies by run",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_rng(ctx, node)

    @staticmethod
    def _order_insensitive_generators(tree: ast.Module) -> set[int]:
        """ids of generator expressions consumed order-insensitively."""
        exempt: set[int] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ORDER_INSENSITIVE
            ):
                for arg in node.args:
                    if isinstance(
                        arg,
                        (ast.GeneratorExp, ast.ListComp, ast.SetComp),
                    ):
                        exempt.add(id(arg))
        return exempt

    def _check_rng(self, ctx: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "default_rng"
            and not node.args
            and not node.keywords
        ):
            yield self.finding(
                ctx,
                node,
                "default_rng() without a seed: results differ per run",
                hint="thread an explicit seed or rng parameter through",
            )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in LEGACY_NP_RANDOM
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "np"
        ):
            yield self.finding(
                ctx,
                node,
                f"np.random.{func.attr} uses hidden global RNG state",
                hint="use np.random.default_rng(seed) and thread it through",
            )
