"""Rule: WAL writes happen only inside the single-writer methods.

The durability argument of PR 3 is a strict protocol: *one* writer,
holding ``_writer_lock``, appends to the WAL **before** touching the
in-memory graph, and checkpoints sync/rotate the log under the same
lock.  The crash-recovery proof (replay of a prefix of appended ops
equals a prefix of applied ops) is only valid if no other code path can
reach ``WriteAheadLog.append`` / ``sync`` / ``close`` — a stray append
from a reader would interleave un-applied operations into the log and
recovery would replay writes that never happened.

Detection: any call of ``append``/``sync``/``close`` on a ``_wal``
attribute outside the allow-listed single-writer methods of
``ServingIndex`` (``_mutate``, ``_checkpoint_locked``, ``close``) is a
finding.  Reads (``_wal.last_seq``, ``_wal.path``) are fine anywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: WriteAheadLog methods that move the durability state machine.
WAL_MUTATORS = {"append", "sync", "close"}

#: ServingIndex methods allowed to drive the WAL (all run under the
#: writer lock or during teardown).
ALLOWED_METHODS = {"_mutate", "_checkpoint_locked", "close"}


class WriterDisciplineRule(Rule):
    """``_wal`` mutations only from the single-writer methods."""

    id = "writer-discipline"
    summary = (
        "WAL append/sync/close must be reachable only from the "
        "single-writer methods of ServingIndex"
    )
    hint = (
        "route the mutation through _mutate()/_checkpoint_locked() so it "
        "happens under the writer lock, in WAL-before-graph order"
    )
    paths = ("serve/",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for WAL mutations outside the allow-list."""
        yield from self._walk(ctx, ctx.tree, enclosing=None)

    def _walk(
        self, ctx: ModuleContext, node: ast.AST, enclosing: str | None
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk(ctx, child, enclosing=child.name)
                continue
            call = child if isinstance(child, ast.Call) else None
            if call is not None and self._is_wal_mutation(call):
                if enclosing not in ALLOWED_METHODS:
                    where = (
                        f"in {enclosing}()" if enclosing else "at module level"
                    )
                    method = call.func.attr  # type: ignore[union-attr]
                    yield self.finding(
                        ctx,
                        call,
                        f"_wal.{method}() called {where}, outside the "
                        f"single-writer methods {sorted(ALLOWED_METHODS)}",
                    )
            yield from self._walk(ctx, child, enclosing=enclosing)

    @staticmethod
    def _is_wal_mutation(call: ast.Call) -> bool:
        func = call.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr in WAL_MUTATORS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "_wal"
        )
