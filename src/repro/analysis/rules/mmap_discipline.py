"""Rule: store-mapped views are read-only, and mappings open read-only.

The index store (PR 8) serves checkpoints zero-copy: one ``.dgs`` file
on disk, one set of physical pages in the page cache, N processes
mapping them.  Correctness of every answer served from a mapped store
rests on those pages never changing under a reader, and the format's
integrity story (per-section SHA-256 in the TOC) rests on the file
never changing *after* its digests were computed.  Two properties make
that safe, and this rule pins both:

- **Read-only mappings.**  Every ``mmap.mmap`` call in store or worker
  code must pass ``access=mmap.ACCESS_READ``.  A writable (or
  copy-on-write) mapping would let a stray store reach the shared pages
  — or silently diverge from the checksummed bytes on disk.
- **No mutation through mapped views.**  Arrays handed out by
  :func:`~repro.store.mapped.open_store` /
  :func:`~repro.store.mapped.attach_store` (directly, or via
  ``section()`` / ``sections()`` / ``compiled()``) are born read-only
  from the ``ACCESS_READ`` buffer; in-place stores, attribute
  rebinding, and ``setflags(write=True)`` are the holes that would
  reopen them.  Code that needs private bytes copies first
  (``np.array(view, copy=True)``), as the graph-store loader does.

Scope: ``store/`` and ``parallel/`` — everywhere mapped views travel.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: Calls whose return value is (or contains) store-mapped views.
_MAPPED_SOURCES = {
    "open_store",
    "attach_store",
    "attach_handle",
    "section",
    "sections",
    "compiled",
}


def _call_name(node: ast.expr) -> str | None:
    """Terminal name of a call target (``mapped.section`` -> ``section``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_mapped_source(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and _call_name(node.func) in _MAPPED_SOURCES
    )


def _is_mmap_call(node: ast.Call) -> bool:
    """``mmap.mmap(...)`` (or a bare ``mmap(...)`` import alias)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr == "mmap" and _root_name(func.value) == "mmap"
    return isinstance(func, ast.Name) and func.id == "mmap"


def _reads_only(call: ast.Call) -> bool:
    """True when the call passes ``access=mmap.ACCESS_READ``."""
    for kw in call.keywords:
        if kw.arg == "access":
            return _call_name(kw.value) == "ACCESS_READ"
    return False


class MmapDisciplineRule(Rule):
    """Mapped store bytes are immutable: read-only maps, frozen views."""

    id = "mmap-discipline"
    summary = (
        "store mappings must be ACCESS_READ and store-mapped views must "
        "never be written through"
    )
    hint = (
        "pass access=mmap.ACCESS_READ to mmap.mmap, and copy mapped "
        "arrays (np.array(view, copy=True)) before modifying them"
    )
    paths = ("store/", "parallel/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield a finding per writable-mapping or view-mutation hazard."""
        tracked = self._tracked_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_mmap_call(node):
                if not _reads_only(node):
                    yield self.finding(
                        ctx,
                        node,
                        "mmap.mmap without access=mmap.ACCESS_READ opens "
                        "a writable path onto checksummed store pages",
                    )
            if tracked:
                yield from self._check_mutation(ctx, node, tracked)

    def _tracked_names(self, tree: ast.Module) -> set[str]:
        tracked: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_mapped_source(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tracked.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_mapped_source(node.value) and isinstance(
                    node.target, ast.Name
                ):
                    tracked.add(node.target.id)
        return tracked

    def _check_mutation(
        self, ctx: ModuleContext, node: ast.AST, tracked: set[str]
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if root in tracked:
                        yield self.finding(
                            ctx,
                            node,
                            "assignment writes through store-mapped view "
                            f"{root!r}; copy before modifying",
                        )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "setflags"
                and _root_name(func.value) in tracked
                and self._enables_write(node)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "setflags(write=True) unfreezes a store-mapped view "
                    f"of {_root_name(func.value)!r}",
                )

    @staticmethod
    def _enables_write(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg == "write":
                return not (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                )
        return bool(call.args)
