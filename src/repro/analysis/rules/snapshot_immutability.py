"""Rule: compiled snapshots are immutable after construction.

The compiled engine's bit-identical-parity promise (PR 1) and the RCU
snapshot rotation of :class:`~repro.serve.index.ServingIndex` (PR 3)
both depend on one fact: once :meth:`CompiledDG.from_graph` returns, no
code path mutates the snapshot's arrays or attributes.  ``__init__``
freezes the arrays with ``setflags(write=False)``, which catches *array*
writes at runtime — but attribute rebinding and ``setflags(write=True)``
would silently reopen the door.  This rule closes it statically.

Detection: within a module, any name bound from ``graph.compile()``,
``snapshot.detach()``, ``CompiledDG(...)``, ``CompiledDG.from_graph(...)``
or a ``.compiled`` attribute is treated as a snapshot handle; attribute
assignment, in-place array stores, and ``setflags(write=True)`` through
such a handle are findings.  ``CompiledDG``'s own methods (in
``core/compiled.py``) are exempt — construction and ``detach`` must
write the attributes they define.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: Calls whose result is a compiled snapshot.
_BINDING_METHODS = {"compile", "detach", "from_graph"}
_BINDING_NAMES = {"CompiledDG"}
_BINDING_ATTRS = {"compiled"}


def _is_snapshot_source(node: ast.expr) -> bool:
    """Does this expression evaluate to a compiled snapshot?"""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _BINDING_METHODS:
            return True
        if isinstance(func, ast.Name) and func.id in _BINDING_NAMES:
            return True
    if isinstance(node, ast.Attribute) and node.attr in _BINDING_ATTRS:
        return True
    return False


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class SnapshotImmutabilityRule(Rule):
    """No mutation of :class:`CompiledDG` handles outside construction."""

    id = "snapshot-immutability"
    summary = (
        "compiled snapshots must never be mutated after from_graph() returns"
    )
    hint = (
        "build a new snapshot with graph.compile() instead of mutating; "
        "snapshot arrays and attributes are frozen by contract"
    )
    paths = ()  # a snapshot leak is a bug wherever it happens

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield a finding for every mutation through a snapshot handle."""
        tracked = self._tracked_names(ctx.tree)
        if not tracked:
            return
        exempt = self._exempt_spans(ctx)
        for node in ast.walk(ctx.tree):
            line = getattr(node, "lineno", None)
            if line is not None and any(lo <= line <= hi for lo, hi in exempt):
                continue
            yield from self._check_node(ctx, node, tracked)

    def _tracked_names(self, tree: ast.Module) -> set[str]:
        tracked: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_snapshot_source(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tracked.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_snapshot_source(node.value) and isinstance(
                    node.target, ast.Name
                ):
                    tracked.add(node.target.id)
        return tracked

    def _exempt_spans(self, ctx: ModuleContext) -> list[tuple[int, int]]:
        """Line spans of ``CompiledDG``'s own class body (construction)."""
        if not ctx.relpath.endswith("core/compiled.py"):
            return []
        return [
            (node.lineno, node.end_lineno or node.lineno)
            for node in ctx.tree.body
            if isinstance(node, ast.ClassDef) and node.name == "CompiledDG"
        ]

    def _check_node(
        self, ctx: ModuleContext, node: ast.AST, tracked: set[str]
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if root in tracked:
                        kind = (
                            "attribute"
                            if isinstance(target, ast.Attribute)
                            else "array element"
                        )
                        yield self.finding(
                            ctx,
                            node,
                            f"{kind} assignment mutates compiled snapshot"
                            f" {root!r}",
                        )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "setflags"
                and _root_name(func.value) in tracked
                and self._enables_write(node)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "setflags(write=True) re-opens a frozen snapshot array"
                    f" of {_root_name(func.value)!r}",
                )

    @staticmethod
    def _enables_write(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg == "write":
                return not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is False
                )
        return bool(call.args)
