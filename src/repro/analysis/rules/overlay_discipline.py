"""Rule: published delta overlays are frozen, and compactions are clamped.

The O(changes) publish path (PR 10) hands readers a
:class:`~repro.core.overlay.DeltaOverlay` *by reference*: every snapshot
between two compactions shares the same overlay object, and the
bit-identical-to-recompile guarantee rests on that object never changing
once a snapshot carries it.  The overlay's arrays are born read-only
(``setflags(write=False)`` at construction); this rule pins the holes
that would reopen them, exactly as ``mmap-discipline`` does for
store-mapped views:

- **No mutation through published overlays.**  Values bound from
  ``OverlayBuilder.freeze()``, ``load_delta_store()``, or a direct
  ``DeltaOverlay(...)`` construction must never be written through —
  no in-place stores, no attribute rebinding, no
  ``setflags(write=True)``.  Writers that need to change the delta build
  a *new* overlay and publish a *new* snapshot.

- **Compactions clamp their stall.**  The background compactor's loop
  methods (``_run`` / ``compact_once``) may only invoke the fold through
  a call that passes an explicit lock-acquisition clamp — a positional
  timeout or a ``timeout=``/``lock_timeout=`` keyword.  An unclamped
  ``compact()`` from the daemon thread queues unboundedly behind a write
  burst and turns the "background" fold into a writer stall.

Scope: ``core/``, ``serve/``, and ``store/`` — everywhere overlay
objects are built, published, spooled, or folded.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

#: Calls whose return value is (or contains) a frozen delta overlay.
_OVERLAY_SOURCES = {
    "freeze",
    "load_delta_store",
    "DeltaOverlay",
}

#: Compactor loop methods whose fold calls must pass a clamp.
_LOOP_METHODS = {"_run", "compact_once"}

#: Terminal names of the fold callable as seen from the loop.
_FOLD_NAMES = {"compact", "_compact", "_timed_compact"}


def _call_name(node: ast.expr) -> str | None:
    """Terminal name of a call target (``builder.freeze`` -> ``freeze``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_overlay_source(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and _call_name(node.func) in _OVERLAY_SOURCES
    )


def _passes_clamp(call: ast.Call) -> bool:
    """True when the fold call carries an explicit stall clamp."""
    if call.args:
        return True
    return any(
        kw.arg in ("timeout", "lock_timeout") for kw in call.keywords
    )


class OverlayDisciplineRule(Rule):
    """Published overlays are immutable; compactor folds are clamped."""

    id = "overlay-discipline"
    summary = (
        "published delta overlays must never be mutated, and compactor "
        "loop folds must pass an explicit lock-timeout clamp"
    )
    hint = (
        "build a new overlay (OverlayBuilder.freeze()) instead of "
        "editing a published one, and call the fold as "
        "compact(lock_timeout) from compactor loops"
    )
    paths = ("core/", "serve/", "store/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield a finding per overlay mutation or unclamped fold."""
        tracked = self._tracked_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if tracked:
                yield from self._check_mutation(ctx, node, tracked)
            if (
                isinstance(node, ast.FunctionDef)
                and node.name in _LOOP_METHODS
            ):
                yield from self._check_loop_clamp(ctx, node)

    def _tracked_names(self, tree: ast.Module) -> set[str]:
        tracked: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_overlay_source(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tracked.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_overlay_source(node.value) and isinstance(
                    node.target, ast.Name
                ):
                    tracked.add(node.target.id)
        return tracked

    def _check_mutation(
        self, ctx: ModuleContext, node: ast.AST, tracked: set[str]
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if root in tracked:
                        yield self.finding(
                            ctx,
                            node,
                            "assignment mutates published delta overlay "
                            f"{root!r}; freeze a new overlay instead",
                        )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "setflags"
                and _root_name(func.value) in tracked
                and self._enables_write(node)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "setflags(write=True) unfreezes a published delta "
                    f"overlay array of {_root_name(func.value)!r}",
                )

    def _check_loop_clamp(
        self, ctx: ModuleContext, loop: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(loop):
            if (
                isinstance(node, ast.Call)
                and _call_name(node.func) in _FOLD_NAMES
                and not _passes_clamp(node)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"compactor loop {loop.name!r} invokes the fold "
                    "without a lock-timeout clamp; it may stall "
                    "unboundedly behind the writer lock",
                )

    @staticmethod
    def _enables_write(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg == "write":
                return not (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                )
        return bool(call.args)
