"""The whole-program model: modules, classes, functions, imports, types.

A :class:`Project` is built from the same :class:`ModuleContext`
objects the line rules consume — every module is parsed exactly once
per run, by the engine, and both layers share the trees.  On top of the
raw ASTs the project records the facts interprocedural passes need:

- a **function table** keyed by dotted qualname
  (``repro.serve.index.ServingIndex.query``), including nested
  functions (``...outer.<locals>.inner``);
- a **class table** with base-class links resolved inside the project,
  so method lookup follows inheritance;
- per-module **import tables** (aliased imports, from-imports, relative
  imports) distinguishing project symbols from external ones;
- light **type facts**: ``self.attr = Klass(...)`` assignments and
  class-annotated parameters/locals, enough to resolve most
  ``self._part.method()`` call sites without a real type checker.

The :class:`~repro.analysis.flow.callgraph.CallGraph` is built eagerly
(``project.callgraph``) since every pass needs it.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator, Optional, Sequence

from repro.analysis.engine import ModuleContext

#: Import roots that can resolve to project code.
PROJECT_ROOT = "repro"

#: Names every module can call without importing them.
BUILTIN_NAMES = frozenset(dir(builtins))


def module_name(relpath: str) -> str:
    """Dotted module name for a package-relative path.

    ``core/compiled.py`` → ``repro.core.compiled``; ``__init__.py``
    files name their package.  Files outside the package (fixtures)
    get a synthetic ``repro.``-rooted name so a single-module project
    behaves like any other.
    """
    parts = relpath[:-3].split("/") if relpath.endswith(".py") else relpath.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([PROJECT_ROOT, *parts]) if parts else PROJECT_ROOT


class FunctionInfo:
    """One function or method, with the facts the passes ask about."""

    def __init__(
        self,
        qualname: str,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        ctx: ModuleContext,
        class_name: Optional[str] = None,
    ) -> None:
        self.qualname = qualname
        self.node = node
        self.ctx = ctx
        self.relpath = ctx.relpath
        self.name = node.name
        self.class_name = class_name
        args = node.args
        self.params = [
            a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        ]
        self.has_kwargs = args.kwarg is not None
        #: parameter name -> annotation AST (when present).
        self.annotations: dict[str, ast.expr] = {
            a.arg: a.annotation
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if a.annotation is not None
        }

    @property
    def is_public(self) -> bool:
        """Public by naming convention (no leading underscore anywhere)."""
        if self.name.startswith("_") and not self.name.startswith("__"):
            return False
        if self.name.startswith("__") and self.name != "__init__":
            return False
        if self.class_name is not None and self.class_name.startswith("_"):
            return False
        return "<locals>" not in self.qualname

    def body_nodes(self) -> Iterator[ast.AST]:
        """Walk the function body, excluding nested function scopes."""
        stack: list[ast.AST] = list(self.node.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def __repr__(self) -> str:
        return f"FunctionInfo({self.qualname})"


class ClassInfo:
    """One class: its methods, raw base names, and instance-attr types."""

    def __init__(self, qualname: str, node: ast.ClassDef, ctx: ModuleContext) -> None:
        self.qualname = qualname
        self.node = node
        self.ctx = ctx
        self.name = node.name
        self.base_names = [_dotted(base) for base in node.bases]
        self.methods: dict[str, FunctionInfo] = {}
        #: instance attribute name -> ClassInfo qualname (from
        #: ``self.attr = Klass(...)`` assignments anywhere in the class).
        self.attr_types: dict[str, str] = {}

    def __repr__(self) -> str:
        return f"ClassInfo({self.qualname})"


class ModuleInfo:
    """One module's symbol tables."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.name = module_name(ctx.relpath)
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: local alias -> dotted module name (``import x.y as z``).
        self.import_modules: dict[str, str] = {}
        #: local alias -> (dotted module, symbol) (``from x import y``).
        self.import_symbols: dict[str, "tuple[str, str]"] = {}

    def __repr__(self) -> str:
        return f"ModuleInfo({self.name})"


def _dotted(node: ast.expr) -> str:
    """Dotted text of a Name/Attribute chain; '' when anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _package_of(modname: str, relpath: str) -> str:
    """The package a module's relative imports resolve against."""
    if relpath.endswith("__init__.py"):
        return modname
    return modname.rsplit(".", 1)[0] if "." in modname else modname


class Project:
    """Every module of one program, parsed once, with symbol tables.

    Building is eager and single-pass per concern: modules and
    definitions first, then imports, then type facts, then the call
    graph (which needs all of the above).
    """

    def __init__(self, contexts: Sequence[ModuleContext]) -> None:
        self.contexts = list(contexts)
        self.modules: dict[str, ModuleInfo] = {}
        self.modules_by_relpath: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: method name -> every FunctionInfo with that name on a class.
        self.method_index: dict[str, list[FunctionInfo]] = {}
        for ctx in self.contexts:
            self._index_module(ctx)
        for info in self.modules.values():
            self._index_imports(info)
        for klass in self.classes.values():
            self._index_attr_types(klass)
        from repro.analysis.flow.callgraph import CallGraph

        self.callgraph = CallGraph(self)

    # -- construction --------------------------------------------------

    def _index_module(self, ctx: ModuleContext) -> None:
        info = ModuleInfo(ctx)
        self.modules[info.name] = info
        self.modules_by_relpath[ctx.relpath] = info
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, stmt, prefix=info.name)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(info, stmt)

    def _add_function(
        self,
        info: ModuleInfo,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        prefix: str,
        class_name: Optional[str] = None,
    ) -> None:
        qualname = f"{prefix}.{node.name}"
        func = FunctionInfo(qualname, node, info.ctx, class_name=class_name)
        self.functions[qualname] = func
        if class_name is None and prefix == info.name:
            info.functions[node.name] = func
        for stmt in ast.walk(node):
            if stmt is node:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = f"{qualname}.<locals>.{stmt.name}"
                if nested not in self.functions:
                    self.functions[nested] = FunctionInfo(
                        nested, stmt, info.ctx, class_name=class_name
                    )

    def _add_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{info.name}.{node.name}"
        klass = ClassInfo(qualname, node, info.ctx)
        info.classes[node.name] = klass
        self.classes[qualname] = klass
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(
                    info, stmt, prefix=qualname, class_name=node.name
                )
                method = self.functions[f"{qualname}.{stmt.name}"]
                klass.methods[stmt.name] = method
                self.method_index.setdefault(stmt.name, []).append(method)

    def _index_imports(self, info: ModuleInfo) -> None:
        for stmt in ast.walk(info.ctx.tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.import_modules[bound] = target
            elif isinstance(stmt, ast.ImportFrom):
                base = stmt.module or ""
                if stmt.level:
                    package = _package_of(info.name, info.ctx.relpath)
                    for _ in range(stmt.level - 1):
                        package = package.rsplit(".", 1)[0]
                    base = f"{package}.{base}" if base else package
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    submodule = f"{base}.{alias.name}"
                    if submodule in self.modules:
                        info.import_modules[bound] = submodule
                    else:
                        info.import_symbols[bound] = (base, alias.name)

    def _index_attr_types(self, klass: ClassInfo) -> None:
        for method in klass.methods.values():
            for node in method.body_nodes():
                if not isinstance(node, ast.Assign):
                    continue
                constructed = self._constructed_class(node.value, method)
                if constructed is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        klass.attr_types.setdefault(
                            target.attr, constructed.qualname
                        )

    def _constructed_class(
        self, value: ast.expr, scope: FunctionInfo
    ) -> Optional[ClassInfo]:
        """The project class ``value`` constructs, if it plainly does."""
        if not isinstance(value, ast.Call):
            return None
        resolved = self.resolve_symbol(_dotted(value.func), scope.ctx.relpath)
        return resolved if isinstance(resolved, ClassInfo) else None

    # -- lookup --------------------------------------------------------

    def module_of(self, relpath: str) -> Optional[ModuleInfo]:
        """The module at a package-relative path, if indexed."""
        return self.modules_by_relpath.get(relpath)

    def function_for_node(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Optional[FunctionInfo]:
        """The FunctionInfo built from exactly this AST node, if any.

        Line rules hold the same trees the project was built from (the
        engine parses each module once and shares the contexts), so
        identity lookup is exact — no name matching needed.
        """
        index = getattr(self, "_node_index", None)
        if index is None:
            index = {id(f.node): f for f in self.functions.values()}
            self._node_index = index  # type: ignore[attr-defined]
        return index.get(id(node))

    def resolve_symbol(
        self, dotted: str, relpath: str
    ) -> "FunctionInfo | ClassInfo | None":
        """Resolve a dotted name as used inside ``relpath``'s module.

        Handles local definitions, from-imports, module aliases, and
        fully-dotted module paths (``repro.core.compiled.batch_top_k``).
        Returns None for external or unresolvable names.
        """
        info = self.modules_by_relpath.get(relpath)
        if info is None or not dotted:
            return None
        head, _, rest = dotted.partition(".")
        # Local definition?
        if not rest:
            if head in info.functions:
                return info.functions[head]
            if head in info.classes:
                return info.classes[head]
        # From-import of a symbol (function or class).
        if head in info.import_symbols:
            modname, symbol = info.import_symbols[head]
            target = self.modules.get(modname)
            if target is None:
                return None
            resolved: "FunctionInfo | ClassInfo | None"
            resolved = target.functions.get(symbol) or target.classes.get(symbol)
            if resolved is None:
                return None
            if not rest:
                return resolved
            if isinstance(resolved, ClassInfo) and "." not in rest:
                return self.resolve_method(resolved, rest)
            return None
        # Module alias (import x.y as z / from x import submodule).
        if head in info.import_modules:
            dotted = info.import_modules[head] + ("." + rest if rest else "")
        return self._resolve_dotted_module_path(dotted)

    def _resolve_dotted_module_path(
        self, dotted: str
    ) -> "FunctionInfo | ClassInfo | None":
        """Resolve ``pkg.module.symbol[.method]`` against the module table."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            modname = ".".join(parts[:cut])
            target = self.modules.get(modname)
            if target is None:
                continue
            remainder = parts[cut:]
            symbol = remainder[0]
            resolved: "FunctionInfo | ClassInfo | None"
            resolved = target.functions.get(symbol) or target.classes.get(symbol)
            if resolved is None:
                return None
            if len(remainder) == 1:
                return resolved
            if len(remainder) == 2 and isinstance(resolved, ClassInfo):
                return self.resolve_method(resolved, remainder[1])
            return None
        return None

    def resolve_method(
        self, klass: ClassInfo, name: str, _seen: "frozenset[str]" = frozenset()
    ) -> Optional[FunctionInfo]:
        """Method lookup on a class, following project-resolvable bases."""
        if name in klass.methods:
            return klass.methods[name]
        if klass.qualname in _seen:
            return None
        seen = _seen | {klass.qualname}
        for base_name in klass.base_names:
            base = self.resolve_symbol(base_name, klass.ctx.relpath)
            if isinstance(base, ClassInfo):
                found = self.resolve_method(base, name, seen)
                if found is not None:
                    return found
        return None

    def class_of_annotation(
        self, annotation: ast.expr, relpath: str
    ) -> Optional[ClassInfo]:
        """The single project class an annotation names, if exactly one.

        Understands plain names, ``X | None`` unions, ``Optional[X]``,
        and string annotations (``"Deadline | None"``); gives up (None)
        when zero or several project classes appear.
        """
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        candidates: list[ClassInfo] = []
        for node in ast.walk(annotation):
            dotted = _dotted(node) if isinstance(node, (ast.Name, ast.Attribute)) else ""
            if not dotted:
                continue
            resolved = self.resolve_symbol(dotted, relpath)
            if isinstance(resolved, ClassInfo) and resolved not in candidates:
                candidates.append(resolved)
        return candidates[0] if len(candidates) == 1 else None

    def subclasses_of(self, root_qualname: str) -> "set[str]":
        """Qualnames of every project class under ``root_qualname``."""
        result = {root_qualname}
        changed = True
        while changed:
            changed = False
            for klass in self.classes.values():
                if klass.qualname in result:
                    continue
                for base_name in klass.base_names:
                    base = self.resolve_symbol(base_name, klass.ctx.relpath)
                    if isinstance(base, ClassInfo) and base.qualname in result:
                        result.add(klass.qualname)
                        changed = True
                        break
        return result

    def repro_error_names(self) -> "set[str]":
        """Class names of every :mod:`repro.errors` type in the program.

        Whole-program: subclasses declared *outside* ``errors.py``
        (e.g. a store-specific error) are included, which is what lets
        exception-flow checks accept them anywhere.
        """
        errors_module = self.modules.get("repro.errors")
        if errors_module is None:
            return set()
        roots = {
            klass.qualname for klass in errors_module.classes.values()
        }
        names: set[str] = set()
        for root in list(roots):
            for qualname in self.subclasses_of(root):
                names.add(qualname.rsplit(".", 1)[1])
        return names
