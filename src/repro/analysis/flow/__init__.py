"""Whole-program flow analysis on top of the rule engine.

The line rules of :mod:`repro.analysis.rules` see one module at a time;
the invariants that keep the serving stack correct are *cross-module* —
a request deadline threaded from admission through the fabric into the
kernel chunk loops, shared-memory segments and mmap views whose
lifetimes span ``serve/``, ``parallel/`` and ``store/``, and the typed
error contract at the public API.  This package follows those
invariants along the project call graph:

- :mod:`repro.analysis.flow.project` — every module parsed once into a
  :class:`~repro.analysis.flow.project.Project`: modules, classes,
  functions, import tables, and light type facts
  (``self.attr = Klass(...)``, annotated parameters).
- :mod:`repro.analysis.flow.callgraph` — resolved call edges over the
  project, with a *measured* resolution rate so a resolver regression
  is a visible number, not silently weaker passes.
- :mod:`repro.analysis.flow.resources` — resource lifecycle: every
  shm/mmap/store acquisition must reach a release on all paths.
- :mod:`repro.analysis.flow.exceptions` — exception flow: the raise set
  reachable from each public API function must stay inside
  :mod:`repro.errors` plus the idiomatic builtins.
- :mod:`repro.analysis.flow.deadlines` — deadline propagation: no
  function on a query→wait path may drop the request's
  :class:`~repro.resilience.deadline.Deadline` at a call boundary.
- :mod:`repro.analysis.flow.baseline` — the findings baseline behind
  the CI ratchet (``repro lint --flow --baseline``): only *new*
  findings fail the build.

Run it as ``repro lint --flow``; see ``docs/static_analysis.md`` for
the architecture and the rule catalog entries.
"""

from repro.analysis.flow.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    load_baseline,
    new_findings,
    write_baseline,
)
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.deadlines import DeadlinePropagationRule
from repro.analysis.flow.exceptions import ExceptionEscapeRule
from repro.analysis.flow.project import Project
from repro.analysis.flow.resources import ResourceLifecycleRule

#: The interprocedural passes, in catalog order.
FLOW_RULES = (
    ResourceLifecycleRule,
    ExceptionEscapeRule,
    DeadlinePropagationRule,
)

#: Minimum acceptable call-graph resolution rate (see ``--min-resolution``).
#: Pinned below the measured rate on this tree; a drop past the floor
#: means the resolver regressed and every pass silently weakened, so
#: ``repro lint --flow --strict`` fails instead of shipping weaker checks.
RESOLUTION_FLOOR = 0.80

__all__ = [
    "Baseline",
    "CallGraph",
    "DEFAULT_BASELINE",
    "DeadlinePropagationRule",
    "ExceptionEscapeRule",
    "FLOW_RULES",
    "Project",
    "RESOLUTION_FLOOR",
    "ResourceLifecycleRule",
    "load_baseline",
    "new_findings",
    "write_baseline",
]
