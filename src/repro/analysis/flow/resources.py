"""Interprocedural pass: acquired resources must reach a release.

The serving stack owns three kinds of process-spanning resources:
shared-memory segments (:func:`repro.parallel.shm.export_snapshot` /
``attach_snapshot``), mmap views of store files
(:func:`repro.store.mapped.open_store` and the fabric's
``attach_store``/``attach_handle``), and raw ``mmap``/``SharedMemory``
objects underneath them.  Each carries a ``weakref.finalize`` GC
backstop, but a backstop firing is exactly the leak the ``/dev/shm``
audit (``repro doctor``) only catches at runtime — after worker churn
has already piled up segments.  This pass proves the deterministic
half statically.

Per acquisition site, the acquired value must be **disposed**:

- used as a ``with`` context manager,
- returned/yielded (ownership moves to the caller — and the *caller*
  is then analyzed the same way, because any function returning an
  acquisition transitively becomes an acquirer),
- passed into another call (a wrapper like ``MappedSnapshot(store, …)``
  or ``weakref.finalize(…, store)`` takes ownership),
- stored on an object or into a container (the owner's lifecycle),
- explicitly released (``.close()`` / ``.destroy()`` / ``.shutdown()``
  / ``.unlink()``).

A site with **no** disposition is a leak.  A disposition that work can
jump over is the second finding class: when statements that may raise
sit between the acquisition and its disposition, the release must be
exception-safe — in a ``finally``, in an ``except`` cleanup, or the
resource managed by ``with`` — or the exception path leaks the
mapping.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.flow.astutil import (
    enclosing_statement,
    parent_map,
    try_field_of,
)
from repro.analysis.flow.project import FunctionInfo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.flow.project import Project

#: Functions whose return value is an owned resource handle.
ACQUIRER_NAMES = frozenset(
    {
        "export_snapshot",
        "attach_snapshot",
        "attach_store",
        "attach_handle",
        "open_store",
        "mmap",
        "SharedMemory",
    }
)

#: Method names that release an owned resource.
RELEASE_METHODS = frozenset(
    {"close", "destroy", "shutdown", "unlink", "terminate", "release"}
)


def _call_terminal(call: ast.Call) -> str:
    """Terminal name of a call target (``mmap.mmap`` → ``mmap``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _root_name(node: ast.expr) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def transitive_acquirers(
    project: "Project", seeds: "frozenset[str]" = ACQUIRER_NAMES
) -> "set[str]":
    """Project functions that return an owned resource, transitively.

    Seeded by name (``seeds``); a function that returns the result of
    an acquirer — directly or through a tracked local — joins the set,
    so leaking through a helper is still caught at the helper's caller.
    Cached per ``(project, seeds)``; also used by ``worker-discipline``
    to recognise attachments produced by helpers.
    """
    cache = getattr(project, "_resource_acquirers", None)
    if cache is None:
        cache = {}
        project._resource_acquirers = cache  # type: ignore[attr-defined]
    cached = cache.get(seeds)
    if cached is not None:
        return cached
    acquirers: set[str] = {
        qualname
        for qualname, func in project.functions.items()
        if func.name in seeds
    }
    changed = True
    while changed:
        changed = False
        for qualname, func in project.functions.items():
            if qualname in acquirers:
                continue
            if _returns_acquisition(project, func, acquirers, seeds):
                acquirers.add(qualname)
                changed = True
    cache[seeds] = acquirers
    return acquirers


def is_acquisition(
    project: "Project",
    func: FunctionInfo,
    call: ast.Call,
    acquirers: "set[str]",
    seeds: "frozenset[str]" = ACQUIRER_NAMES,
) -> bool:
    """Whether ``call`` inside ``func`` produces an owned resource."""
    if _call_terminal(call) in seeds:
        return True
    resolution = project.callgraph.resolve_call(func, call)
    return (
        resolution.target is not None
        and resolution.target.qualname in acquirers
    )


def _returns_acquisition(
    project: "Project",
    func: FunctionInfo,
    acquirers: "set[str]",
    seeds: "frozenset[str]",
) -> bool:
    tracked = set()
    for node in func.body_nodes():
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if is_acquisition(project, func, node.value, acquirers, seeds):
                tracked.update(
                    target.id
                    for target in node.targets
                    if isinstance(target, ast.Name)
                )
    for node in func.body_nodes():
        if isinstance(node, ast.Return) and node.value is not None:
            value = node.value
            if isinstance(value, ast.Call) and is_acquisition(
                project, func, value, acquirers, seeds
            ):
                return True
            if isinstance(value, ast.Name) and value.id in tracked:
                return True
    return False


class ResourceLifecycleRule(Rule):
    """Every shm/mmap/store acquisition must reach a release on all paths."""

    id = "flow-resource-lifecycle"
    summary = (
        "acquired shm segments, mmap views and store handles must be "
        "released, returned, or handed off on every path"
    )
    hint = (
        "release in a finally/with, return the handle to the caller, or "
        "hand it to an owner object; the GC finalizer backstop is the "
        "leak the /dev/shm audit reports, not a lifecycle"
    )
    paths = ("serve/", "parallel/", "store/")
    needs_project = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield lifecycle findings for functions defined in ``ctx``."""
        project = self.project
        if project is None:  # pragma: no cover - engine guarantees it
            return
        acquirers = transitive_acquirers(project)
        for func in project.functions.values():
            if func.relpath != ctx.relpath:
                continue
            yield from self._check_function(ctx, project, func, acquirers)

    # -- per-function checking -----------------------------------------

    def _check_function(
        self,
        ctx: ModuleContext,
        project: "Project",
        func: FunctionInfo,
        acquirers: "set[str]",
    ) -> Iterator[Finding]:
        if func.name in ACQUIRER_NAMES:
            # The designated constructors hand ownership outward by
            # definition; their internals wrap the raw segment/mapping
            # into the handle object they return.
            return
        acquisition_calls = [
            node
            for node in func.body_nodes()
            if isinstance(node, ast.Call)
            and is_acquisition(project, func, node, acquirers)
        ]
        if not acquisition_calls:
            return
        parents = parent_map(func.node)
        for call in acquisition_calls:
            yield from self._check_site(ctx, func, call, parents)

    def _check_site(
        self,
        ctx: ModuleContext,
        func: FunctionInfo,
        call: ast.Call,
        parents: "dict[int, ast.AST]",
    ) -> Iterator[Finding]:
        parent = parents.get(id(call))
        terminal = _call_terminal(call)
        # with acquire() [as x]: managed, done.
        if isinstance(parent, ast.withitem):
            return
        # return/yield acquire(): ownership moves to the caller.
        if isinstance(parent, (ast.Return, ast.Yield)):
            return
        # Wrapper(acquire()) / finalize(..., acquire()): callee owns it.
        if isinstance(parent, ast.Call) and call is not parent.func:
            return
        if isinstance(parent, ast.keyword):
            return
        # x = acquire(): track the local through the function.
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                # self.attr = acquire() / container[k] = acquire():
                # ownership escapes into the object's lifecycle.
                return
            for name in names:
                yield from self._check_local(ctx, func, call, name, parents)
            return
        # Bare-expression acquisition: the handle is dropped on the floor.
        yield self.finding(
            ctx,
            call,
            f"{func.name}() discards the handle returned by "
            f"{terminal}(); the resource can only be reclaimed by the "
            "GC backstop",
        )

    def _check_local(
        self,
        ctx: ModuleContext,
        func: FunctionInfo,
        call: ast.Call,
        name: str,
        parents: "dict[int, ast.AST]",
    ) -> Iterator[Finding]:
        dispositions = self._dispositions(func, name, call)
        terminal = _call_terminal(call)
        if not dispositions:
            yield self.finding(
                ctx,
                call,
                f"{func.name}() acquires {name!r} from {terminal}() but "
                "never releases, returns, or hands it off on any path",
            )
            return
        if self._exception_safe(func, name, call, dispositions, parents):
            return
        yield self.finding(
            ctx,
            call,
            f"{func.name}() releases {name!r} (from {terminal}()) only "
            "on the straight-line path; an exception between the "
            "acquisition and the release leaks it",
            hint=(
                "move the release into a finally/with, or release in an "
                "except block that re-raises"
            ),
        )

    def _dispositions(
        self, func: FunctionInfo, name: str, acquisition: ast.Call
    ) -> "list[ast.AST]":
        """Every node that releases or hands off local ``name``."""
        sinks: list[ast.AST] = []
        for node in func.body_nodes():
            if isinstance(node, ast.Call):
                if node is acquisition:
                    continue
                target = node.func
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in RELEASE_METHODS
                    and _root_name(target.value) == name
                ):
                    sinks.append(node)
                    continue
                operands = [*node.args, *[kw.value for kw in node.keywords]]
                for operand in operands:
                    if any(
                        isinstance(inner, ast.Name) and inner.id == name
                        for inner in ast.walk(operand)
                    ):
                        sinks.append(node)
                        break
            elif isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
                if any(
                    isinstance(inner, ast.Name) and inner.id == name
                    for inner in ast.walk(node.value)
                ):
                    sinks.append(node)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Name)
                        and item.context_expr.id == name
                    ):
                        sinks.append(node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if value is not None and isinstance(value, ast.Name) and (
                    value.id == name
                ):
                    # ``self.attr = x`` / ``table[k] = x`` escape into an
                    # owner; ``other = x`` transfers to an alias whose
                    # own lifecycle (e.g. a swap-then-close) owns it.
                    for tgt in targets:
                        if isinstance(
                            tgt, (ast.Attribute, ast.Subscript, ast.Name)
                        ):
                            sinks.append(node)
                            break
        return sinks

    def _exception_safe(
        self,
        func: FunctionInfo,
        name: str,
        acquisition: ast.Call,
        dispositions: "list[ast.AST]",
        parents: "dict[int, ast.AST]",
    ) -> bool:
        """Whether some disposition also covers the exception paths."""
        for sink in dispositions:
            if isinstance(sink, (ast.With, ast.AsyncWith)):
                return True
            for _try, region in try_field_of(sink, parents):
                if region in ("final", "handler"):
                    return True
        # Straight-line-only dispositions are still fine when nothing
        # that can raise sits between the acquisition statement and the
        # first disposition statement.
        acq_stmt = enclosing_statement(acquisition, parents)
        first = min(
            (
                stmt.lineno
                for stmt in (
                    enclosing_statement(sink, parents) for sink in dispositions
                )
                if stmt is not None
            ),
            default=None,
        )
        if acq_stmt is None or first is None:
            return False
        acq_tries = {
            id(try_stmt)
            for try_stmt, region in try_field_of(acq_stmt, parents)
            if region == "body"
        }
        for node in func.body_nodes():
            if not isinstance(node, (ast.Call, ast.Raise, ast.Assert)):
                continue
            if node is acquisition:
                continue
            stmt = enclosing_statement(node, parents)
            if stmt is None or stmt is acq_stmt:
                continue
            if not (acq_stmt.lineno < stmt.lineno < first):
                continue
            # A handler guarding the acquisition itself runs only when
            # the acquisition raised — i.e. when there is nothing to
            # leak — so raises inside it are outside the window.
            if any(
                region == "handler" and id(try_stmt) in acq_tries
                for try_stmt, region in try_field_of(node, parents)
            ):
                continue
            return False
        return True
