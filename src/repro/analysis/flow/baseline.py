"""The findings baseline behind the CI ratchet.

A new whole-program pass over a mature tree is adopted as a *ratchet*,
not a flag day: the findings present when the pass lands are recorded
in a committed baseline file, CI fails only when a finding **not** in
the baseline appears, and the baseline is only ever rewritten smaller
(fix a finding, re-run ``repro lint --flow --write-baseline``).

Fingerprints deliberately exclude line numbers: a baselined finding
must survive unrelated edits above it, or every refactor would need a
baseline refresh and the ratchet would train people to refresh blindly.
A fingerprint is ``(relpath, rule, message)`` with a *count* — two
identical findings in one file occupy two baseline slots, so fixing one
of them still ratchets.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import Finding

#: Baseline file format version (bump on incompatible change).
BASELINE_VERSION = 1

#: Default committed baseline location, relative to the repository root.
DEFAULT_BASELINE = "lint_baseline.json"


class Baseline:
    """Fingerprint counts loaded from (or destined for) a baseline file."""

    def __init__(self, counts: "Counter[tuple[str, str, str]]") -> None:
        self.counts = counts

    def __len__(self) -> int:
        return sum(self.counts.values())


def fingerprint(finding: Finding) -> "tuple[str, str, str]":
    """Line-number-free identity of a finding (see module docstring)."""
    path = finding.relpath or finding.path
    return (path, finding.rule, finding.message)


def load_baseline(path: "str | Path") -> Baseline:
    """Load a committed baseline; a missing file is an empty baseline.

    An unreadable or wrong-version file raises ``ValueError`` — CI must
    stop rather than silently compare against nothing.
    """
    file = Path(path)
    if not file.exists():
        return Baseline(Counter())
    try:
        payload = json.loads(file.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable lint baseline {file}: {exc}") from exc
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"lint baseline {file} has version {payload.get('version')!r}; "
            f"this tool reads version {BASELINE_VERSION}"
        )
    counts: "Counter[tuple[str, str, str]]" = Counter()
    for entry in payload.get("findings", []):
        key = (entry["path"], entry["rule"], entry["message"])
        counts[key] += int(entry.get("count", 1))
    return Baseline(counts)


def write_baseline(path: "str | Path", findings: Sequence[Finding]) -> None:
    """Write the current findings as the new baseline (sorted, stable)."""
    counts: "Counter[tuple[str, str, str]]" = Counter(
        fingerprint(finding) for finding in findings
    )
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": key[0], "rule": key[1], "message": key[2], "count": count}
            for key, count in sorted(counts.items())
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def new_findings(
    findings: Sequence[Finding], baseline: Baseline
) -> "list[Finding]":
    """Findings exceeding their baseline allowance — the ones that fail CI.

    For a fingerprint with baseline count N and M>N occurrences now,
    the M-N later ones (by line) are new.  Suppression findings are
    never baselined: a silenced check with no reason must fail even on
    day one.
    """
    remaining = Counter(baseline.counts)
    fresh: list[Finding] = []
    for finding in sorted(findings):
        if finding.rule == "suppression":
            fresh.append(finding)
            continue
        key = fingerprint(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh
